"""Infrastructure entities: datacenters, clusters, hosts, datastores, networks."""

from __future__ import annotations

import dataclasses
import enum
import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.datacenter.vm import VirtualMachine


class HostState(enum.Enum):
    """Connection state of a host as seen by the management server."""

    CONNECTED = "connected"
    MAINTENANCE = "maintenance"
    DISCONNECTED = "disconnected"


@dataclasses.dataclass
class ManagedEntity:
    """Base for everything with a managed-object identity."""

    entity_id: str
    name: str

    def __hash__(self) -> int:
        return hash(self.entity_id)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ManagedEntity) and other.entity_id == self.entity_id


@dataclasses.dataclass(eq=False)
class Network(ManagedEntity):
    """A virtual network (port group). VMs attach NICs to networks."""

    vlan: int = 0


@dataclasses.dataclass(eq=False)
class Datastore(ManagedEntity):
    """Shared storage visible to some set of hosts.

    ``capacity_gb``/``used_gb`` track space; ``hosts`` is the mount set —
    the quantity that makes rescans expensive (a rescan touches every
    mounting host).
    """

    capacity_gb: float = 1024.0
    used_gb: float = 0.0
    hosts: set["Host"] = dataclasses.field(default_factory=set)

    @property
    def free_gb(self) -> float:
        return self.capacity_gb - self.used_gb

    def allocate(self, size_gb: float) -> None:
        if size_gb < 0:
            raise ValueError(f"negative allocation {size_gb}")
        if size_gb > self.free_gb + 1e-9:
            raise CapacityError(
                f"datastore {self.name!r}: need {size_gb:.1f} GB, free {self.free_gb:.1f} GB"
            )
        self.used_gb += size_gb

    def reclaim(self, size_gb: float) -> None:
        if size_gb < 0:
            raise ValueError(f"negative reclaim {size_gb}")
        self.used_gb = max(0.0, self.used_gb - size_gb)


@dataclasses.dataclass(eq=False)
class Host(ManagedEntity):
    """An ESXi-style hypervisor host.

    ``memory_overcommit`` is the admission headroom: powered-on guest
    memory may reach ``memory_gb × memory_overcommit`` (ballooning/page
    sharing make >1.0 the norm).
    """

    cpu_cores: int = 16
    memory_gb: float = 128.0
    memory_overcommit: float = 1.5
    state: HostState = HostState.CONNECTED
    cluster: typing.Optional["Cluster"] = None
    datastores: set[Datastore] = dataclasses.field(default_factory=set)
    networks: set[Network] = dataclasses.field(default_factory=set)
    vms: set["VirtualMachine"] = dataclasses.field(default_factory=set)

    @property
    def is_usable(self) -> bool:
        return self.state == HostState.CONNECTED

    @property
    def powered_on_vms(self) -> int:
        from repro.datacenter.vm import PowerState

        return sum(1 for vm in self.vms if vm.power_state == PowerState.ON)

    @property
    def memory_in_use_gb(self) -> float:
        """Guest memory of powered-on VMs (what admission counts)."""
        from repro.datacenter.vm import PowerState

        return sum(
            vm.memory_gb for vm in self.vms if vm.power_state == PowerState.ON
        )

    @property
    def memory_limit_gb(self) -> float:
        return self.memory_gb * self.memory_overcommit

    def can_admit(self, memory_gb: float) -> bool:
        """Would a ``memory_gb`` guest fit under the admission limit?"""
        return self.memory_in_use_gb + memory_gb <= self.memory_limit_gb + 1e-9

    def mount(self, datastore: Datastore) -> None:
        self.datastores.add(datastore)
        datastore.hosts.add(self)

    def unmount(self, datastore: Datastore) -> None:
        self.datastores.discard(datastore)
        datastore.hosts.discard(self)

    def attach_network(self, network: Network) -> None:
        self.networks.add(network)


@dataclasses.dataclass(eq=False)
class Cluster(ManagedEntity):
    """A DRS/HA cluster of hosts sharing placement decisions."""

    hosts: list[Host] = dataclasses.field(default_factory=list)
    drs_enabled: bool = True

    def add_host(self, host: Host) -> None:
        if host in self.hosts:
            raise ValueError(f"host {host.name!r} already in cluster {self.name!r}")
        self.hosts.append(host)
        host.cluster = self

    def remove_host(self, host: Host) -> None:
        self.hosts.remove(host)
        host.cluster = None

    @property
    def usable_hosts(self) -> list[Host]:
        return [host for host in self.hosts if host.is_usable]

    @property
    def vm_count(self) -> int:
        return sum(len(host.vms) for host in self.hosts)

    def shared_datastores(self) -> set[Datastore]:
        """Datastores mounted by every usable host (valid placement targets)."""
        usable = self.usable_hosts
        if not usable:
            return set()
        shared = set(usable[0].datastores)
        for host in usable[1:]:
            shared &= host.datastores
        return shared


@dataclasses.dataclass(eq=False)
class Datacenter(ManagedEntity):
    """Top-level container: clusters plus datacenter-wide storage/networks."""

    clusters: list[Cluster] = dataclasses.field(default_factory=list)
    datastores: list[Datastore] = dataclasses.field(default_factory=list)
    networks: list[Network] = dataclasses.field(default_factory=list)

    def add_cluster(self, cluster: Cluster) -> None:
        self.clusters.append(cluster)

    @property
    def hosts(self) -> list[Host]:
        return [host for cluster in self.clusters for host in cluster.hosts]

    @property
    def vms(self) -> list["VirtualMachine"]:
        return [vm for host in self.hosts for vm in host.vms]


class CapacityError(Exception):
    """Raised when a datastore cannot satisfy an allocation."""
