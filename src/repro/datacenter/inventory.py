"""The typed inventory: id allocation, lookup, and lifecycle bookkeeping.

One ``Inventory`` per management-server instance (per shard, under
scale-out). The control plane's database cost model charges per inventory
mutation; this class is the in-memory side of that ledger.
"""

from __future__ import annotations

import typing

from repro.datacenter.entities import (
    Cluster,
    Datacenter,
    Datastore,
    Host,
    ManagedEntity,
    Network,
)
from repro.datacenter.vm import VirtualMachine


class InventoryError(Exception):
    """Lookup failures and duplicate registrations."""


_PREFIXES: dict[type, str] = {
    Datacenter: "dc",
    Cluster: "cluster",
    Host: "host",
    Datastore: "ds",
    Network: "net",
    VirtualMachine: "vm",
}


class Inventory:
    """A registry of managed entities with stable, readable ids."""

    def __init__(self) -> None:
        self._by_id: dict[str, ManagedEntity] = {}
        self._by_type: dict[type, dict[str, ManagedEntity]] = {}
        self._counters: dict[str, int] = {}
        self.mutations = 0  # total register/unregister events (DB write proxy)

    # -- registration --------------------------------------------------------

    def next_id(self, entity_type: type) -> str:
        prefix = _PREFIXES.get(entity_type)
        if prefix is None:
            raise InventoryError(f"unknown entity type {entity_type.__name__}")
        self._counters[prefix] = self._counters.get(prefix, 0) + 1
        return f"{prefix}-{self._counters[prefix]}"

    def register(self, entity: ManagedEntity) -> ManagedEntity:
        if entity.entity_id in self._by_id:
            raise InventoryError(f"duplicate id {entity.entity_id!r}")
        self._by_id[entity.entity_id] = entity
        self._by_type.setdefault(type(entity), {})[entity.entity_id] = entity
        self.mutations += 1
        return entity

    def unregister(self, entity: ManagedEntity) -> None:
        if entity.entity_id not in self._by_id:
            raise InventoryError(f"unknown id {entity.entity_id!r}")
        del self._by_id[entity.entity_id]
        del self._by_type[type(entity)][entity.entity_id]
        self.mutations += 1

    def create(self, entity_type: type, name: str, **fields: typing.Any) -> typing.Any:
        """Allocate an id, construct, and register in one step."""
        entity = entity_type(entity_id=self.next_id(entity_type), name=name, **fields)
        return self.register(entity)

    # -- lookup ----------------------------------------------------------------

    def get(self, entity_id: str) -> ManagedEntity:
        try:
            return self._by_id[entity_id]
        except KeyError:
            raise InventoryError(f"no entity with id {entity_id!r}") from None

    def find(self, entity_type: type, name: str) -> typing.Any:
        for entity in self.all(entity_type):
            if entity.name == name:
                return entity
        raise InventoryError(f"no {entity_type.__name__} named {name!r}")

    def all(self, entity_type: type) -> list[typing.Any]:
        return list(self._by_type.get(entity_type, {}).values())

    def count(self, entity_type: type) -> int:
        return len(self._by_type.get(entity_type, {}))

    def __contains__(self, entity_id: str) -> bool:
        return entity_id in self._by_id

    def __len__(self) -> int:
        return len(self._by_id)

    # -- summaries ---------------------------------------------------------------

    def size_summary(self) -> dict[str, int]:
        """Entity counts by type, for R-T1-style setup tables."""
        return {
            prefix: self.count(entity_type)
            for entity_type, prefix in _PREFIXES.items()
        }

    def footprint(self) -> int:
        """A proxy for inventory-service memory/DB row count.

        Hosts and VMs dominate (per-entity stats rows); datastores count
        per mounting host because each mount is a row the rescan touches.
        """
        mounts = sum(
            len(datastore.hosts) for datastore in self.all(Datastore)
        )
        return len(self._by_id) + mounts
