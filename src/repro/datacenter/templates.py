"""Template specifications and the template library.

A :class:`TemplateSpec` is the *shape* of a VM (vCPUs, memory, disk size);
the library instantiates golden-image template VMs from specs onto chosen
datastores. Cloud catalogs (:mod:`repro.cloud.catalog`) reference these
templates.
"""

from __future__ import annotations

import dataclasses

from repro.datacenter.entities import Datastore
from repro.datacenter.inventory import Inventory
from repro.datacenter.vm import DiskBacking, PowerState, VirtualDisk, VirtualMachine


@dataclasses.dataclass(frozen=True)
class TemplateSpec:
    """Immutable description of a deployable image."""

    name: str
    vcpus: int = 2
    memory_gb: float = 4.0
    disk_gb: float = 40.0

    def __post_init__(self) -> None:
        if self.vcpus < 1:
            raise ValueError("vcpus must be >= 1")
        if self.memory_gb <= 0 or self.disk_gb <= 0:
            raise ValueError("memory_gb and disk_gb must be positive")


# Specs spanning the range the paper's clouds deploy: small dev/test boxes
# through database-class images. Disk sizes drive the full-clone data cost.
SMALL_LINUX = TemplateSpec("small-linux", vcpus=1, memory_gb=2.0, disk_gb=16.0)
MEDIUM_LINUX = TemplateSpec("medium-linux", vcpus=2, memory_gb=4.0, disk_gb=40.0)
LARGE_WINDOWS = TemplateSpec("large-windows", vcpus=4, memory_gb=8.0, disk_gb=80.0)
DATABASE = TemplateSpec("database", vcpus=8, memory_gb=32.0, disk_gb=200.0)

DEFAULT_SPECS = (SMALL_LINUX, MEDIUM_LINUX, LARGE_WINDOWS, DATABASE)


class TemplateLibrary:
    """Instantiates and tracks golden-image templates in an inventory."""

    def __init__(self, inventory: Inventory) -> None:
        self.inventory = inventory
        self._templates: dict[str, VirtualMachine] = {}

    def publish(self, spec: TemplateSpec, datastore: Datastore) -> VirtualMachine:
        """Create a template VM for ``spec`` backed on ``datastore``."""
        if spec.name in self._templates:
            raise ValueError(f"template {spec.name!r} already published")
        datastore.allocate(spec.disk_gb)
        backing = DiskBacking(datastore=datastore, size_gb=spec.disk_gb, read_only=True)
        template = self.inventory.create(
            VirtualMachine,
            name=f"template:{spec.name}",
            vcpus=spec.vcpus,
            memory_gb=spec.memory_gb,
            is_template=True,
            power_state=PowerState.OFF,
        )
        template.attach_disk(
            VirtualDisk(label="disk-0", backing=backing, provisioned_gb=spec.disk_gb)
        )
        self._templates[spec.name] = template
        return template

    def get(self, name: str) -> VirtualMachine:
        try:
            return self._templates[name]
        except KeyError:
            raise KeyError(f"no template named {name!r}") from None

    def names(self) -> list[str]:
        return sorted(self._templates)

    def __len__(self) -> int:
        return len(self._templates)
