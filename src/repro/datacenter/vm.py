"""Virtual machines, virtual disks, backing chains, and snapshots.

The disk-backing chain is the heart of the paper's data-plane argument:

- A **full clone** copies the entire base backing: bytes moved scale with
  the virtual-disk size.
- A **linked clone** creates a new, initially-empty *delta* backing whose
  parent is a read-only snapshot backing of the source: bytes moved are
  (nearly) zero, but every clone still costs the control plane the same
  bookkeeping — which is exactly how the control plane becomes the
  bottleneck once clones go linked.
"""

from __future__ import annotations

import dataclasses
import enum
import itertools
import typing

from repro.datacenter.entities import Datastore, Host, ManagedEntity, Network

_backing_ids = itertools.count(1)


class PowerState(enum.Enum):
    ON = "poweredOn"
    OFF = "poweredOff"
    SUSPENDED = "suspended"


@dataclasses.dataclass
class DiskBacking:
    """One file in a virtual disk's backing chain.

    ``parent`` is None for a base backing; linked clones hang delta
    backings off shared read-only parents. ``size_gb`` is the *allocated*
    size of this link only (deltas start small and grow).
    """

    datastore: Datastore
    size_gb: float
    parent: typing.Optional["DiskBacking"] = None
    read_only: bool = False
    backing_id: int = dataclasses.field(default_factory=lambda: next(_backing_ids))
    children: int = 0

    def __post_init__(self) -> None:
        if self.size_gb < 0:
            raise ValueError(f"negative backing size {self.size_gb}")
        if self.parent is not None:
            self.parent.children += 1

    @property
    def chain_depth(self) -> int:
        """Number of links from this backing to the base (base == 1)."""
        depth = 1
        backing = self
        while backing.parent is not None:
            depth += 1
            backing = backing.parent
        return depth

    def chain(self) -> list["DiskBacking"]:
        """This backing and all ancestors, leaf first."""
        links = []
        backing: DiskBacking | None = self
        while backing is not None:
            links.append(backing)
            backing = backing.parent
        return links

    @property
    def logical_size_gb(self) -> float:
        """Size of the full logical disk (sum over the chain)."""
        return sum(link.size_gb for link in self.chain())


@dataclasses.dataclass
class VirtualDisk:
    """A virtual disk attached to a VM; points at the leaf of its chain."""

    label: str
    backing: DiskBacking
    provisioned_gb: float

    @property
    def datastore(self) -> Datastore:
        return self.backing.datastore

    @property
    def chain_depth(self) -> int:
        return self.backing.chain_depth


@dataclasses.dataclass
class Snapshot:
    """A point-in-time VM state; freezes the current leaf backings read-only."""

    name: str
    backings: list[DiskBacking]
    children: list["Snapshot"] = dataclasses.field(default_factory=list)


@dataclasses.dataclass(eq=False)
class VirtualMachine(ManagedEntity):
    """A virtual machine (or template, when ``is_template``)."""

    vcpus: int = 2
    memory_gb: float = 4.0
    power_state: PowerState = PowerState.OFF
    host: typing.Optional[Host] = None
    disks: list[VirtualDisk] = dataclasses.field(default_factory=list)
    networks: list[Network] = dataclasses.field(default_factory=list)
    is_template: bool = False
    snapshots: list[Snapshot] = dataclasses.field(default_factory=list)
    created_at: float = 0.0
    destroyed_at: typing.Optional[float] = None

    @property
    def is_powered_on(self) -> bool:
        return self.power_state == PowerState.ON

    @property
    def total_disk_gb(self) -> float:
        """Logical (provisioned) disk size across all disks."""
        return sum(disk.provisioned_gb for disk in self.disks)

    @property
    def allocated_disk_gb(self) -> float:
        """Actually-allocated bytes unique to this VM (leaf links only)."""
        return sum(disk.backing.size_gb for disk in self.disks)

    @property
    def max_chain_depth(self) -> int:
        return max((disk.chain_depth for disk in self.disks), default=0)

    @property
    def is_linked_clone(self) -> bool:
        return any(disk.backing.parent is not None for disk in self.disks)

    def place_on(self, host: Host) -> None:
        if self.host is not None:
            self.host.vms.discard(self)
        self.host = host
        host.vms.add(self)

    def evacuate(self) -> None:
        if self.host is not None:
            self.host.vms.discard(self)
        self.host = None

    def attach_disk(self, disk: VirtualDisk) -> None:
        self.disks.append(disk)

    def take_snapshot(self, name: str) -> Snapshot:
        """Freeze current leaves read-only and attach fresh deltas.

        Mirrors the hypervisor behaviour: after a snapshot the running VM
        writes to new delta links whose parents are the frozen leaves.
        """
        frozen = []
        for disk in self.disks:
            leaf = disk.backing
            leaf.read_only = True
            frozen.append(leaf)
            disk.backing = DiskBacking(
                datastore=leaf.datastore, size_gb=0.0, parent=leaf
            )
        snapshot = Snapshot(name=name, backings=frozen)
        self.snapshots.append(snapshot)
        return snapshot
