"""Virtual-infrastructure inventory: the objects the control plane manages.

This mirrors the vSphere managed-object model at the granularity the paper's
analysis needs: datacenters contain clusters of hosts, hosts mount
datastores and attach networks, VMs live on a host with virtual disks whose
backings form linked-clone chains.

The model is *pure data* — no simulation time, no queueing. All timing and
contention live in :mod:`repro.controlplane`, :mod:`repro.storage`, and
:mod:`repro.operations`, which manipulate these objects.
"""

from repro.datacenter.entities import (
    Cluster,
    Datacenter,
    Datastore,
    Host,
    HostState,
    Network,
)
from repro.datacenter.inventory import Inventory, InventoryError
from repro.datacenter.templates import TemplateLibrary, TemplateSpec
from repro.datacenter.vm import (
    DiskBacking,
    PowerState,
    Snapshot,
    VirtualDisk,
    VirtualMachine,
)

__all__ = [
    "Cluster",
    "Datacenter",
    "Datastore",
    "DiskBacking",
    "Host",
    "HostState",
    "Inventory",
    "InventoryError",
    "Network",
    "PowerState",
    "Snapshot",
    "TemplateLibrary",
    "TemplateSpec",
    "VirtualDisk",
    "VirtualMachine",
]
