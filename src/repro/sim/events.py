"""Events: the unit of coordination in the simulation kernel.

An :class:`Event` is a one-shot occurrence. Processes wait on events by
yielding them; resources and the kernel trigger them. Events carry either a
value (success) or an exception (failure), and support cancellation so that
fluid-flow models (e.g. the fair-share bandwidth link) can reschedule
completions.

Hot-path notes: events are the single most-allocated object in any run, so
the class is slotted and names are lazy — ``name`` is only formatted when a
``repr`` or error message actually needs it, never on the dispatch path.
"""

from __future__ import annotations

import sys
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator

# Event lifecycle states.
PENDING = "pending"
TRIGGERED = "triggered"  # scheduled on the queue, value decided
PROCESSED = "processed"  # callbacks have run
CANCELLED = "cancelled"

# Timeout pooling: a fired timeout is recycled only when the kernel loop
# holds the sole remaining references. At the recycle check those are the
# loop's local, this frame's ``self``, and getrefcount's own argument — so
# exactly _POOL_REFS means "nobody else is holding this object". The trick
# is CPython-specific; other interpreters simply never pool.
_POOLABLE = sys.implementation.name == "cpython"
_POOL_REFS = 3
_POOL_LIMIT = 256
_getrefcount = getattr(sys, "getrefcount", None)


class EventCancelled(Exception):
    """Raised when waiting on an event that was cancelled."""


class Event:
    """A one-shot occurrence that processes can wait on.

    Parameters
    ----------
    sim:
        The owning simulator.
    name:
        Optional label used in ``repr`` and error messages. Subclasses
        with a cheap derived label leave this unset and override
        :meth:`_default_name` instead, so no string is built per event.
    """

    __slots__ = ("sim", "_name", "callbacks", "_state", "_value", "_exception")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self._name = name or None
        self.callbacks: list[typing.Callable[["Event"], None]] = []
        self._state = PENDING
        self._value: typing.Any = None
        self._exception: BaseException | None = None

    # -- introspection ----------------------------------------------------

    @property
    def name(self) -> str:
        """Label for diagnostics; formatted lazily on first use."""
        name = self._name
        if name is None:
            return self._default_name()
        return name

    @name.setter
    def name(self, value: str) -> None:
        self._name = value

    def _default_name(self) -> str:
        return ""

    @property
    def triggered(self) -> bool:
        """True once the event's outcome has been decided."""
        return self._state in (TRIGGERED, PROCESSED)

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self._state == PROCESSED

    @property
    def cancelled(self) -> bool:
        return self._state == CANCELLED

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self.triggered and self._exception is None

    @property
    def value(self) -> typing.Any:
        """The success value, or raises the failure exception."""
        if self._exception is not None:
            raise self._exception
        return self._value

    @property
    def exception(self) -> BaseException | None:
        return self._exception

    # -- triggering -------------------------------------------------------

    def succeed(self, value: typing.Any = None, delay: float = 0.0) -> "Event":
        """Mark the event successful and schedule its callbacks."""
        if self._state != PENDING:
            raise RuntimeError(f"{self!r} already {self._state}")
        self._state = TRIGGERED
        self._value = value
        self.sim._enqueue(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Mark the event failed; waiters will see ``exception`` raised."""
        if self._state != PENDING:
            raise RuntimeError(f"{self!r} already {self._state}")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._state = TRIGGERED
        self._exception = exception
        self.sim._enqueue(self, delay)
        return self

    def cancel(self) -> None:
        """Cancel an event whose callbacks have not yet run.

        A cancelled event never fires its callbacks. Pending events and
        triggered-but-unprocessed events (e.g. a scheduled completion timer
        being rescheduled) may be cancelled; a processed event may not.
        A triggered event sits on the simulator heap, so the simulator is
        told about the dead entry for its heap-hygiene accounting.
        """
        if self._state == PROCESSED:
            raise RuntimeError(f"cannot cancel {self!r}: already processed")
        if self._state == TRIGGERED:
            self.sim._note_cancelled()
        self._state = CANCELLED

    # -- kernel hooks -------------------------------------------------------

    def _run_callbacks(self) -> None:
        if self._state == CANCELLED:
            return
        self._state = PROCESSED
        callbacks = self.callbacks
        if callbacks:
            self.callbacks = []
            for callback in callbacks:
                callback(self)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {self._state}>"


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(
        self,
        sim: "Simulator",
        delay: float,
        value: typing.Any = None,
        name: str = "",
    ) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        # Inlined Event.__init__: timeouts are the hottest allocation in the
        # whole simulator, and the super() indirection is measurable.
        self.sim = sim
        self._name = name or None
        self.callbacks = []
        self._state = TRIGGERED
        self._value = value
        self._exception = None
        self.delay = delay
        sim._enqueue(self, delay)

    def _default_name(self) -> str:
        return f"timeout({self.delay})"

    def _run_callbacks(self) -> None:
        # Inlined Event._run_callbacks plus the pool recycle check.
        if self._state == CANCELLED:
            return
        self._state = PROCESSED
        callbacks = self.callbacks
        if callbacks:
            self.callbacks = []
            for callback in callbacks:
                callback(self)
        # Recycle: only exact Timeout instances the kernel alone still
        # references may be reused. A timeout held by a process, condition,
        # resource, or any user structure has extra references and is left
        # alone forever — reuse can never invalidate a visible object.
        if (
            _POOLABLE
            and type(self) is Timeout
            and _getrefcount(self) == _POOL_REFS
        ):
            pool = self.sim._timeout_pool
            if pool is not None and len(pool) < _POOL_LIMIT:
                self._name = None
                self._value = None
                self._exception = None
                pool.append(self)


class Condition(Event):
    """Base for events composed of other events (:class:`AllOf`/:class:`AnyOf`).

    The condition evaluates each time a constituent fires. A failing
    constituent fails the condition immediately with the same exception.
    """

    __slots__ = ("events",)

    def __init__(self, sim: "Simulator", events: typing.Sequence[Event], name: str = "") -> None:
        super().__init__(sim, name=name)
        self.events = list(events)
        for event in self.events:
            if event.sim is not sim:
                raise ValueError("all constituent events must share a simulator")
        if not self.events:
            # Vacuous truth: an empty AllOf succeeds, an empty AnyOf never
            # would — but treating both as immediate success is the least
            # surprising behaviour for fan-out over possibly-empty sets.
            self.succeed(value={})
            return
        for event in self.events:
            if event.processed:
                # A processed event already ran (and cleared) its callback
                # list; appending there would leave a dead reference that
                # never fires. Fold the outcome in directly instead.
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _evaluate(self) -> bool:
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self.triggered or self.cancelled:
            return
        if not event.ok:
            self.fail(event.exception)  # type: ignore[arg-type]
            return
        if self._evaluate():
            self.succeed(value=self._collect())

    def _collect(self) -> dict[Event, typing.Any]:
        return {event: event._value for event in self.events if event.processed and event.ok}


class AllOf(Condition):
    """Succeeds once every constituent event has succeeded."""

    __slots__ = ()

    def _evaluate(self) -> bool:
        return all(event.processed and event.ok for event in self.events)


class AnyOf(Condition):
    """Succeeds as soon as any constituent event succeeds."""

    __slots__ = ()

    def _evaluate(self) -> bool:
        return any(event.processed and event.ok for event in self.events)
