"""Priority-queue backends for the simulation kernel.

The kernel's default backend is the binary heap inlined in
:mod:`repro.sim.kernel` (C-accelerated ``heapq``, O(log n) per operation).
This module provides the alternative :class:`CalendarQueue` backend — a
calendar queue (Brown, CACM 1988) with lazy, ladder-style buckets that is
O(1) amortized per operation when the pending set is large, which is
exactly the shape a hyperscale fleet produces: hundreds of thousands of
standing lifetime timers plus a storm of near-term control-plane service
events. ``heappush`` stays cheap at depth but ``heappop`` sifts the full
height of the heap on every dispatch; the calendar pays a constant instead.

Design notes
------------

- Entries are the kernel's ``(time, priority, sequence, event)`` tuples,
  untouched. Pop order implements the exact ``(time, priority, sequence)``
  total order, so schedules are byte-identical to the heap backend no
  matter how the calendar resizes internally (covered by differential
  tests in ``tests/sim/test_calendar_queue.py``).
- An entry at time ``t`` belongs to day ``int(t * 1/width)`` and lives in
  bucket ``day & mask`` over a power-of-two ring. Push is a plain C-speed
  ``list.append`` — buckets stay *unsorted* until the head scan reaches
  their day (the "lazy queue" refinement of Brown's design), when the
  bucket is sorted once (C timsort) and the current day's prefix is split
  off into a serve list consumed by index. Pop is therefore an index bump
  plus a cancelled check; the sort cost is amortized over every entry the
  bucket held.
- The head scan walks at most one "year" of buckets; a sparse year falls
  back to a direct min-scan over buckets and jumps the day pointer to the
  winner. A later push can land behind the jumped pointer, so ``push``
  pulls the pointer back (abandoning any serve run in progress) — the
  invariant is that the pointer never passes a live entry.
- Cancelled entries are skipped when they surface in a serve list, and the
  same cancel-counter rule as the kernel heap (``>= 64`` dead and dead >=
  half the entries) triggers a compacting rebuild — so cancel-heavy runs
  keep a bounded queue exactly like the heap backend.
- Rebuilds re-estimate the bucket width from the mean inter-event gap over
  the pending set (Brown's adaptation rule) and redistribute with plain
  appends — no sorting, because buckets are lazily sorted anyway. A
  degenerate span (all-equal timestamps) keeps the current width.
"""

from __future__ import annotations

import typing
from bisect import insort
from heapq import nsmallest
from itertools import chain

from repro.sim.events import CANCELLED

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.events import Event

Entry = typing.Tuple[float, int, int, "Event"]

_MIN_BUCKETS = 16


class CalendarQueue:
    """Calendar priority queue over ``(time, priority, sequence, event)`` entries."""

    __slots__ = (
        "_buckets",
        "_mask",
        "_width",
        "_iw",
        "_count",
        "_cancelled",
        "_day",
        "_floor",
        "_serve",
        "_index",
    )

    def __init__(self, start: float = 0.0, width: float = 1.0, buckets: int = _MIN_BUCKETS) -> None:
        if width <= 0:
            raise ValueError(f"bucket width must be positive, got {width!r}")
        size = _MIN_BUCKETS
        while size < buckets:
            size <<= 1
        self._buckets: list[list[Entry]] = [[] for _ in range(size)]
        self._mask = size - 1
        self._width = float(width)
        self._iw = 1.0 / self._width
        self._count = 0  # all entries, live and dead
        self._cancelled = 0  # dead entries still buried
        self._floor = float(start)  # latest observed head time
        self._day = int(self._floor * self._iw)
        self._serve: list[Entry] | None = None  # current day, sorted
        self._index = 0  # consume pointer into _serve

    def __len__(self) -> int:
        """Scheduled entries, live and dead — mirrors ``len(heap)``."""
        return self._count

    @property
    def dead(self) -> int:
        return self._cancelled

    @property
    def buckets(self) -> int:
        return self._mask + 1

    @property
    def width(self) -> float:
        return self._width

    # -- core operations ---------------------------------------------------

    def push(self, entry: Entry) -> None:
        day = int(entry[0] * self._iw)
        self._count += 1
        current = self._day
        if day > current:
            self._buckets[day & self._mask].append(entry)
        elif day == current and self._serve is not None:
            # Due on the day being served: splice into the unconsumed tail.
            # Sequence numbers are unique, so the insertion scan never
            # compares the (unorderable) event in slot 3.
            insort(self._serve, entry, self._index)
        else:
            # At or behind the pointer (the sparse-year fallback may have
            # jumped it far ahead). Pull the pointer back so the scan never
            # walks past a live entry, returning any serve run in progress
            # to its bucket first.
            serve = self._serve
            if serve is not None:
                if self._index < len(serve):
                    self._buckets[current & self._mask] += serve[self._index :]
                self._serve = None
            self._day = day
            self._buckets[day & self._mask].append(entry)

    def note_cancelled(self) -> None:
        """A buried entry died; compact when the dead dominate."""
        self._cancelled += 1
        if self._cancelled >= 64 and self._cancelled * 2 >= self._count:
            self._rebuild()

    def peek(self) -> Entry | None:
        """The minimum live entry, or ``None`` — does not remove it."""
        while True:
            serve = self._serve
            if serve is not None:
                index = self._index
                hi = len(serve)
                while index < hi:
                    head = serve[index]
                    if head[3]._state != CANCELLED:
                        self._index = index
                        return head
                    index += 1
                    self._count -= 1
                    self._cancelled -= 1
                self._serve = None
                self._day += 1  # this day is fully consumed
            if self._count == 0:
                return None
            if not self._advance():
                return None

    def pop(self) -> Entry:
        """Remove and return the minimum live entry."""
        # Fast path: a live entry is waiting in the serve list (the
        # overwhelmingly common case in a drain loop) — skip the peek call.
        serve = self._serve
        if serve is not None:
            index = self._index
            if index < len(serve):
                head = serve[index]
                if head[3]._state != CANCELLED:
                    # Null the consumed slot so the queue drops its
                    # reference — the kernel's timeout pool relies on an
                    # exact refcount after dispatch.
                    serve[index] = None  # type: ignore[call-overload]
                    self._index = index + 1
                    self._count -= 1
                    self._floor = head[0]
                    size = self._mask + 1
                    if size > _MIN_BUCKETS and self._count < size >> 2:
                        self._rebuild()
                    return head
        head = self.peek()
        if head is None:
            raise IndexError("pop from an empty calendar queue")
        serve = self._serve
        index = self._index
        serve[index] = None  # type: ignore[index]
        self._index = index + 1
        self._count -= 1
        self._floor = head[0]
        size = self._mask + 1
        if size > _MIN_BUCKETS and self._count < size >> 2:
            self._rebuild()
        return head

    # -- internals ---------------------------------------------------------

    def _advance(self) -> bool:
        """Walk the ring from the day pointer and set up the next serve list."""
        if self._count > (self._mask + 1) << 2:
            # Growth is deferred to serve time: pushes are plain appends no
            # matter how overfull the ring gets, so a burst of arrivals pays
            # for at most one compacting rebuild when it is next drained,
            # instead of a cascade of doublings while it arrives.
            self._rebuild()
        buckets = self._buckets
        mask = self._mask
        iw = self._iw
        day = self._day
        scanned = 0
        limit = mask + 1
        while True:
            bucket = buckets[day & mask]
            if bucket:
                bucket.sort()
                if int(bucket[0][0] * iw) == day:
                    hi = len(bucket)
                    if int(bucket[hi - 1][0] * iw) == day:
                        # Whole bucket is due today: adopt it wholesale.
                        buckets[day & mask] = []
                        serve = bucket
                    else:
                        cut = 1
                        while int(bucket[cut][0] * iw) == day:
                            cut += 1
                        serve = bucket[:cut]
                        del bucket[:cut]
                    self._serve = serve
                    self._index = 0
                    self._day = day
                    return True
                # Non-empty, but everything here belongs to a later lap.
            day += 1
            scanned += 1
            if scanned > limit:
                # Sparse year: nothing due within one lap. Min-scan the
                # ring and jump the pointer to the winner's day; the next
                # lap lands on it directly.
                best: Entry | None = None
                for candidate in buckets:
                    if candidate:
                        head = min(candidate)
                        if best is None or head < best:
                            best = head
                if best is None:
                    return False
                day = int(best[0] * iw)
                scanned = 0

    def _rebuild(self) -> None:
        """Resize the ring and/or compact the dead; re-estimate the width."""
        serve = self._serve
        if self._cancelled:
            entries = [
                entry
                for bucket in self._buckets
                for entry in bucket
                if entry[3]._state != CANCELLED
            ]
            if serve is not None:
                entries.extend(
                    entry
                    for entry in serve[self._index :]
                    if entry[3]._state != CANCELLED
                )
        else:
            # Nothing is dead: collect at C speed without the state checks.
            entries = list(chain.from_iterable(self._buckets))
            if serve is not None:
                entries.extend(serve[self._index :])
        self._serve = None
        self._count = len(entries)
        self._cancelled = 0
        size = _MIN_BUCKETS
        while size < len(entries):
            size <<= 1
        width = self._estimate_width(entries)
        self._buckets = [[] for _ in range(size)]
        self._mask = mask = size - 1
        self._width = width
        self._iw = iw = 1.0 / width
        buckets = self._buckets
        base = self._floor
        for entry in entries:
            when = entry[0]
            if when < base:
                base = when
            buckets[int(when * iw) & mask].append(entry)
        self._day = int(base * iw)

    def _estimate_width(self, entries: list[Entry]) -> float:
        # Brown's adaptation rule: bucket width a multiple of the mean
        # inter-event gap *near the head*, so ~16 entries land per serving
        # day — wide enough to amortize the per-day advance/sort/split
        # overhead across a serve run, narrow enough that a push due on
        # the serving day splices into a short list (measured sweet spot
        # on the churn bench; 4-32 entries/day all perform within ~10%).
        # The near-head qualifier matters: a heavy-tailed
        # pending set (lifetimes spanning months over arrivals spaced
        # milliseconds) makes the full-span mean overestimate the width by
        # orders of magnitude, dumping a huge fraction of the set into the
        # current day — and every push due "today" then pays an O(n)
        # insort into the serve list. An O(n log k) partial selection of
        # the k earliest timestamps prices the width off the density the
        # head scan will actually serve next; far-future entries just wrap
        # the ring a few extra laps, which costs nothing until their day
        # comes and the set (and width) have drained toward them.
        if len(entries) < 2:
            return self._width
        times = [entry[0] for entry in entries]
        k = min(64, len(times))
        heads = nsmallest(k, times)
        span = heads[-1] - heads[0]
        if span > 0.0:
            return 16.0 * span / (k - 1)
        # Degenerate near-head (a co-timed storm): fall back to the full
        # span; if that is flat too, keep the current width.
        span = max(times) - heads[0]
        if span <= 0.0:
            return self._width
        return 2.0 * span / len(times)
