"""Reproducible named random streams.

Every stochastic component draws from its own stream, derived from the
scenario seed and a stable name, so that changing one component's draw
pattern (e.g. adding a new operation type) does not perturb the others —
the standard variance-reduction discipline for simulation studies.
"""

from __future__ import annotations

import hashlib
import math
import random


def _derive_seed(root_seed: int, name: str) -> int:
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A factory of independent, reproducibly-seeded ``random.Random`` streams."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name``, created on first use."""
        if name not in self._streams:
            self._streams[name] = random.Random(_derive_seed(self.seed, name))
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """A child factory whose streams are independent of this one's."""
        return RandomStreams(_derive_seed(self.seed, f"spawn:{name}"))


def exponential(rng: random.Random, mean: float) -> float:
    """Exponential variate with the given mean (mean <= 0 returns 0)."""
    if mean <= 0:
        return 0.0
    return rng.expovariate(1.0 / mean)


def lognormal_from_median(rng: random.Random, median: float, sigma: float) -> float:
    """Lognormal variate parameterized by its median and shape ``sigma``.

    Operation service times in management planes are heavy-tailed; the
    companion ISCA'10 study reports latency distributions well described by
    a lognormal body. Parameterizing by the median keeps profiles readable.
    """
    if median <= 0:
        return 0.0
    return median * math.exp(rng.gauss(0.0, sigma))


def bounded(value: float, low: float, high: float) -> float:
    """Clamp a variate into [low, high]."""
    return max(low, min(high, value))


def pareto(rng: random.Random, shape: float, scale: float) -> float:
    """Pareto variate (heavy tail for VM lifetimes)."""
    if shape <= 0 or scale <= 0:
        raise ValueError("shape and scale must be positive")
    return scale * (rng.random() ** (-1.0 / shape))
