"""Deterministic discrete-event simulation kernel.

This subpackage is a self-contained DES engine in the style of SimPy but
purpose-built for this reproduction: deterministic event ordering, named
random streams, interruptible processes, and first-class metrics.

The public surface:

- :class:`~repro.sim.kernel.Simulator` — the event loop.
- :class:`~repro.sim.events.Event`, :class:`~repro.sim.events.Timeout`,
  :class:`~repro.sim.events.AllOf`, :class:`~repro.sim.events.AnyOf`.
- :class:`~repro.sim.kernel.Process` and
  :class:`~repro.sim.kernel.Interrupt` for failure injection.
- Resources: :class:`~repro.sim.resources.Resource`,
  :class:`~repro.sim.resources.PriorityResource`,
  :class:`~repro.sim.resources.Store`.
- :class:`~repro.sim.random.RandomStreams` — reproducible named substreams.
- :mod:`~repro.sim.stats` — counters, gauges, latency recorders, time series.
"""

from repro.sim.events import AllOf, AnyOf, Event, EventCancelled, Timeout
from repro.sim.kernel import Interrupt, Process, Simulator
from repro.sim.queues import CalendarQueue
from repro.sim.random import RandomStreams
from repro.sim.resources import PriorityResource, Resource, Store
from repro.sim.stats import (
    Counter,
    Gauge,
    Histogram,
    LatencyRecorder,
    LogHistogram,
    MetricsRegistry,
    TimeSeries,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "CalendarQueue",
    "Counter",
    "Event",
    "EventCancelled",
    "Gauge",
    "Histogram",
    "Interrupt",
    "LatencyRecorder",
    "LogHistogram",
    "MetricsRegistry",
    "PriorityResource",
    "Process",
    "RandomStreams",
    "Resource",
    "Simulator",
    "Store",
    "TimeSeries",
    "Timeout",
]
