"""The simulation kernel: event loop and process management.

Processes are Python generators that yield :class:`~repro.sim.events.Event`
instances; the kernel resumes them when the event fires. Determinism is
guaranteed by a strict (time, priority, sequence) ordering on the event heap:
two runs with the same seed produce identical schedules.

Fast path
---------

Same-tick resumes — process bootstrap on ``spawn()``, a yield of an
already-processed event, and ``interrupt()`` — do not allocate relay
:class:`Event` objects. They go on an *urgent* FIFO of ``(time, sequence,
callable)`` entries that the loop drains against the heap using the exact
same ``(time, priority, sequence)`` total order the relay events would have
had, so the schedule is bit-identical to the pre-fast-path kernel (covered
by a property test). ``Simulator(fast_resume=False)`` keeps the old
event-object path for differential testing.

Heap hygiene: cancelling a scheduled event (fair-share links do this on
every membership change) leaves a dead heap entry. Dead heads are dropped
on the single shared scan in :meth:`Simulator._prune`, and when dead
entries outnumber live ones the heap is compacted in place, so cancel-heavy
runs keep a bounded heap.

Queue backends
--------------

``Simulator(queue="heap")`` (the default) keeps the inlined binary heap;
``queue="calendar"`` swaps in the :class:`~repro.sim.queues.CalendarQueue`,
O(1) amortized under hyperscale pending sets. Both implement the same
``(time, priority, sequence)`` total order and the same cancel/compaction
semantics, so schedules are byte-identical — the heap is retained for
differential testing and small runs. ``REPRO_SIM_QUEUE`` selects the
default backend process-wide (used by the queue-equality CI job).

Timeouts are pooled: a fired :class:`Timeout` that nothing else references
is recycled onto a per-simulator free list and reused by
:meth:`Simulator.timeout` (see ``docs/performance.md`` for the lifecycle
rules). ``Simulator(pool_events=False)`` disables reuse for differential
testing; pooling never affects sequence numbering, so schedules are
identical either way.
"""

from __future__ import annotations

import os
import typing
import warnings
from collections import deque
from heapq import heapify, heappop, heappush

from repro.sim.events import (
    CANCELLED,
    PENDING,
    PROCESSED,
    TRIGGERED,
    Event,
    EventCancelled,
    Timeout,
)
from repro.sim.queues import CalendarQueue

ProcessGenerator = typing.Generator[Event, typing.Any, typing.Any]

# Priorities for same-timestamp ordering: kernel internals (process resume)
# run before ordinary events so resource handoffs are prompt.
URGENT = 0
NORMAL = 1

_INF = float("inf")


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` is whatever the interrupter supplied — typically an
    exception or a short string describing the failure being injected.
    """

    def __init__(self, cause: typing.Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running activity; also an event that fires when the activity ends.

    The process's success value is the generator's return value; an uncaught
    exception inside the generator fails the process event with it.
    """

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: ProcessGenerator, name: str = "") -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"process body must be a generator, got {type(generator).__name__}")
        self.sim = sim
        self._name = name or None
        self.callbacks = []
        self._state = PENDING
        self._value = None
        self._exception = None
        self._generator = generator
        self._waiting_on: Event | None = None
        # Kick off at the current time, urgently, so spawn order is preserved.
        if sim._fast_resume:
            sim._defer(self._bootstrap)
        else:
            bootstrap = Event(sim, name=f"start:{self.name}")
            bootstrap.callbacks.append(self._resume)
            bootstrap.succeed()

    def _default_name(self) -> str:
        return getattr(self._generator, "__name__", "process")

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: typing.Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is a no-op error; interrupting a
        process blocked on an event detaches it from that event first.
        """
        if self.triggered:
            raise RuntimeError(f"cannot interrupt finished process {self.name!r}")
        if self.sim._fast_resume:
            self.sim._defer(lambda: self._throw_in(Interrupt(cause)))
        else:
            interrupt_event = Event(self.sim, name=f"interrupt:{self.name}")
            interrupt_event.callbacks.append(
                lambda _event: self._throw_in(Interrupt(cause))
            )
            interrupt_event.succeed()

    # -- internals --------------------------------------------------------

    def _bootstrap(self) -> None:
        self._step(self._generator.send, None)

    def _detach(self) -> None:
        if self._waiting_on is not None and self._resume in self._waiting_on.callbacks:
            self._waiting_on.callbacks.remove(self._resume)
        self._waiting_on = None

    def _throw_in(self, exc: BaseException) -> None:
        if self.triggered:
            return
        waited = self._waiting_on
        self._detach()
        # Withdrawable waits (resource requests) must not leak: a process
        # interrupted while queued would otherwise hold its place in line
        # forever; one granted in the same tick would hold the slot itself.
        if waited is not None and hasattr(waited, "withdraw"):
            if not waited.triggered:
                waited.withdraw()
            else:
                resource = getattr(waited, "resource", None)
                if resource is not None:
                    resource.release(waited)
        self._step(self._generator.throw, exc)

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event._state == CANCELLED:
            self._step(self._generator.throw, EventCancelled(event.name))
        elif event._exception is None:
            self._step(self._generator.send, event._value)
        else:
            self._step(self._generator.throw, event._exception)

    def _deferred_resume(self, target: Event) -> None:
        # Guards the same-tick resume of an already-processed yield: an
        # interrupt (or a further yield) between scheduling and draining
        # retargets or finishes the process, making this entry stale.
        if self._waiting_on is target:
            self._resume(target)

    def _step(self, advance: typing.Callable[[typing.Any], Event], arg: typing.Any) -> None:
        try:
            target = advance(arg)
        except StopIteration as stop:
            self.succeed(value=stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - process bodies may raise anything
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self.fail(
                TypeError(
                    f"process {self.name!r} yielded {target!r}; processes must yield Events"
                )
            )
            return
        if target.sim is not self.sim:
            self.fail(RuntimeError("yielded event belongs to a different simulator"))
            return
        self._waiting_on = target
        if target._state == PROCESSED:
            # Already fully fired: resume on the next tick of the loop.
            if self.sim._fast_resume:
                self.sim._defer(lambda: self._deferred_resume(target))
            else:
                relay = Event(self.sim, name=f"relay:{self.name}")
                relay.callbacks.append(lambda _event: self._deferred_resume(target))
                if target._exception is None:
                    relay.succeed(value=target._value)
                else:
                    relay.fail(target._exception)
        else:
            target.callbacks.append(self._resume)


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    start:
        Initial simulated time (seconds by convention throughout this repo).
    fast_resume:
        When True (the default) same-tick process resumes use the urgent
        FIFO instead of relay events. Schedules are identical either way;
        the flag exists for differential testing.
    queue:
        Scheduling backend: ``"heap"`` (binary heap, the default) or
        ``"calendar"`` (calendar queue, O(1) amortized at hyperscale).
        ``None`` reads ``REPRO_SIM_QUEUE`` from the environment, falling
        back to the heap. Schedules are byte-identical across backends.
    pool_events:
        When True (the default) fired timeouts with no outside references
        are recycled through a per-simulator free list. Never affects the
        schedule; the flag exists for differential testing.
    """

    def __init__(
        self,
        start: float = 0.0,
        fast_resume: bool = True,
        queue: str | None = None,
        pool_events: bool = True,
    ) -> None:
        if queue is None:
            queue = os.environ.get("REPRO_SIM_QUEUE") or "heap"
        if queue not in ("heap", "calendar"):
            raise ValueError(f"unknown queue backend {queue!r}; use 'heap' or 'calendar'")
        self._now = float(start)
        self._heap: list[tuple[float, int, int, Event]] = []
        self._calendar: CalendarQueue | None = (
            CalendarQueue(start) if queue == "calendar" else None
        )
        self._queue_kind = queue
        self._urgent: deque[tuple[float, int, typing.Callable[[], None]]] = deque()
        self._sequence = 0
        self._spawned = 0
        self._cancelled_in_heap = 0
        self._fast_resume = fast_resume
        self._timeout_pool: list[Timeout] | None = [] if pool_events else None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def queue_backend(self) -> str:
        """The scheduling backend in use: ``"heap"`` or ``"calendar"``."""
        return self._queue_kind

    @property
    def queue_depth(self) -> int:
        """Scheduled entries, live and dead — bounded by queue hygiene."""
        calendar = self._calendar
        return len(self._heap) if calendar is None else len(calendar)

    @property
    def heap_size(self) -> int:
        """Deprecated alias for :attr:`queue_depth` (pre-calendar name)."""
        warnings.warn(
            "Simulator.heap_size is deprecated; use Simulator.queue_depth",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.queue_depth

    # -- event construction ------------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create a fresh pending event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: typing.Any = None) -> Timeout:
        """An event that fires ``delay`` simulated seconds from now.

        Reuses a recycled :class:`Timeout` from the pool when one is
        available; see :meth:`Timeout._run_callbacks` for the recycle rules.
        """
        pool = self._timeout_pool
        if pool:
            if delay < 0:
                raise ValueError(f"negative delay {delay!r}")
            timeout = pool.pop()
            # Recycled timeouts arrive with a fresh empty callback list and
            # cleared name/value/exception slots; only re-arm the rest.
            # The enqueue is inlined: this is the hottest allocation path in
            # the simulator and the extra call is measurable.
            timeout._state = TRIGGERED
            timeout._value = value
            timeout.delay = delay
            self._sequence += 1
            entry = (self._now + delay, NORMAL, self._sequence, timeout)
            calendar = self._calendar
            if calendar is None:
                heappush(self._heap, entry)
            else:
                calendar.push(entry)
            return timeout
        return Timeout(self, delay, value=value)

    def spawn(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a process at the current simulated time."""
        self._spawned += 1
        return Process(self, generator, name=name or f"proc-{self._spawned}")

    # Alias familiar to SimPy users.
    process = spawn

    # -- scheduling ---------------------------------------------------------

    def _enqueue(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        self._sequence += 1
        calendar = self._calendar
        if calendar is None:
            heappush(self._heap, (self._now + delay, priority, self._sequence, event))
        else:
            calendar.push((self._now + delay, priority, self._sequence, event))

    def _defer(self, fn: typing.Callable[[], None]) -> None:
        """Schedule a same-tick kernel resume without an Event allocation.

        Entries carry the ``(time, sequence)`` the equivalent relay event
        would have had, so the drain order against the heap is unchanged.
        Time never moves backwards, so the FIFO is sorted by construction.
        """
        self._sequence += 1
        self._urgent.append((self._now, self._sequence, fn))

    def _note_cancelled(self) -> None:
        """A scheduled queue entry died; compact when the dead dominate."""
        calendar = self._calendar
        if calendar is not None:
            calendar.note_cancelled()
            return
        self._cancelled_in_heap += 1
        if self._cancelled_in_heap >= 64 and self._cancelled_in_heap * 2 >= len(self._heap):
            # In-place so loops holding a reference to the heap stay valid.
            self._heap[:] = [
                entry for entry in self._heap if entry[3]._state != CANCELLED
            ]
            heapify(self._heap)
            self._cancelled_in_heap = 0

    def _prune(self) -> None:
        """Drop cancelled heads — the single cancelled-event scan."""
        heap = self._heap
        while heap and heap[0][3]._state == CANCELLED:
            heappop(heap)
            self._cancelled_in_heap -= 1

    def _head(self) -> tuple[float, int, int, Event] | None:
        """The minimum live queue entry, pruning dead heads — or ``None``."""
        calendar = self._calendar
        if calendar is not None:
            return calendar.peek()
        self._prune()
        heap = self._heap
        return heap[0] if heap else None

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        head = self._head()
        head_time = head[0] if head is not None else _INF
        if self._urgent:
            urgent_time = self._urgent[0][0]
            if urgent_time < head_time:
                return urgent_time
        return head_time

    def step(self) -> None:
        """Process exactly one event."""
        head = self._head()
        urgent = self._urgent
        if urgent:
            entry = urgent[0]
            if head is None or (entry[0], NORMAL, entry[1]) <= head[:3]:
                urgent.popleft()
                self._now = entry[0]
                entry[2]()
                return
        if head is None:
            raise RuntimeError("step() on an empty schedule")
        calendar = self._calendar
        if calendar is None:
            when, _priority, _seq, event = heappop(self._heap)
        else:
            when, _priority, _seq, event = calendar.pop()
        head = None  # drop the entry tuple so the timeout pool's refcount guard holds
        if when < self._now:
            raise RuntimeError("event scheduled in the past; kernel invariant broken")
        self._now = when
        event._run_callbacks()

    def run(self, until: float | Event | None = None) -> typing.Any:
        """Run the event loop.

        ``until`` may be:

        - ``None`` — run until no events remain;
        - a number — run until simulated time reaches it;
        - an :class:`Event` — run until that event fires, returning its value
          (or raising its failure).
        """
        target: Event | None = None
        horizon: float | None = None
        if isinstance(until, Event):
            target = until
        elif until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise ValueError(f"until={horizon} is in the past (now={self._now})")
        if self._calendar is not None:
            return self._run_calendar(target, horizon)
        return self._run_heap(target, horizon)

    def _run_heap(self, target: Event | None, horizon: float | None) -> typing.Any:
        # One inlined drain loop for all three modes: per-event dispatch is
        # the simulator's innermost loop, so heap/urgent/method lookups are
        # bound locally and the cancelled scan happens exactly once per
        # iteration (in the shared prune below).
        heap = self._heap
        urgent = self._urgent
        pop = heappop
        while True:
            if target is not None and target._state == PROCESSED:
                return target.value
            while heap and heap[0][3]._state == CANCELLED:
                pop(heap)
                self._cancelled_in_heap -= 1
            if urgent:
                entry = urgent[0]
                if not heap or (entry[0], NORMAL, entry[1]) <= heap[0][:3]:
                    when = entry[0]
                    if horizon is not None and when > horizon:
                        break
                    urgent.popleft()
                    self._now = when
                    entry[2]()
                    continue
            elif not heap:
                if target is not None:
                    raise RuntimeError(
                        f"simulation ran dry before {target!r} fired (deadlock?)"
                    )
                break
            when, _priority, _seq, event = pop(heap)
            if horizon is not None and when > horizon:
                # Not yet due: put it back and stop at the horizon.
                heappush(heap, (when, _priority, _seq, event))
                break
            self._now = when
            event._run_callbacks()
        if horizon is not None:
            self._now = horizon
        return None

    def _run_calendar(self, target: Event | None, horizon: float | None) -> typing.Any:
        # Calendar drain: peek caches the head bucket, so the peek/pop pair
        # is O(1); a beyond-horizon head simply stays queued (no push-back).
        calendar = self._calendar
        assert calendar is not None
        urgent = self._urgent
        peek = calendar.peek
        pop = calendar.pop
        while True:
            if target is not None and target._state == PROCESSED:
                return target.value
            if not urgent and horizon is None:
                # Fast path: nothing can precede the queue head and there is
                # no horizon to respect, so skip the separate peek.
                try:
                    head = pop()
                except IndexError:
                    if target is not None:
                        raise RuntimeError(
                            f"simulation ran dry before {target!r} fired (deadlock?)"
                        ) from None
                    break
                when = head[0]
                event = head[3]
                # Drop the entry-tuple reference before dispatch so a fired
                # Timeout sees the same ambient refcount as on the heap path
                # (the pool's recycle guard depends on it).
                head = None
                self._now = when
                event._run_callbacks()
                continue
            head = peek()
            if urgent:
                entry = urgent[0]
                if head is None or (entry[0], NORMAL, entry[1]) <= head[:3]:
                    when = entry[0]
                    if horizon is not None and when > horizon:
                        break
                    urgent.popleft()
                    self._now = when
                    entry[2]()
                    continue
            elif head is None:
                if target is not None:
                    raise RuntimeError(
                        f"simulation ran dry before {target!r} fired (deadlock?)"
                    )
                break
            when = head[0]
            if horizon is not None and when > horizon:
                break
            pop()
            event = head[3]
            # Drop the entry-tuple reference before dispatch so a fired
            # Timeout sees the same ambient refcount as on the heap path
            # (the pool's recycle guard depends on it).
            head = None
            self._now = when
            event._run_callbacks()
        if horizon is not None:
            self._now = horizon
        return None
