"""The simulation kernel: event loop and process management.

Processes are Python generators that yield :class:`~repro.sim.events.Event`
instances; the kernel resumes them when the event fires. Determinism is
guaranteed by a strict (time, priority, sequence) ordering on the event heap:
two runs with the same seed produce identical schedules.
"""

from __future__ import annotations

import heapq
import typing

from repro.sim.events import CANCELLED, Event, EventCancelled, Timeout

ProcessGenerator = typing.Generator[Event, typing.Any, typing.Any]

# Priorities for same-timestamp ordering: kernel internals (process resume)
# run before ordinary events so resource handoffs are prompt.
URGENT = 0
NORMAL = 1


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` is whatever the interrupter supplied — typically an
    exception or a short string describing the failure being injected.
    """

    def __init__(self, cause: typing.Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


class Process(Event):
    """A running activity; also an event that fires when the activity ends.

    The process's success value is the generator's return value; an uncaught
    exception inside the generator fails the process event with it.
    """

    def __init__(self, sim: "Simulator", generator: ProcessGenerator, name: str = "") -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"process body must be a generator, got {type(generator).__name__}")
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self._generator = generator
        self._waiting_on: Event | None = None
        # Kick off at the current time, urgently, so spawn order is preserved.
        bootstrap = Event(sim, name=f"start:{self.name}")
        bootstrap.callbacks.append(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        return not self.triggered

    def interrupt(self, cause: typing.Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is a no-op error; interrupting a
        process blocked on an event detaches it from that event first.
        """
        if self.triggered:
            raise RuntimeError(f"cannot interrupt finished process {self.name!r}")
        interrupt_event = Event(self.sim, name=f"interrupt:{self.name}")
        interrupt_event.callbacks.append(
            lambda _event: self._throw_in(Interrupt(cause))
        )
        interrupt_event.succeed()

    # -- internals --------------------------------------------------------

    def _detach(self) -> None:
        if self._waiting_on is not None and self._resume in self._waiting_on.callbacks:
            self._waiting_on.callbacks.remove(self._resume)
        self._waiting_on = None

    def _throw_in(self, exc: BaseException) -> None:
        if self.triggered:
            return
        waited = self._waiting_on
        self._detach()
        # Withdrawable waits (resource requests) must not leak: a process
        # interrupted while queued would otherwise hold its place in line
        # forever; one granted in the same tick would hold the slot itself.
        if waited is not None and hasattr(waited, "withdraw"):
            if not waited.triggered:
                waited.withdraw()
            else:
                resource = getattr(waited, "resource", None)
                if resource is not None:
                    resource.release(waited)
        self._step(lambda: self._generator.throw(exc))

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        if event.cancelled or event._state == CANCELLED:
            self._step(lambda: self._generator.throw(EventCancelled(event.name)))
        elif event.ok:
            self._step(lambda: self._generator.send(event._value))
        else:
            self._step(lambda: self._generator.throw(event.exception))

    def _step(self, advance: typing.Callable[[], Event]) -> None:
        try:
            target = advance()
        except StopIteration as stop:
            self.succeed(value=stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - process bodies may raise anything
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self.fail(
                TypeError(
                    f"process {self.name!r} yielded {target!r}; processes must yield Events"
                )
            )
            return
        if target.sim is not self.sim:
            self.fail(RuntimeError("yielded event belongs to a different simulator"))
            return
        self._waiting_on = target
        if target.processed:
            # Already fully fired: resume on the next tick of the loop.
            relay = Event(self.sim, name=f"relay:{self.name}")
            relay.callbacks.append(self._resume)
            if target.ok:
                relay.succeed(value=target._value)
            else:
                relay.fail(target.exception)  # type: ignore[arg-type]
        else:
            target.callbacks.append(self._resume)


class Simulator:
    """Deterministic discrete-event simulator.

    Parameters
    ----------
    start:
        Initial simulated time (seconds by convention throughout this repo).
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._heap: list[tuple[float, int, int, Event]] = []
        self._sequence = 0
        self._spawned = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- event construction ------------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create a fresh pending event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: typing.Any = None) -> Timeout:
        """An event that fires ``delay`` simulated seconds from now."""
        return Timeout(self, delay, value=value)

    def spawn(self, generator: ProcessGenerator, name: str = "") -> Process:
        """Start a process at the current simulated time."""
        self._spawned += 1
        return Process(self, generator, name=name or f"proc-{self._spawned}")

    # Alias familiar to SimPy users.
    process = spawn

    # -- scheduling ---------------------------------------------------------

    def _enqueue(self, event: Event, delay: float = 0.0, priority: int = NORMAL) -> None:
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        self._sequence += 1
        heapq.heappush(self._heap, (self._now + delay, priority, self._sequence, event))

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        while self._heap and self._heap[0][3]._state == CANCELLED:
            heapq.heappop(self._heap)
        if not self._heap:
            return float("inf")
        return self._heap[0][0]

    def step(self) -> None:
        """Process exactly one event."""
        while True:
            if not self._heap:
                raise RuntimeError("step() on an empty schedule")
            when, _priority, _seq, event = heapq.heappop(self._heap)
            if event._state == CANCELLED:
                continue
            break
        if when < self._now:
            raise RuntimeError("event scheduled in the past; kernel invariant broken")
        self._now = when
        event._run_callbacks()

    def run(self, until: float | Event | None = None) -> typing.Any:
        """Run the event loop.

        ``until`` may be:

        - ``None`` — run until no events remain;
        - a number — run until simulated time reaches it;
        - an :class:`Event` — run until that event fires, returning its value
          (or raising its failure).
        """
        if until is None:
            while self._heap:
                if self.peek() == float("inf"):
                    break
                self.step()
            return None
        if isinstance(until, Event):
            target = until
            while not target.processed:
                if self.peek() == float("inf"):
                    raise RuntimeError(
                        f"simulation ran dry before {target!r} fired (deadlock?)"
                    )
                self.step()
            return target.value
        horizon = float(until)
        if horizon < self._now:
            raise ValueError(f"until={horizon} is in the past (now={self._now})")
        while self.peek() <= horizon:
            self.step()
        self._now = horizon
        return None
