"""Metrics primitives: counters, time-weighted gauges, latency recorders.

Every model component publishes into a :class:`MetricsRegistry`; the
analysis pipeline (``repro.analysis``) reads registries after a run.
"""

from __future__ import annotations

import bisect
import math
import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class Counter:
    """A monotonically increasing count (events, bytes, errors)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        if not math.isfinite(amount):
            raise ValueError(f"counter {self.name!r} increment must be finite, got {amount!r}")
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount!r})")
        self.value += amount


class Gauge:
    """A piecewise-constant level with time-weighted statistics.

    Tracks queue depths and utilization. ``set``/``add`` record the level at
    the current simulated time; :meth:`time_average` integrates it.
    """

    __slots__ = ("sim", "name", "value", "maximum", "_area", "_stamp", "_samples")

    def __init__(self, sim: "Simulator", name: str) -> None:
        self.sim = sim
        self.name = name
        self.value = 0.0
        self.maximum = 0.0
        self._area = 0.0
        self._stamp = sim.now
        self._samples: list[tuple[float, float]] = [(sim.now, 0.0)]

    def _settle(self) -> None:
        now = self.sim.now
        self._area += self.value * (now - self._stamp)
        self._stamp = now

    def set(self, value: float) -> None:
        if not math.isfinite(value):
            raise ValueError(f"gauge {self.name!r} level must be finite, got {value!r}")
        self._settle()
        self.value = value
        self.maximum = max(self.maximum, value)
        self._samples.append((self.sim.now, value))

    def add(self, delta: float) -> None:
        if not math.isfinite(delta):
            raise ValueError(f"gauge {self.name!r} delta must be finite, got {delta!r}")
        self.set(self.value + delta)

    def time_average(self, since: float = 0.0) -> float:
        """Time-weighted mean level over [since, now]."""
        self._settle()
        span = self._stamp - since
        if span <= 0:
            return self.value
        # Recompute the area restricted to [since, now] from samples.
        area = 0.0
        prev_time, prev_value = self._samples[0]
        for time, value in self._samples[1:]:
            lo = max(prev_time, since)
            hi = min(time, self._stamp)
            if hi > lo:
                area += prev_value * (hi - lo)
            prev_time, prev_value = time, value
        if self._stamp > max(prev_time, since):
            area += prev_value * (self._stamp - max(prev_time, since))
        return area / span

    def series(self) -> list[tuple[float, float]]:
        """The raw (time, level) step series."""
        return list(self._samples)


class LatencyRecorder:
    """A bag of duration samples with percentile queries."""

    __slots__ = ("name", "_sorted", "_sum")

    def __init__(self, name: str) -> None:
        self.name = name
        self._sorted: list[float] = []
        self._sum = 0.0

    def record(self, duration: float) -> None:
        # NaN compares false against everything, so a plain `< 0` check
        # would let it through — and one NaN silently corrupts the sorted
        # sample invariant every later percentile depends on.
        if not math.isfinite(duration):
            raise ValueError(f"duration on {self.name!r} must be finite, got {duration!r}")
        if duration < 0:
            raise ValueError(f"negative duration on {self.name!r}: {duration!r}")
        bisect.insort(self._sorted, duration)
        self._sum += duration

    @property
    def count(self) -> int:
        return len(self._sorted)

    @property
    def mean(self) -> float:
        return self._sum / len(self._sorted) if self._sorted else 0.0

    def percentile(self, fraction: float) -> float:
        """Linear-interpolated percentile; ``fraction`` in [0, 1]."""
        if not self._sorted:
            return 0.0
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction {fraction} outside [0, 1]")
        position = fraction * (len(self._sorted) - 1)
        lower = math.floor(position)
        upper = math.ceil(position)
        low_value = self._sorted[lower]
        high_value = self._sorted[upper]
        if lower == upper or low_value == high_value:
            return low_value
        weight = position - lower
        # Clamp: interpolation can overshoot by an ulp.
        return min(high_value, max(low_value, low_value * (1 - weight) + high_value * weight))

    def cdf(self, points: int = 50) -> list[tuple[float, float]]:
        """(value, cumulative fraction) pairs suitable for plotting."""
        if not self._sorted:
            return []
        n = len(self._sorted)
        step = max(1, n // points)
        out = [
            (self._sorted[index], (index + 1) / n)
            for index in range(0, n, step)
        ]
        if out[-1][1] < 1.0:
            out.append((self._sorted[-1], 1.0))
        return out

    def samples(self) -> list[float]:
        return list(self._sorted)


class Histogram:
    """Fixed-bin histogram for bounded quantities (e.g. chain depth)."""

    __slots__ = ("name", "edges", "counts", "underflow", "overflow")

    def __init__(self, name: str, edges: typing.Sequence[float]) -> None:
        if list(edges) != sorted(edges) or len(edges) < 2:
            raise ValueError("edges must be a sorted sequence of >= 2 values")
        self.name = name
        self.edges = list(edges)
        self.counts = [0] * (len(edges) - 1)
        self.underflow = 0
        self.overflow = 0

    def record(self, value: float) -> None:
        if value < self.edges[0]:
            self.underflow += 1
            return
        if value >= self.edges[-1]:
            self.overflow += 1
            return
        index = bisect.bisect_right(self.edges, value) - 1
        self.counts[index] += 1

    @property
    def total(self) -> int:
        return sum(self.counts) + self.underflow + self.overflow


#: Default growth factor for :class:`LogHistogram` buckets — four buckets
#: per octave, so any quantile estimate is within ~9% relative error.
LOG_HISTOGRAM_BASE = 2.0 ** 0.25


class LogHistogram:
    """Fixed-log-bucket histogram: a mergeable latency sketch.

    Bucket ``i`` covers ``[base**i, base**(i+1))``; recording keeps only a
    sparse ``{bucket index: count}`` map plus exact count/sum/min/max, so
    memory is bounded by the dynamic range (a few dozen buckets for
    second-scale latencies) rather than the sample count. Two histograms
    with the same base merge exactly (bucket-wise addition), which is what
    lets scrape-window rollups collapse into coarser windows without
    revisiting raw samples.

    Buckets may optionally carry an **exemplar** — the trace id (plus the
    exact value) of one recent observation that landed in the bucket.
    Exemplars ride along through :meth:`merge` (the incoming histogram's
    exemplar wins, being newer), so a rolled-up tail bucket can still name
    a concrete trace to open. Allocation is lazy: histograms that never
    see an exemplar pay one None slot.
    """

    __slots__ = (
        "name", "base", "zeros", "_buckets", "_count", "_sum", "_min", "_max",
        "exemplars",
    )

    def __init__(self, name: str = "", base: float = LOG_HISTOGRAM_BASE) -> None:
        if not base > 1.0:
            raise ValueError(f"base must be > 1, got {base!r}")
        self.name = name
        self.base = base
        self.zeros = 0
        self._buckets: dict[int, int] = {}
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        # bucket index -> (trace_id, observed value); None until first use.
        self.exemplars: dict[int, tuple[int, float]] | None = None

    def _index(self, value: float) -> int:
        index = math.floor(math.log(value) / math.log(self.base))
        # Repair float drift so base**index <= value < base**(index+1).
        if self.base ** index > value:
            index -= 1
        elif self.base ** (index + 1) <= value:
            index += 1
        return index

    def record(
        self, value: float, count: int = 1, exemplar: int | None = None
    ) -> None:
        if not math.isfinite(value):
            raise ValueError(f"histogram {self.name!r} value must be finite, got {value!r}")
        if value < 0:
            raise ValueError(f"histogram {self.name!r} value must be >= 0, got {value!r}")
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count!r}")
        if value == 0.0:
            self.zeros += count
        else:
            index = self._index(value)
            self._buckets[index] = self._buckets.get(index, 0) + count
            if exemplar is not None:
                if self.exemplars is None:
                    self.exemplars = {}
                self.exemplars[index] = (exemplar, value)
        self._count += count
        self._sum += value * count
        self._min = min(self._min, value)
        self._max = max(self._max, value)

    def merge(self, other: "LogHistogram") -> "LogHistogram":
        """Fold ``other`` into this histogram (in place); returns self."""
        if other.base != self.base:
            raise ValueError(
                f"cannot merge histograms with bases {self.base!r} and {other.base!r}"
            )
        self.zeros += other.zeros
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count
        if other.exemplars:
            if self.exemplars is None:
                self.exemplars = {}
            # The incoming histogram is the newer window: its exemplars win.
            self.exemplars.update(other.exemplars)
        self._count += other._count
        self._sum += other._sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        return self

    def copy(self) -> "LogHistogram":
        out = LogHistogram(self.name, base=self.base)
        out.merge(self)
        return out

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    def bucket_bounds(self, index: int) -> tuple[float, float]:
        """The [low, high) value range of bucket ``index``."""
        return (self.base ** index, self.base ** (index + 1))

    def quantile_bounds(self, fraction: float) -> tuple[float, float]:
        """Bounds containing the true ``fraction`` sample quantile.

        The exact min/max tighten the edge buckets, so the interval never
        extends past observed extremes.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction {fraction} outside [0, 1]")
        if self._count == 0:
            return (0.0, 0.0)
        # Rank of the quantile sample under linear ordering (1-based).
        rank = max(1, math.ceil(fraction * self._count))
        if rank <= self.zeros:
            return (0.0, 0.0)
        seen = self.zeros
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                low, high = self.bucket_bounds(index)
                return (max(low, self._min), min(high, self._max))
        return (self._max, self._max)  # pragma: no cover - rank <= count always hits

    def quantile(self, fraction: float) -> float:
        """Point estimate: the upper bound of the quantile's bucket."""
        return self.quantile_bounds(fraction)[1]

    def count_at_or_above(self, threshold: float) -> int:
        """Samples with value >= ``threshold`` (bucket-resolution upper bound).

        Any bucket whose range straddles the threshold is counted entirely,
        so the estimate errs toward "bad" — the conservative direction for
        SLO accounting.
        """
        if threshold <= 0:
            return self._count
        if self._count == 0 or threshold > self._max:
            return 0
        cut = self._index(threshold)
        return sum(count for index, count in self._buckets.items() if index >= cut)

    def exemplar_entries(self) -> list[tuple[float, int, float]]:
        """Sorted (bucket upper bound, trace id, observed value) triples."""
        if not self.exemplars:
            return []
        return [
            (self.base ** (index + 1), trace_id, value)
            for index, (trace_id, value) in sorted(self.exemplars.items())
        ]

    def buckets(self) -> list[tuple[float, int]]:
        """Sorted (bucket upper bound, count) pairs, zeros bucket first."""
        out: list[tuple[float, int]] = []
        if self.zeros:
            out.append((0.0, self.zeros))
        out.extend(
            (self.base ** (index + 1), self._buckets[index])
            for index in sorted(self._buckets)
        )
        return out


class TimeSeries:
    """Values binned into fixed-width time buckets (for rate plots)."""

    __slots__ = ("name", "bin_width", "_bins")

    def __init__(self, name: str, bin_width: float) -> None:
        if bin_width <= 0:
            raise ValueError("bin_width must be positive")
        self.name = name
        self.bin_width = bin_width
        self._bins: dict[int, float] = {}

    def record(self, time: float, amount: float = 1.0) -> None:
        if not math.isfinite(time):
            raise ValueError(f"timeseries {self.name!r} time must be finite, got {time!r}")
        if not math.isfinite(amount):
            raise ValueError(
                f"timeseries {self.name!r} amount must be finite, got {amount!r}"
            )
        index = int(time // self.bin_width)
        self._bins[index] = self._bins.get(index, 0.0) + amount

    def bins(self) -> list[tuple[float, float]]:
        """Sorted (bin start time, total) pairs, gaps filled with zero."""
        if not self._bins:
            return []
        lo = min(self._bins)
        hi = max(self._bins)
        return [
            (index * self.bin_width, self._bins.get(index, 0.0))
            for index in range(lo, hi + 1)
        ]


class MetricsRegistry:
    """A namespace of metrics owned by one model component."""

    __slots__ = ("sim", "prefix", "_metrics")

    def __init__(self, sim: "Simulator", prefix: str = "") -> None:
        self.sim = sim
        self.prefix = prefix
        self._metrics: dict[str, typing.Any] = {}

    def _key(self, name: str) -> str:
        return f"{self.prefix}.{name}" if self.prefix else name

    def counter(self, name: str) -> Counter:
        return self._get(name, lambda key: Counter(key))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, lambda key: Gauge(self.sim, key))

    def latency(self, name: str) -> LatencyRecorder:
        return self._get(name, lambda key: LatencyRecorder(key))

    def histogram(self, name: str, edges: typing.Sequence[float]) -> Histogram:
        return self._get(name, lambda key: Histogram(key, edges))

    def log_histogram(self, name: str, base: float = LOG_HISTOGRAM_BASE) -> LogHistogram:
        return self._get(name, lambda key: LogHistogram(key, base=base))

    def timeseries(self, name: str, bin_width: float) -> TimeSeries:
        return self._get(name, lambda key: TimeSeries(key, bin_width))

    def _get(self, name: str, factory: typing.Callable[[str], typing.Any]) -> typing.Any:
        key = self._key(name)
        if key not in self._metrics:
            self._metrics[key] = factory(key)
        metric = self._metrics[key]
        return metric

    def all(self) -> dict[str, typing.Any]:
        return dict(self._metrics)

    def __contains__(self, name: str) -> bool:
        return self._key(name) in self._metrics
