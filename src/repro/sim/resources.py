"""Shared resources: capacity-limited servers and item stores.

These are the queueing primitives the control-plane model is built from:
per-host operation slots, the management-server thread pool, database
connections, and datastore copy slots are all :class:`Resource` (or
:class:`PriorityResource`) instances.
"""

from __future__ import annotations

import heapq
import typing

from repro.sim.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class Request(Event):
    """A pending claim on a :class:`Resource`.

    Fires (succeeds) once capacity is granted. May be ``withdraw()``-n while
    still queued — used to implement request timeouts.
    """

    __slots__ = ("resource", "priority", "enqueued_at", "granted_at")

    def __init__(self, resource: "Resource", priority: float = 0.0) -> None:
        super().__init__(resource.sim)
        self.resource = resource
        self.priority = priority
        self.enqueued_at = resource.sim.now
        self.granted_at: float | None = None

    def _default_name(self) -> str:
        return f"request:{self.resource.name}"

    def withdraw(self) -> None:
        """Remove this request from the resource queue before it is granted."""
        self.resource._withdraw(self)

    @property
    def wait_time(self) -> float:
        """Queueing delay; only meaningful once granted."""
        if self.granted_at is None:
            raise RuntimeError("request not yet granted")
        return self.granted_at - self.enqueued_at


class Resource:
    """A FCFS server with fixed integer capacity.

    Usage from a process::

        request = resource.request()
        yield request
        try:
            ...  # hold the slot
        finally:
            resource.release(request)
    """

    def __init__(self, sim: "Simulator", capacity: int, name: str = "resource") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._users: set[Request] = set()
        self._queue: list[Request] = []
        self._waits: list[float] = []

    # -- introspection -----------------------------------------------------

    @property
    def in_use(self) -> int:
        return len(self._users)

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    @property
    def wait_times(self) -> list[float]:
        """Queueing delays of all granted requests, in grant order."""
        return list(self._waits)

    # -- protocol ----------------------------------------------------------

    def request(self, priority: float = 0.0) -> Request:
        request = Request(self, priority=priority)
        self._queue.append(request)
        self._dispatch()
        return request

    def release(self, request: Request) -> None:
        if request not in self._users:
            raise RuntimeError(f"release of non-held request on {self.name!r}")
        self._users.discard(request)
        self._dispatch()

    def resize(self, capacity: int) -> None:
        """Change capacity at runtime (used by reconfiguration ablations)."""
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._dispatch()

    # -- internals -----------------------------------------------------------

    def _next_index(self) -> int:
        return 0

    def _dispatch(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            request = self._queue.pop(self._next_index())
            self._users.add(request)
            request.granted_at = self.sim.now
            self._waits.append(request.granted_at - request.enqueued_at)
            request.succeed(value=request)

    def _withdraw(self, request: Request) -> None:
        if request in self._queue:
            self._queue.remove(request)
            request.cancel()
        elif request in self._users:
            raise RuntimeError("cannot withdraw a granted request; release it")


class PriorityResource(Resource):
    """A resource that grants the lowest ``priority`` value first.

    Ties break FCFS. Used for the management server's task queue where
    interactive operations preempt (in ordering, not service) bulk
    provisioning.
    """

    def _next_index(self) -> int:
        best = 0
        for index, request in enumerate(self._queue):
            if request.priority < self._queue[best].priority:
                best = index
        return best


class Store:
    """An unbounded FIFO buffer of items with blocking ``get``.

    Producers call :meth:`put` (never blocks); consumers yield :meth:`get`.
    Used for work queues (e.g. the host-sync batch queue).
    """

    def __init__(self, sim: "Simulator", name: str = "store") -> None:
        self.sim = sim
        self.name = name
        self._items: list[typing.Any] = []
        self._getters: list[Event] = []

    @property
    def size(self) -> int:
        return len(self._items)

    def put(self, item: typing.Any) -> None:
        self._items.append(item)
        self._drain()

    def get(self) -> Event:
        event = Event(self.sim, name=f"get:{self.name}")
        self._getters.append(event)
        self._drain()
        return event

    def _drain(self) -> None:
        while self._items and self._getters:
            getter = self._getters.pop(0)
            if getter.cancelled:
                continue
            getter.succeed(value=self._items.pop(0))


class TokenBucket:
    """A rate limiter: ``take(n)`` blocks until n tokens have accrued.

    Tokens accrue continuously at ``rate`` per second up to ``burst``.
    Used to model API admission throttling at the cloud director.
    """

    def __init__(
        self,
        sim: "Simulator",
        rate: float,
        burst: float,
        name: str = "bucket",
    ) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.sim = sim
        self.rate = rate
        self.burst = burst
        self.name = name
        self._tokens = burst
        self._stamp = sim.now
        self._turn: Event | None = None  # serializes takers FCFS

    def _accrue(self) -> None:
        elapsed = self.sim.now - self._stamp
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._stamp = self.sim.now

    def take(self, amount: float = 1.0) -> typing.Generator[Event, typing.Any, None]:
        """Process-style helper: ``yield from bucket.take(n)``."""
        if amount > self.burst:
            raise ValueError(f"take({amount}) exceeds burst {self.burst}")
        while True:
            self._accrue()
            # Nanotoken tolerance: accrual arithmetic can leave the balance
            # a few ulp short of the target, and waiting that deficit out
            # schedules a delay smaller than the clock's resolution —
            # time would stop advancing and the loop would spin forever.
            if self._tokens + 1e-9 >= amount:
                self._tokens = max(0.0, self._tokens - amount)
                return
            deficit = amount - self._tokens
            yield self.sim.timeout(deficit / self.rate)
