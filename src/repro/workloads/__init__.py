"""Workload generation: arrival processes, operation mixes, and drivers.

The two production clouds the paper measured are represented as
calibrated synthetic profiles (CLOUD_A, CLOUD_B) plus a CLASSIC_DC
baseline — see :mod:`repro.workloads.profiles` for the parameter
rationale and DESIGN.md for the substitution argument.
"""

from repro.workloads.arrivals import (
    ArrivalProcess,
    DiurnalPoisson,
    MMPPBurst,
    Poisson,
)
from repro.workloads.lifetimes import LifetimeModel
from repro.workloads.mixes import (
    CLASSIC_DC_MIX,
    CLOUD_A_MIX,
    CLOUD_B_MIX,
    OperationMix,
)
from repro.workloads.profiles import CLASSIC_DC, CLOUD_A, CLOUD_B, CloudProfile
from repro.workloads.driver import WorkloadDriver
from repro.workloads.replay import TraceReplayer, replay_against
from repro.workloads.sampling import (
    BatchedArrivals,
    BatchedExponentials,
    BatchedLifetimes,
    BatchedUniforms,
)

__all__ = [
    "ArrivalProcess",
    "BatchedArrivals",
    "BatchedExponentials",
    "BatchedLifetimes",
    "BatchedUniforms",
    "CLASSIC_DC",
    "CLASSIC_DC_MIX",
    "CLOUD_A",
    "CLOUD_A_MIX",
    "CLOUD_B",
    "CLOUD_B_MIX",
    "CloudProfile",
    "DiurnalPoisson",
    "LifetimeModel",
    "MMPPBurst",
    "OperationMix",
    "Poisson",
    "TraceReplayer",
    "WorkloadDriver",
    "replay_against",
]
