"""VM lifetime models: how long a deployed VM lives before deletion.

Cloud dev/test VMs live hours-to-days with a heavy tail; classic
datacenter VMs live months. The contrast drives R-F10 and, through the
driver, the destroy rate in the operation mixes.
"""

from __future__ import annotations

import dataclasses
import random

from repro.sim.random import lognormal_from_median, pareto


@dataclasses.dataclass(frozen=True)
class LifetimeModel:
    """A mixture: lognormal body plus a Pareto tail.

    ``tail_fraction`` of VMs are long-lived (Pareto, heavy tail from
    ``tail_scale_s``); the rest draw lognormal around ``median_s``.
    """

    median_s: float
    sigma: float = 1.0
    tail_fraction: float = 0.10
    tail_scale_s: float = 7 * 86_400.0
    tail_shape: float = 1.2

    def __post_init__(self) -> None:
        if self.median_s <= 0:
            raise ValueError("median_s must be positive")
        if not 0.0 <= self.tail_fraction <= 1.0:
            raise ValueError("tail_fraction must be in [0, 1]")

    def sample(self, rng: random.Random) -> float:
        if rng.random() < self.tail_fraction:
            return pareto(rng, self.tail_shape, self.tail_scale_s)
        return lognormal_from_median(rng, self.median_s, self.sigma)


# Dev/test cloud: median 6 hours, long tail of forgotten VMs.
CLOUD_A_LIFETIME = LifetimeModel(median_s=6 * 3600.0, sigma=1.2, tail_fraction=0.08)

# Production cloud: median 2 days.
CLOUD_B_LIFETIME = LifetimeModel(median_s=2 * 86_400.0, sigma=1.0, tail_fraction=0.15)

# Classic datacenter: median 60 days, most VMs effectively permanent.
CLASSIC_DC_LIFETIME = LifetimeModel(
    median_s=60 * 86_400.0,
    sigma=0.8,
    tail_fraction=0.30,
    tail_scale_s=180 * 86_400.0,
)
