"""VM lifetime models: how long a deployed VM lives before deletion.

Cloud dev/test VMs live hours-to-days with a heavy tail; classic
datacenter VMs live months. The contrast drives R-F10 and, through the
driver, the destroy rate in the operation mixes.
"""

from __future__ import annotations

import dataclasses
import math
import random

from repro.sim.random import lognormal_from_median, pareto


@dataclasses.dataclass(frozen=True)
class LifetimeModel:
    """A mixture: lognormal body plus a Pareto tail.

    ``tail_fraction`` of VMs are long-lived (Pareto, heavy tail from
    ``tail_scale_s``); the rest draw lognormal around ``median_s``.
    """

    median_s: float
    sigma: float = 1.0
    tail_fraction: float = 0.10
    tail_scale_s: float = 7 * 86_400.0
    tail_shape: float = 1.2

    def __post_init__(self) -> None:
        if self.median_s <= 0:
            raise ValueError("median_s must be positive")
        if not 0.0 <= self.tail_fraction <= 1.0:
            raise ValueError("tail_fraction must be in [0, 1]")

    def sample(self, rng: random.Random) -> float:
        if rng.random() < self.tail_fraction:
            return pareto(rng, self.tail_shape, self.tail_scale_s)
        return lognormal_from_median(rng, self.median_s, self.sigma)

    def sample_batch(self, rng: random.Random, count: int) -> list[float]:
        """``count`` draws, identical to ``count`` calls of :meth:`sample`.

        The mixture formulas are inlined over locally-bound callables so a
        hyperscale fleet seeding pays one function call per *batch* rather
        than three per VM; the branch structure and draw order match
        :meth:`sample` exactly, so values are bit-identical. That includes
        the Box-Muller body of ``random.Random.gauss`` (mu=0), inlined with
        the same ``gauss_next`` spare-value cache — read on entry, written
        back on exit — so interleaving batched and per-event draws on one
        rng still yields the same stream.
        """
        draw = rng.random
        exp = math.exp
        log = math.log
        sqrt = math.sqrt
        cos = math.cos
        sin = math.sin
        twopi = 2.0 * math.pi
        tail_fraction = self.tail_fraction
        tail_exponent = -1.0 / self.tail_shape
        tail_scale = self.tail_scale_s
        median = self.median_s
        sigma = self.sigma
        spare = rng.gauss_next
        out: list[float] = []
        append = out.append
        for _ in range(count):
            if draw() < tail_fraction:
                append(tail_scale * (draw() ** tail_exponent))
            else:
                z = spare
                if z is None:
                    x2pi = draw() * twopi
                    g2rad = sqrt(-2.0 * log(1.0 - draw()))
                    z = cos(x2pi) * g2rad
                    spare = sin(x2pi) * g2rad
                else:
                    spare = None
                append(median * exp(0.0 + z * sigma))
        rng.gauss_next = spare
        return out


# Dev/test cloud: median 6 hours, long tail of forgotten VMs.
CLOUD_A_LIFETIME = LifetimeModel(median_s=6 * 3600.0, sigma=1.2, tail_fraction=0.08)

# Production cloud: median 2 days.
CLOUD_B_LIFETIME = LifetimeModel(median_s=2 * 86_400.0, sigma=1.0, tail_fraction=0.15)

# Classic datacenter: median 60 days, most VMs effectively permanent.
CLASSIC_DC_LIFETIME = LifetimeModel(
    median_s=60 * 86_400.0,
    sigma=0.8,
    tail_fraction=0.30,
    tail_scale_s=180 * 86_400.0,
)
