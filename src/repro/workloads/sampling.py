"""Batched variate sampling for the workload hot path.

Per-event draws (``rng.expovariate``, ``LifetimeModel.sample``) are pure
Python above the C core of :class:`random.Random`; each arrival pays method
dispatch and attribute lookups. At hyperscale fleets those draws dominate
setup time, so this module prefetches draws in chunks with the transforms
inlined over locally-bound callables.

Value identity is the contract: every batched sampler consumes the
underlying stream in exactly the same order, through exactly the same
arithmetic, as its per-event counterpart — ``expovariate(lambd)`` is
``-log(1 - random()) / lambd``, the Pareto tail is
``scale * random() ** (-1/shape)``, and so on — so schedules are
byte-identical whether or not batching is enabled (proven by
``tests/workloads/test_sampling.py``). That is also why numpy is *not*
used here: its generators are not draw-compatible with ``random.Random``.

Batches are consumed lazily from dedicated named streams ("arrivals",
"lifetimes"), so prefetching never perturbs any other stream and
shard/seed derivation via ``splitmix64`` stays stable.
"""

from __future__ import annotations

import random
import typing
from math import log as _log

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.workloads.arrivals import DiurnalPoisson, MMPPBurst, Poisson
    from repro.workloads.lifetimes import LifetimeModel

_BATCH = 512


class BatchedUniforms:
    """Prefetched ``rng.random()`` draws, served strictly in draw order.

    ``next`` is the bound ``__next__`` of an infinite generator that yields
    each prefetched chunk via ``yield from`` — the cheapest per-draw serve
    path available in pure Python (a C generator resume, no index
    bookkeeping per call).
    """

    __slots__ = ("next",)

    def __init__(self, rng: random.Random, batch: int = _BATCH) -> None:
        if batch < 1:
            raise ValueError("batch must be at least 1")

        def serve() -> typing.Iterator[float]:
            r = rng.random
            span = range(batch)
            while True:
                yield from [r() for _ in span]

        self.next: typing.Callable[[], float] = serve().__next__


class BatchedExponentials:
    """Prefetched exponential variates, identical to ``rng.expovariate(lambd)``."""

    __slots__ = ("next",)

    def __init__(self, rng: random.Random, lambd: float, batch: int = _BATCH) -> None:
        if lambd <= 0:
            raise ValueError("lambd must be positive")
        if batch < 1:
            raise ValueError("batch must be at least 1")

        def serve() -> typing.Iterator[float]:
            r = rng.random
            span = range(batch)
            while True:
                # Same arithmetic as random.Random.expovariate — a division
                # by lambd, not a multiply by its reciprocal, so values
                # match to the last bit.
                yield from [-_log(1.0 - r()) / lambd for _ in span]

        self.next: typing.Callable[[], float] = serve().__next__


class BatchedLifetimes:
    """Prefetched :meth:`LifetimeModel.sample` draws in model draw order."""

    __slots__ = ("next",)

    def __init__(self, model: "LifetimeModel", rng: random.Random, batch: int = _BATCH) -> None:
        if batch < 1:
            raise ValueError("batch must be at least 1")

        def serve() -> typing.Iterator[float]:
            sample_batch = model.sample_batch
            while True:
                yield from sample_batch(rng, batch)

        self.next: typing.Callable[[], float] = serve().__next__


class BatchedArrivals:
    """Base for batched arrival adapters: ``next_arrival(now)`` without an rng.

    Created by :meth:`repro.workloads.arrivals.ArrivalProcess.batched`; owns
    any lazily-advanced process state so the wrapped process object stays
    untouched.
    """

    __slots__ = ()

    def next_arrival(self, now: float) -> float:
        raise NotImplementedError


class BatchedPoisson(BatchedArrivals):
    __slots__ = ("_gaps",)

    def __init__(self, process: "Poisson", rng: random.Random, batch: int = _BATCH) -> None:
        self._gaps = BatchedExponentials(rng, process.rate, batch)

    def next_arrival(self, now: float) -> float:
        return now + self._gaps.next()


class BatchedDiurnal(BatchedArrivals):
    """Lewis-Shedler thinning over prefetched uniforms.

    Draw order matches ``DiurnalPoisson.next_arrival`` exactly: one uniform
    for the candidate gap, one for the accept test, repeated until accepted.
    """

    __slots__ = ("_process", "_uniforms", "_ceiling")

    def __init__(self, process: "DiurnalPoisson", rng: random.Random, batch: int = _BATCH) -> None:
        self._process = process
        self._uniforms = BatchedUniforms(rng, batch)
        self._ceiling = process.base_rate * (1.0 + process.amplitude)

    def next_arrival(self, now: float) -> float:
        draw = self._uniforms.next
        ceiling = self._ceiling
        rate_at = self._process.rate_at
        time = now
        while True:
            time += -_log(1.0 - draw()) / ceiling
            if draw() <= rate_at(time) / ceiling:
                return time


class BatchedMMPP(BatchedArrivals):
    """Markov-modulated Poisson over prefetched uniforms.

    The calm/burst state machine moves from the wrapped process onto the
    adapter (copied at wrap time), advanced with exactly the dwell and
    candidate draws ``MMPPBurst.next_arrival`` would have made.
    """

    __slots__ = ("_process", "_uniforms", "_in_burst", "_state_until")

    def __init__(self, process: "MMPPBurst", rng: random.Random, batch: int = _BATCH) -> None:
        self._process = process
        self._uniforms = BatchedUniforms(rng, batch)
        self._in_burst = process._in_burst
        self._state_until = process._state_until

    def next_arrival(self, now: float) -> float:
        draw = self._uniforms.next
        process = self._process
        in_burst = self._in_burst
        state_until = self._state_until
        time = now
        while True:
            while time >= state_until:
                in_burst = not in_burst
                dwell = process.mean_burst_s if in_burst else process.mean_calm_s
                # expovariate(1.0 / dwell), bit for bit.
                state_until += -_log(1.0 - draw()) / (1.0 / dwell)
            rate = process.burst_rate if in_burst else process.calm_rate
            candidate = time + -_log(1.0 - draw()) / rate
            if candidate <= state_until:
                self._in_burst = in_burst
                self._state_until = state_until
                return candidate
            time = state_until


__all__ = [
    "BatchedArrivals",
    "BatchedDiurnal",
    "BatchedExponentials",
    "BatchedLifetimes",
    "BatchedMMPP",
    "BatchedPoisson",
    "BatchedUniforms",
]
