"""Cloud profiles: the calibrated stand-ins for the paper's two setups.

The paper analyzed logs from two real self-service clouds it could not
publish. Each profile below fixes the infrastructure shape, tenancy,
arrival process, operation mix, lifetime model, and provisioning mode so
that the *same analysis pipeline* the paper ran over production logs runs
here over synthetic ones. Parameter rationale is inline; DESIGN.md
records the substitution argument.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.workloads.arrivals import ArrivalProcess, DiurnalPoisson, MMPPBurst, Poisson
from repro.workloads.lifetimes import (
    CLASSIC_DC_LIFETIME,
    CLOUD_A_LIFETIME,
    CLOUD_B_LIFETIME,
    LifetimeModel,
)
from repro.workloads.mixes import CLASSIC_DC_MIX, CLOUD_A_MIX, CLOUD_B_MIX, OperationMix

ArrivalFactory = typing.Callable[[], ArrivalProcess]


@dataclasses.dataclass(frozen=True)
class CloudProfile:
    """Everything needed to instantiate and drive one cloud setup."""

    name: str
    description: str

    # Infrastructure shape.
    hosts: int
    datastores: int
    datastore_capacity_gb: float
    orgs: int

    # Workload.
    mix: OperationMix
    lifetime: LifetimeModel
    arrival_factory: "ArrivalFactory"
    linked_clone_fraction: float   # fraction of deploys using linked clones
    vapp_size_mean: float          # mean VMs per deploy request

    # Initial population (pre-provisioned before the measured window).
    initial_vms_per_host: int = 4

    def __post_init__(self) -> None:
        if self.hosts < 1 or self.datastores < 1 or self.orgs < 1:
            raise ValueError("hosts, datastores, and orgs must be >= 1")
        if not 0.0 <= self.linked_clone_fraction <= 1.0:
            raise ValueError("linked_clone_fraction must be in [0, 1]")
        if self.vapp_size_mean < 1.0:
            raise ValueError("vapp_size_mean must be >= 1")

    def make_arrivals(self) -> ArrivalProcess:
        return self.arrival_factory()


def _cloud_a_arrivals() -> ArrivalProcess:
    # ~1 op every 12 s at the diurnal peak: a busy self-service portal.
    return DiurnalPoisson(base_rate=1 / 20.0, amplitude=0.7)


def _cloud_b_arrivals() -> ArrivalProcess:
    # Calm ~1/90 s with bursts to ~1/8 s (batch deployments).
    return MMPPBurst(
        calm_rate=1 / 90.0,
        burst_rate=1 / 8.0,
        mean_calm_s=3_600.0,
        mean_burst_s=600.0,
    )


def _classic_dc_arrivals() -> ArrivalProcess:
    # Human-paced administration: ~1 op every 5 minutes.
    return Poisson(rate=1 / 300.0)


CLOUD_A = CloudProfile(
    name="cloud_a",
    description=(
        "Large internal dev/test self-service cloud: heavy churn, strongly "
        "diurnal arrivals, short VM lifetimes, linked clones throughout."
    ),
    hosts=32,
    datastores=8,
    datastore_capacity_gb=40_000.0,
    orgs=12,
    mix=CLOUD_A_MIX,
    lifetime=CLOUD_A_LIFETIME,
    arrival_factory=_cloud_a_arrivals,
    linked_clone_fraction=0.95,
    vapp_size_mean=3.0,
    initial_vms_per_host=6,
)

CLOUD_B = CloudProfile(
    name="cloud_b",
    description=(
        "Smaller production self-service cloud: steadier arrivals with "
        "batch bursts, day-scale lifetimes, mostly linked clones."
    ),
    hosts=16,
    datastores=6,
    datastore_capacity_gb=30_000.0,
    orgs=6,
    mix=CLOUD_B_MIX,
    lifetime=CLOUD_B_LIFETIME,
    arrival_factory=_cloud_b_arrivals,
    linked_clone_fraction=0.80,
    vapp_size_mean=2.0,
    initial_vms_per_host=5,
)

CLASSIC_DC = CloudProfile(
    name="classic_dc",
    description=(
        "Classic virtualized datacenter baseline: long-lived VMs, "
        "human-paced operations, full clones on the rare provision."
    ),
    hosts=24,
    datastores=6,
    datastore_capacity_gb=30_000.0,
    orgs=1,
    mix=CLASSIC_DC_MIX,
    lifetime=CLASSIC_DC_LIFETIME,
    arrival_factory=_classic_dc_arrivals,
    linked_clone_fraction=0.05,
    vapp_size_mean=1.0,
    initial_vms_per_host=8,
)

ALL_PROFILES = (CLOUD_A, CLOUD_B, CLASSIC_DC)
