"""The workload driver: instantiates a profile and generates its log.

The driver plays the role of the production environment around the
management plane: tenants deploying and abandoning vApps, admins power
cycling and reconfiguring, DRS migrating, elastic capacity arriving. Its
output is the completed-task trace the characterization pipeline analyses
— the synthetic analogue of the logs the paper mined.

Destroys are generated two ways, as in real clouds: most VMs die when
their sampled *lifetime* expires; additionally the mix's DESTROY fraction
tears down a random running vApp early (cancelled experiments). Both are
guarded against double deletion.
"""

from __future__ import annotations

import typing

from repro.cloud.catalog import Catalog, CatalogItem
from repro.cloud.director import CloudDirector, DeployRequest
from repro.cloud.elasticity import SparePool
from repro.cloud.placement import PlacementEngine, PlacementError
from repro.cloud.tenancy import Organization
from repro.cloud.vapp import VApp, VAppState
from repro.controlplane.costs import ControlPlaneConfig, ControlPlaneCosts, DEFAULT_COSTS
from repro.controlplane.server import ManagementServer
from repro.datacenter.entities import Cluster, Datacenter, Datastore, Host, Network
from repro.datacenter.inventory import Inventory
from repro.datacenter.templates import DEFAULT_SPECS, TemplateLibrary
from repro.datacenter.vm import PowerState, VirtualDisk, VirtualMachine
from repro.operations.base import OperationType
from repro.operations.lifecycle import CreateSnapshot, DeleteSnapshot, ReconfigureVM
from repro.operations.provisioning import CloneVM
from repro.operations.migration import MigrateVM
from repro.operations.power import PowerOff, PowerOn
from repro.operations.reconfiguration import (
    AddDatastore,
    AddHost,
    NetworkReconfig,
    RescanDatastore,
)
from repro.sim.kernel import Simulator
from repro.sim.random import RandomStreams
from repro.storage.linked_clone import MAX_CHAIN_DEPTH, create_linked_backing
from repro.traces.records import TraceRecord
from repro.workloads.profiles import CloudProfile
from repro.workloads.sampling import BatchedLifetimes


class WorkloadDriver:
    """Builds a profile's infrastructure and drives its operation stream."""

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        profile: CloudProfile,
        costs: ControlPlaneCosts = DEFAULT_COSTS,
        config: ControlPlaneConfig | None = None,
    ) -> None:
        self.sim = sim
        self.streams = streams
        self.profile = profile
        self.server = ManagementServer(
            sim, streams.spawn("server"), costs=costs, config=config, name=f"vc:{profile.name}"
        )
        self._rng = streams.stream("driver")
        self._build_infrastructure()
        self.skipped: dict[str, int] = {}
        self._spares = SparePool(
            hosts=[
                Host(entity_id=f"host-spare-{index}", name=f"spare{index:02d}")
                for index in range(8)
            ],
            datastore_capacity_gb=profile.datastore_capacity_gb,
        )
        self._arrivals = profile.make_arrivals()
        # Batched samplers: each prefetches from its own dedicated named
        # stream in exact per-event draw order (see repro.workloads.sampling),
        # so the trace is byte-identical to per-event sampling.
        self._arrival_source = self._arrivals.batched(streams.stream("arrivals"))
        self._lifetimes = BatchedLifetimes(profile.lifetime, streams.stream("lifetimes"))
        self._stopped = False

    # -- construction ------------------------------------------------------------

    def _build_infrastructure(self) -> None:
        inventory: Inventory = self.server.inventory
        profile = self.profile
        self.datacenter = inventory.create(Datacenter, name=f"dc:{profile.name}")
        self.cluster = inventory.create(Cluster, name="cluster-1")
        self.datacenter.add_cluster(self.cluster)
        self.network = inventory.create(Network, name="tenant-net")
        self.datastores = [
            inventory.create(
                Datastore,
                name=f"lun{index:02d}",
                capacity_gb=profile.datastore_capacity_gb,
            )
            for index in range(profile.datastores)
        ]
        self.hosts = []
        for index in range(profile.hosts):
            host = inventory.create(Host, name=f"esx{index:02d}")
            self.cluster.add_host(host)
            for datastore in self.datastores:
                host.mount(datastore)
            host.attach_network(self.network)
            self.server.adopt_host(host)
            self.hosts.append(host)

        self.library = TemplateLibrary(inventory)
        self.catalog = Catalog("public")
        for spec_index, spec in enumerate(DEFAULT_SPECS):
            datastore = self.datastores[spec_index % len(self.datastores)]
            self.library.publish(spec, datastore)
            self.catalog.add(CatalogItem(f"{spec.name}-linked", spec.name, linked=True))
            self.catalog.add(CatalogItem(f"{spec.name}-full", spec.name, linked=False))

        self.orgs = [
            Organization(f"org{index:02d}", quota_vms=10_000, quota_storage_gb=1e9)
            for index in range(profile.orgs)
        ]
        self.director = CloudDirector(
            self.server,
            self.cluster,
            self.library,
            self.catalog,
            placement=PlacementEngine(policy="least_loaded"),
        )
        self._seed_initial_population()

    def _seed_initial_population(self) -> None:
        """Pre-provision the steady-state VM population (before t=0).

        These VMs are materialized directly (no simulated operations):
        they are the infrastructure's state when the measured window
        opens, mirroring how the paper's logs start mid-life.
        """
        template = self.library.get(DEFAULT_SPECS[1].name)  # medium-linux
        anchor = template.disks[0].backing
        rng = self.streams.stream("seed")
        for host in self.hosts:
            for index in range(self.profile.initial_vms_per_host):
                vm = self.server.inventory.create(
                    VirtualMachine,
                    name=f"seed-{host.name}-{index}",
                    vcpus=template.vcpus,
                    memory_gb=template.memory_gb,
                    created_at=0.0,
                )
                datastore = self.datastores[index % len(self.datastores)]
                backing = create_linked_backing(anchor, datastore)
                vm.attach_disk(
                    VirtualDisk(
                        label="disk-0",
                        backing=backing,
                        provisioned_gb=template.total_disk_gb,
                    )
                )
                vm.place_on(host)
                if rng.random() < 0.7:
                    vm.power_state = PowerState.ON

    # -- driving --------------------------------------------------------------------

    def run(self, duration: float) -> None:
        """Drive the workload for ``duration`` simulated seconds."""
        if duration <= 0:
            raise ValueError("duration must be positive")
        self._stopped = False
        horizon = self.sim.now + duration
        self.sim.spawn(self._arrival_loop(horizon), name="arrivals")
        self.sim.run(until=horizon)
        self._stopped = True
        # Drain in-flight operations so every task has a finish time.
        self.sim.run()

    def _arrival_loop(self, horizon: float) -> typing.Generator:
        arrivals = self._arrival_source
        while True:
            next_time = arrivals.next_arrival(self.sim.now)
            if next_time >= horizon:
                return
            yield self.sim.timeout(next_time - self.sim.now)
            op_type = self.profile.mix.sample(self.streams.stream("mix"))
            self._issue(op_type)

    # -- dispatch -----------------------------------------------------------------

    def _issue(self, op_type: OperationType) -> None:
        handler = getattr(self, f"_issue_{op_type.value}", None)
        if handler is None:
            self._skip(op_type.value)
            return
        handler()

    def _skip(self, reason: str) -> None:
        self.skipped[reason] = self.skipped.get(reason, 0) + 1

    def _spawn_guarded(self, generator: typing.Generator, name: str) -> None:
        """Run fire-and-forget; operation failures are part of the trace."""

        def guard():
            try:
                yield from generator
            except Exception:
                pass

        self.sim.spawn(guard(), name=name)

    def _submit_guarded(self, operation, name: str) -> None:
        process = self.server.submit(operation)

        def guard():
            try:
                yield process
            except Exception:
                pass

        self.sim.spawn(guard(), name=name)

    # -- targets ----------------------------------------------------------------------

    def _tenant_vms(self, predicate=None) -> list[VirtualMachine]:
        vms = [
            vm
            for vm in self.server.inventory.all(VirtualMachine)
            if not vm.is_template and vm.host is not None
        ]
        if predicate is not None:
            vms = [vm for vm in vms if predicate(vm)]
        return sorted(vms, key=lambda vm: vm.entity_id)

    def _pick(self, items: list) -> typing.Any:
        return items[self._rng.randrange(len(items))] if items else None

    # -- per-op issue handlers ---------------------------------------------------------

    def _issue_deploy(self) -> None:
        org = self._pick(self.orgs)
        spec = self._pick(list(DEFAULT_SPECS))
        linked = self._rng.random() < self.profile.linked_clone_fraction
        item = self.catalog.get(f"{spec.name}-{'linked' if linked else 'full'}")
        # vApp size: 1 + geometric, mean = profile.vapp_size_mean.
        size = 1
        extra_mean = self.profile.vapp_size_mean - 1.0
        while extra_mean > 0 and self._rng.random() < extra_mean / (1.0 + extra_mean):
            size += 1
            if size >= 16:
                break
        self._deploy_counter = getattr(self, "_deploy_counter", 0) + 1
        request = DeployRequest(
            org=org,
            item=item,
            vm_count=size,
            vapp_name=f"vapp-{self._deploy_counter}-{org.name}",
        )
        self._spawn_guarded(self._deploy_and_schedule_death(request), "deploy")

    def _deploy_and_schedule_death(self, request: DeployRequest) -> typing.Generator:
        vapp = yield from self.director.deploy(request)
        if vapp.state in (VAppState.RUNNING, VAppState.PARTIAL):
            lifetime = self._lifetimes.next()
            self._spawn_guarded(self._delete_after(vapp, lifetime), "lifetime-delete")

    def _delete_after(self, vapp: VApp, delay: float) -> typing.Generator:
        yield self.sim.timeout(delay)
        terminal = (VAppState.DELETED, VAppState.DELETING)
        if vapp.state not in terminal and not self._stopped:
            yield from self.director.delete(vapp)

    def _issue_destroy(self) -> None:
        candidates = self.director.running_vapps()
        vapp = self._pick(candidates)
        if vapp is None:
            self._skip("destroy_no_vapp")
            return
        self._spawn_guarded(self._delete_now(vapp), "early-delete")

    def _delete_now(self, vapp: VApp) -> typing.Generator:
        if vapp.state not in (VAppState.DELETED, VAppState.DELETING):
            yield from self.director.delete(vapp)

    def _issue_clone_linked(self) -> None:
        self._issue_clone(linked=True)

    def _issue_clone_full(self) -> None:
        self._issue_clone(linked=False)

    def _issue_clone(self, linked: bool) -> None:
        """A raw template clone (trace replay uses these directly)."""
        template = self.library.get(DEFAULT_SPECS[1].name)
        host = self._pick([h for h in self.cluster.usable_hosts])
        datastore = self._pick(
            sorted(self.cluster.shared_datastores(), key=lambda ds: ds.entity_id)
        )
        if host is None or datastore is None:
            self._skip("clone_no_capacity")
            return
        self._clone_counter = getattr(self, "_clone_counter", 0) + 1
        operation = CloneVM(
            template,
            f"clone-{self._clone_counter}",
            host,
            datastore,
            linked=linked,
        )
        self._submit_guarded(operation, "clone")

    def _issue_power_on(self) -> None:
        vm = self._pick(self._tenant_vms(lambda vm: vm.power_state == PowerState.OFF))
        if vm is None:
            self._skip("power_on_no_target")
            return
        self._submit_guarded(PowerOn(vm), "power-on")

    def _issue_power_off(self) -> None:
        vm = self._pick(self._tenant_vms(lambda vm: vm.power_state == PowerState.ON))
        if vm is None:
            self._skip("power_off_no_target")
            return
        self._submit_guarded(PowerOff(vm), "power-off")

    def _issue_reconfigure(self) -> None:
        vm = self._pick(self._tenant_vms())
        if vm is None:
            self._skip("reconfigure_no_target")
            return
        self._submit_guarded(
            ReconfigureVM(vm, vcpus=self._rng.choice((1, 2, 4, 8))), "reconfigure"
        )

    def _issue_snapshot_create(self) -> None:
        vm = self._pick(
            self._tenant_vms(lambda vm: vm.max_chain_depth < MAX_CHAIN_DEPTH - 2)
        )
        if vm is None:
            self._skip("snapshot_no_target")
            return
        self._submit_guarded(CreateSnapshot(vm, f"auto-{self.sim.now:.0f}"), "snapshot")

    def _issue_snapshot_delete(self) -> None:
        vm = self._pick(self._tenant_vms(lambda vm: bool(vm.snapshots)))
        if vm is None:
            self._skip("snapshot_delete_no_target")
            return
        # Guest writes accumulated since the snapshot: lognormal, median 1 GB.
        from repro.sim.random import bounded, lognormal_from_median

        written_gb = bounded(
            lognormal_from_median(self._rng, 1.0, 1.0), 0.05, 50.0
        )
        self._submit_guarded(DeleteSnapshot(vm, written_gb=written_gb), "snapshot-delete")

    def _issue_migrate(self) -> None:
        vm = self._pick(self._tenant_vms(lambda vm: vm.power_state == PowerState.ON))
        if vm is None:
            self._skip("migrate_no_target")
            return
        others = [host for host in self.cluster.usable_hosts if host is not vm.host]
        destination = self._pick(others)
        if destination is None:
            self._skip("migrate_no_destination")
            return
        self._submit_guarded(MigrateVM(vm, destination), "migrate")

    def _issue_rescan_datastore(self) -> None:
        datastore = self._pick(
            sorted(self.cluster.shared_datastores(), key=lambda ds: ds.entity_id)
        )
        if datastore is None:
            self._skip("rescan_no_datastore")
            return
        self._submit_guarded(RescanDatastore(datastore), "rescan")

    def _issue_add_host(self) -> None:
        host = self._spares.take_host()
        if host is None:
            self._skip("add_host_no_spares")
            return
        shared = sorted(self.cluster.shared_datastores(), key=lambda ds: ds.entity_id)
        self._submit_guarded(
            AddHost(host, self.cluster, shared, networks=[self.network]), "add-host"
        )

    def _issue_add_datastore(self) -> None:
        datastore = self._spares.make_datastore()
        self._submit_guarded(
            AddDatastore(datastore, self.cluster.usable_hosts), "add-datastore"
        )

    def _issue_network_reconfig(self) -> None:
        self._submit_guarded(NetworkReconfig(self.cluster, self.network), "net-reconfig")

    # -- output ---------------------------------------------------------------------------

    def trace(self) -> list[TraceRecord]:
        """Trace records for every completed management task."""
        return [
            TraceRecord.from_task(task)
            for task in self.server.tasks.completed()
            if task.finished_at is not None
        ]
