"""Arrival processes: Poisson, diurnal, and bursty (MMPP).

Self-service portals show strong diurnal cycles (tenants are humans) with
superimposed bursts (CI farms, classroom labs deploying many vApps at
once). The MMPP two-state process captures the bursts; the diurnal
Poisson captures the daily envelope.
"""

from __future__ import annotations

import math
import random

from repro.workloads import sampling


class ArrivalProcess:
    """Base: generates the next arrival time after ``now``."""

    def next_arrival(self, now: float, rng: random.Random) -> float:
        raise NotImplementedError

    def batched(self, rng: random.Random, batch: int = 512) -> "sampling.BatchedArrivals":
        """A batched adapter drawing prefetched variates from ``rng``.

        The adapter's ``next_arrival(now)`` consumes the stream in exactly
        the per-event draw order, so schedules are byte-identical; it owns
        any lazily-advanced state, leaving this process untouched.
        """
        raise NotImplementedError

    def mean_rate(self) -> float:
        """Long-run arrivals per second (for load accounting)."""
        raise NotImplementedError


class Poisson(ArrivalProcess):
    """Homogeneous Poisson arrivals at ``rate`` per second."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self.rate = rate

    def next_arrival(self, now: float, rng: random.Random) -> float:
        return now + rng.expovariate(self.rate)

    def batched(self, rng: random.Random, batch: int = 512) -> "sampling.BatchedPoisson":
        return sampling.BatchedPoisson(self, rng, batch)

    def mean_rate(self) -> float:
        return self.rate


class DiurnalPoisson(ArrivalProcess):
    """Non-homogeneous Poisson with a sinusoidal daily envelope.

    Rate(t) = base · (1 + amplitude · cos(2π (t - peak) / period)), sampled
    by thinning. ``amplitude`` in [0, 1): 0 is flat, 0.9 nearly shuts down
    overnight.
    """

    def __init__(
        self,
        base_rate: float,
        amplitude: float = 0.6,
        period_s: float = 86_400.0,
        peak_at_s: float = 14 * 3600.0,
    ) -> None:
        if base_rate <= 0:
            raise ValueError("base_rate must be positive")
        if not 0.0 <= amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        self.base_rate = base_rate
        self.amplitude = amplitude
        self.period_s = period_s
        self.peak_at_s = peak_at_s

    def rate_at(self, time: float) -> float:
        phase = 2.0 * math.pi * (time - self.peak_at_s) / self.period_s
        return self.base_rate * (1.0 + self.amplitude * math.cos(phase))

    def next_arrival(self, now: float, rng: random.Random) -> float:
        # Thinning (Lewis & Shedler) against the max rate.
        ceiling = self.base_rate * (1.0 + self.amplitude)
        time = now
        while True:
            time += rng.expovariate(ceiling)
            if rng.random() <= self.rate_at(time) / ceiling:
                return time

    def batched(self, rng: random.Random, batch: int = 512) -> "sampling.BatchedDiurnal":
        return sampling.BatchedDiurnal(self, rng, batch)

    def mean_rate(self) -> float:
        return self.base_rate


class MMPPBurst(ArrivalProcess):
    """Two-state Markov-modulated Poisson process: calm / burst.

    Dwell times in each state are exponential; arrivals are Poisson at the
    state's rate. State is advanced lazily as arrivals are drawn.
    """

    def __init__(
        self,
        calm_rate: float,
        burst_rate: float,
        mean_calm_s: float,
        mean_burst_s: float,
    ) -> None:
        if min(calm_rate, burst_rate, mean_calm_s, mean_burst_s) <= 0:
            raise ValueError("all MMPP parameters must be positive")
        if burst_rate <= calm_rate:
            raise ValueError("burst_rate must exceed calm_rate")
        self.calm_rate = calm_rate
        self.burst_rate = burst_rate
        self.mean_calm_s = mean_calm_s
        self.mean_burst_s = mean_burst_s
        self._in_burst = False
        self._state_until = 0.0

    def _advance_state(self, time: float, rng: random.Random) -> None:
        while time >= self._state_until:
            self._in_burst = not self._in_burst
            dwell = self.mean_burst_s if self._in_burst else self.mean_calm_s
            self._state_until += rng.expovariate(1.0 / dwell)

    def next_arrival(self, now: float, rng: random.Random) -> float:
        time = now
        while True:
            self._advance_state(time, rng)
            rate = self.burst_rate if self._in_burst else self.calm_rate
            candidate = time + rng.expovariate(rate)
            if candidate <= self._state_until:
                return candidate
            # State flips before the candidate arrival: redraw from the
            # flip point under the new state's rate.
            time = self._state_until

    def batched(self, rng: random.Random, batch: int = 512) -> "sampling.BatchedMMPP":
        return sampling.BatchedMMPP(self, rng, batch)

    def mean_rate(self) -> float:
        calm_weight = self.mean_calm_s / (self.mean_calm_s + self.mean_burst_s)
        return calm_weight * self.calm_rate + (1 - calm_weight) * self.burst_rate
