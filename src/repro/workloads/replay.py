"""Trace replay: re-drive a recorded operation stream against a new design.

The what-if workflow the paper's conclusions invite: record a measurement
window (or parse a production log into :class:`TraceRecord`s), then
replay the *same* operation arrivals against a modified control plane —
more op threads, database batching, different lock granularity — and
compare what the tenants would have seen.

Replay preserves each record's **submission time and operation type**;
concrete targets (which VM to power on, where to place a clone) are
re-chosen against the replay infrastructure, since entity identities
don't transfer across configurations.
"""

from __future__ import annotations

import typing

from repro.controlplane.costs import ControlPlaneConfig, ControlPlaneCosts, DEFAULT_COSTS
from repro.operations.base import OperationType
from repro.sim.kernel import Simulator
from repro.sim.random import RandomStreams
from repro.traces.records import TraceRecord
from repro.workloads.driver import WorkloadDriver
from repro.workloads.profiles import CloudProfile


class TraceReplayer(WorkloadDriver):
    """A driver that walks a recorded trace instead of sampling arrivals."""

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        profile: CloudProfile,
        trace: typing.Sequence[TraceRecord],
        costs: ControlPlaneCosts = DEFAULT_COSTS,
        config: ControlPlaneConfig | None = None,
    ) -> None:
        super().__init__(sim, streams, profile, costs=costs, config=config)
        if not trace:
            raise ValueError("cannot replay an empty trace")
        self.source_trace = sorted(trace, key=lambda record: record.submitted_at)
        self.replayed = 0
        self.unsupported: dict[str, int] = {}

    def run(self, duration: float | None = None) -> None:
        """Replay records submitted within [0, duration); defaults to all."""
        horizon = duration
        if horizon is None:
            horizon = self.source_trace[-1].submitted_at + 1.0
        if horizon <= 0:
            raise ValueError("duration must be positive")
        self._stopped = False
        self.sim.spawn(self._replay_loop(horizon), name="replay")
        self.sim.run(until=self.sim.now + horizon)
        self._stopped = True
        self.sim.run()

    def _replay_loop(self, horizon: float) -> typing.Generator:
        origin = self.sim.now
        for record in self.source_trace:
            if record.submitted_at >= horizon:
                return
            target_time = origin + record.submitted_at
            if target_time > self.sim.now:
                yield self.sim.timeout(target_time - self.sim.now)
            try:
                op_type = OperationType(record.op_type)
            except ValueError:
                self.unsupported[record.op_type] = (
                    self.unsupported.get(record.op_type, 0) + 1
                )
                continue
            self.replayed += 1
            self._issue(op_type)


def replay_against(
    trace: typing.Sequence[TraceRecord],
    profile: CloudProfile,
    seed: int = 0,
    duration: float | None = None,
    costs: ControlPlaneCosts = DEFAULT_COSTS,
    config: ControlPlaneConfig | None = None,
) -> TraceReplayer:
    """Convenience: build a replayer, run it, return it for analysis."""
    sim = Simulator()
    replayer = TraceReplayer(
        sim, RandomStreams(seed), profile, trace, costs=costs, config=config
    )
    replayer.run(duration)
    return replayer
