"""Operation mixes: what fraction of the management workload each verb is.

The mixes encode the paper's claim-2 contrast. In self-service clouds the
log is dominated by provisioning churn (deploy/destroy and their power
operations); in a classic virtualized datacenter VMs are long-lived and
the log is dominated by power cycling, reconfiguration of existing VMs,
snapshots for backup windows, and DRS migrations, with provisioning rare.

Magnitudes follow the companion ISCA'10 study's characterization of
datacenter management workloads and public descriptions of
vCloud-Director-era self-service pools; they are documented inputs, not
measurements.
"""

from __future__ import annotations

import random
import typing

from repro.operations.base import OperationType


class OperationMix:
    """A normalized distribution over operation types."""

    def __init__(self, weights: dict[OperationType, float]) -> None:
        if not weights:
            raise ValueError("mix must have at least one operation type")
        total = sum(weights.values())
        if total <= 0:
            raise ValueError("mix weights must sum to a positive value")
        if any(weight < 0 for weight in weights.values()):
            raise ValueError("mix weights must be non-negative")
        self.fractions: dict[OperationType, float] = {
            op: weight / total for op, weight in weights.items() if weight > 0
        }
        self._ops = sorted(self.fractions, key=lambda op: op.value)
        self._cumulative: list[float] = []
        running = 0.0
        for op in self._ops:
            running += self.fractions[op]
            self._cumulative.append(running)

    def sample(self, rng: random.Random) -> OperationType:
        draw = rng.random()
        for op, edge in zip(self._ops, self._cumulative):
            if draw <= edge:
                return op
        return self._ops[-1]

    def fraction(self, op: OperationType) -> float:
        return self.fractions.get(op, 0.0)

    def provisioning_fraction(self) -> float:
        return sum(
            fraction
            for op, fraction in self.fractions.items()
            if op in OperationType.provisioning()
        )

    def reconfiguration_fraction(self) -> float:
        return sum(
            fraction
            for op, fraction in self.fractions.items()
            if op in OperationType.reconfiguration()
        )

    def items(self) -> list[typing.Tuple[OperationType, float]]:
        return [(op, self.fractions[op]) for op in self._ops]


# Cloud A: a large internal dev/test self-service cloud. Extreme churn:
# nearly two-thirds of all operations are provisioning or its direct
# consequences, and reconfiguration is a visible steady-state component.
CLOUD_A_MIX = OperationMix(
    {
        OperationType.DEPLOY: 0.30,
        OperationType.DESTROY: 0.26,
        OperationType.POWER_ON: 0.10,
        OperationType.POWER_OFF: 0.10,
        OperationType.RECONFIGURE: 0.08,
        OperationType.SNAPSHOT_CREATE: 0.05,
        OperationType.SNAPSHOT_DELETE: 0.03,
        OperationType.MIGRATE: 0.03,
        OperationType.RESCAN_DATASTORE: 0.02,
        OperationType.ADD_DATASTORE: 0.01,
        OperationType.ADD_HOST: 0.01,
        OperationType.NETWORK_RECONFIG: 0.01,
    }
)

# Cloud B: a smaller production self-service cloud. Still
# provisioning-heavy but with longer-lived workloads, more migration
# (capacity balancing), and slightly less churn.
CLOUD_B_MIX = OperationMix(
    {
        OperationType.DEPLOY: 0.22,
        OperationType.DESTROY: 0.18,
        OperationType.POWER_ON: 0.13,
        OperationType.POWER_OFF: 0.12,
        OperationType.RECONFIGURE: 0.10,
        OperationType.SNAPSHOT_CREATE: 0.08,
        OperationType.SNAPSHOT_DELETE: 0.05,
        OperationType.MIGRATE: 0.06,
        OperationType.RESCAN_DATASTORE: 0.03,
        OperationType.ADD_DATASTORE: 0.01,
        OperationType.ADD_HOST: 0.01,
        OperationType.NETWORK_RECONFIG: 0.01,
    }
)

# Classic virtualized datacenter: long-lived VMs, human-paced change.
# Power cycling, reconfiguration, backup snapshots, and DRS migrations
# dominate; provisioning and infrastructure reconfiguration are rare.
CLASSIC_DC_MIX = OperationMix(
    {
        OperationType.POWER_ON: 0.22,
        OperationType.POWER_OFF: 0.20,
        OperationType.RECONFIGURE: 0.16,
        OperationType.SNAPSHOT_CREATE: 0.12,
        OperationType.SNAPSHOT_DELETE: 0.08,
        OperationType.MIGRATE: 0.12,
        OperationType.DEPLOY: 0.04,
        OperationType.DESTROY: 0.03,
        OperationType.RESCAN_DATASTORE: 0.02,
        OperationType.ADD_HOST: 0.005,
        OperationType.ADD_DATASTORE: 0.003,
        OperationType.NETWORK_RECONFIG: 0.002,
    }
)
