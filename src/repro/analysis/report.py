"""Plain-text rendering for tables and series (bench harness output)."""

from __future__ import annotations

import csv
import pathlib
import typing


def render_table(
    headers: typing.Sequence[str],
    rows: typing.Sequence[typing.Sequence[typing.Any]],
    title: str = "",
) -> str:
    """A fixed-width ASCII table."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row!r}"
            )
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))

    def line(values: typing.Sequence[str]) -> str:
        return "  ".join(value.ljust(width) for value, width in zip(values, widths)).rstrip()

    out = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(line(["-" * width for width in widths]))
    out.extend(line(row) for row in cells)
    return "\n".join(out)


def export_series_csv(
    series: typing.Mapping[str, typing.Sequence[tuple[float, float]]],
    path: str | pathlib.Path,
) -> int:
    """Write labeled series as long-form CSV (label, x, y) for plotting.

    Returns the number of data rows written.
    """
    rows = 0
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["series", "x", "y"])
        for label, pairs in series.items():
            for x, y in pairs:
                writer.writerow([label, x, y])
                rows += 1
    return rows


def render_series(
    label: str,
    pairs: typing.Sequence[tuple[float, float]],
    x_name: str = "x",
    y_name: str = "y",
    max_points: int = 40,
    bar_width: int = 40,
) -> str:
    """A series with an inline bar chart, downsampled to ``max_points``."""
    if not pairs:
        return f"{label}: (empty)"
    step = max(1, len(pairs) // max_points)
    sampled = list(pairs[::step])
    if sampled[-1] != pairs[-1]:
        sampled.append(pairs[-1])
    peak = max(y for _, y in sampled)
    out = [f"{label}  ({x_name} vs {y_name})"]
    for x, y in sampled:
        bar = "#" * (int(bar_width * y / peak) if peak > 0 else 0)
        out.append(f"  {x:>12.1f}  {y:>12.4f}  {bar}")
    return "\n".join(out)
