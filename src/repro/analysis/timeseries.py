"""Time-series analysis: arrival and completion rates (R-F1, R-F7)."""

from __future__ import annotations

import typing

from repro.sim.stats import TimeSeries
from repro.traces.records import TraceRecord


def arrival_rate_series(
    records: typing.Iterable[TraceRecord], bin_s: float = 300.0
) -> list[tuple[float, float]]:
    """Operations submitted per bin: (bin start, ops/second in bin)."""
    series = TimeSeries("arrivals", bin_width=bin_s)
    for record in records:
        series.record(record.submitted_at)
    return [(start, count / bin_s) for start, count in series.bins()]


def completion_rate_series(
    records: typing.Iterable[TraceRecord], bin_s: float = 300.0
) -> list[tuple[float, float]]:
    """Operations completed per bin: (bin start, ops/second in bin)."""
    series = TimeSeries("completions", bin_width=bin_s)
    for record in records:
        series.record(record.finished_at)
    return [(start, count / bin_s) for start, count in series.bins()]


def peak_to_trough(series: list[tuple[float, float]]) -> float:
    """Ratio of the max to min non-empty bin (diurnality measure)."""
    values = [value for _, value in series if value > 0]
    if not values:
        return 0.0
    return max(values) / min(values)
