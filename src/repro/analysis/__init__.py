"""The characterization pipeline: what the paper *did* to its logs.

Consumes :class:`~repro.traces.records.TraceRecord` lists (synthetic here,
but schema-compatible with parsed production logs) and produces the
paper's analyses: operation mixes, latency distributions, arrival-rate
time series, and control-vs-data plane attribution.
"""

from repro.analysis.bottleneck import (
    phase_breakdown,
    plane_breakdown,
    plane_breakdown_by_type,
)
from repro.analysis.burstiness import (
    arrival_cov,
    burstiness_summary,
    index_of_dispersion,
)
from repro.analysis.comparison import compare_traces, comparison_report
from repro.analysis.latency import latency_by_type, latency_cdf, latency_stats
from repro.analysis.mix import mix_comparison, operation_counts, operation_mix
from repro.analysis.report import render_series, render_table
from repro.analysis.spans import (
    aggregate_phase_attribution,
    control_plane_share,
    critical_path,
    critical_path_length,
    critical_path_phases,
    phase_attribution,
    queueing_service_split,
)
from repro.analysis.timeseries import arrival_rate_series, completion_rate_series

__all__ = [
    "aggregate_phase_attribution",
    "control_plane_share",
    "critical_path",
    "critical_path_length",
    "critical_path_phases",
    "phase_attribution",
    "queueing_service_split",
    "arrival_cov",
    "arrival_rate_series",
    "burstiness_summary",
    "compare_traces",
    "comparison_report",
    "index_of_dispersion",
    "completion_rate_series",
    "latency_by_type",
    "latency_cdf",
    "latency_stats",
    "mix_comparison",
    "operation_counts",
    "operation_mix",
    "phase_breakdown",
    "plane_breakdown",
    "plane_breakdown_by_type",
    "render_series",
    "render_table",
]
