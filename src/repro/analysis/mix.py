"""Operation-mix analysis (R-T2)."""

from __future__ import annotations

import typing

from repro.traces.records import TraceRecord


def operation_counts(records: typing.Iterable[TraceRecord]) -> dict[str, int]:
    """Completed-operation counts by type."""
    counts: dict[str, int] = {}
    for record in records:
        counts[record.op_type] = counts.get(record.op_type, 0) + 1
    return counts


def operation_mix(records: typing.Sequence[TraceRecord]) -> dict[str, float]:
    """Fraction of total operations by type (sums to 1 for non-empty input)."""
    counts = operation_counts(records)
    total = sum(counts.values())
    if total == 0:
        return {}
    return {op: count / total for op, count in counts.items()}


def mix_comparison(
    traces: dict[str, typing.Sequence[TraceRecord]]
) -> tuple[list[str], list[list[str]]]:
    """Headers and rows comparing mixes across labeled traces.

    Rows are sorted by the first trace's fraction, descending — the
    presentation order characterization papers use.
    """
    mixes = {label: operation_mix(trace) for label, trace in traces.items()}
    labels = list(traces)
    all_ops: set[str] = set()
    for mix in mixes.values():
        all_ops.update(mix)
    first = labels[0] if labels else ""
    ordered = sorted(all_ops, key=lambda op: -mixes.get(first, {}).get(op, 0.0))
    headers = ["operation"] + [f"{label} (%)" for label in labels]
    rows = [
        [op] + [f"{mixes[label].get(op, 0.0) * 100:.1f}" for label in labels]
        for op in ordered
    ]
    return headers, rows
