"""Latency analysis: summary statistics and CDFs (R-F2)."""

from __future__ import annotations

import typing

from repro.sim.stats import LatencyRecorder
from repro.traces.records import TraceRecord


def latency_stats(records: typing.Sequence[TraceRecord]) -> dict[str, float]:
    """count / mean / p50 / p95 / p99 / max over end-to-end latencies."""
    recorder = LatencyRecorder("latency")
    for record in records:
        recorder.record(record.latency)
    if recorder.count == 0:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
    return {
        "count": recorder.count,
        "mean": recorder.mean,
        "p50": recorder.percentile(0.50),
        "p95": recorder.percentile(0.95),
        "p99": recorder.percentile(0.99),
        "max": recorder.percentile(1.0),
    }


def latency_by_type(
    records: typing.Sequence[TraceRecord],
) -> dict[str, dict[str, float]]:
    """Per-operation-type latency statistics, sorted by p50 descending."""
    groups: dict[str, list[TraceRecord]] = {}
    for record in records:
        groups.setdefault(record.op_type, []).append(record)
    stats = {op: latency_stats(group) for op, group in groups.items()}
    return dict(sorted(stats.items(), key=lambda item: -item[1]["p50"]))


def latency_cdf(
    records: typing.Sequence[TraceRecord], points: int = 50
) -> list[tuple[float, float]]:
    """(latency, cumulative fraction) pairs for plotting."""
    recorder = LatencyRecorder("cdf")
    for record in records:
        recorder.record(record.latency)
    return recorder.cdf(points=points)
