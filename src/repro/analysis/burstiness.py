"""Burstiness metrics for operation arrival streams.

Characterization studies quantify how far an arrival stream departs from
Poisson: the coefficient of variation of inter-arrival times (CoV = 1 for
Poisson, > 1 bursty) and the index of dispersion for counts (IDC).
Self-service clouds are distinctly bursty — batch deployments and
classroom labs — which is what stresses the control plane's queues (R-F7).
"""

from __future__ import annotations

import math
import typing

from repro.traces.records import TraceRecord


def interarrival_times(records: typing.Sequence[TraceRecord]) -> list[float]:
    """Gaps between successive submissions (submission-time order)."""
    times = sorted(record.submitted_at for record in records)
    return [b - a for a, b in zip(times, times[1:])]


def coefficient_of_variation(values: typing.Sequence[float]) -> float:
    """stddev / mean; 0 for constant streams, 1 for Poisson gaps."""
    if len(values) < 2:
        return 0.0
    mean = sum(values) / len(values)
    if mean <= 0:
        return 0.0
    variance = sum((value - mean) ** 2 for value in values) / (len(values) - 1)
    return math.sqrt(variance) / mean


def arrival_cov(records: typing.Sequence[TraceRecord]) -> float:
    """CoV of the trace's inter-arrival times."""
    return coefficient_of_variation(interarrival_times(records))


def index_of_dispersion(
    records: typing.Sequence[TraceRecord], bin_s: float = 60.0
) -> float:
    """Variance-to-mean ratio of per-bin arrival counts (1 for Poisson)."""
    if not records:
        return 0.0
    times = [record.submitted_at for record in records]
    lo, hi = min(times), max(times)
    if hi <= lo:
        return 0.0
    bins = int((hi - lo) / bin_s) + 1
    counts = [0] * bins
    for time in times:
        counts[int((time - lo) / bin_s)] = counts[int((time - lo) / bin_s)] + 1
    mean = sum(counts) / len(counts)
    if mean <= 0:
        return 0.0
    variance = sum((count - mean) ** 2 for count in counts) / max(1, len(counts) - 1)
    return variance / mean


def burstiness_summary(
    records: typing.Sequence[TraceRecord], bin_s: float = 60.0
) -> dict[str, float]:
    """CoV + IDC in one call (the R-F7 companion statistics)."""
    return {
        "arrival_cov": arrival_cov(records),
        "index_of_dispersion": index_of_dispersion(records, bin_s=bin_s),
        "operations": float(len(records)),
    }
