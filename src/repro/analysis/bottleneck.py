"""Plane attribution: where operation time is spent (R-F5, R-F8).

The paper's headline is an attribution claim — with linked clones the
control plane, not the data plane, limits provisioning. These helpers
compute that attribution from trace records (which carry per-task
control/data seconds) and from task phase lists.
"""

from __future__ import annotations

import typing

from repro.controlplane.task_manager import Task
from repro.traces.records import TraceRecord


def plane_breakdown(records: typing.Sequence[TraceRecord]) -> dict[str, float]:
    """Fractions of attributed operation time on each plane.

    ``unattributed`` covers queueing and scheduling gaps between phases
    (time the op spent waiting for control-plane resources without an
    active phase) — itself control-plane pressure, reported separately
    for honesty.
    """
    control = sum(record.control_s for record in records)
    data = sum(record.data_s for record in records)
    wall = sum(record.latency for record in records)
    if wall <= 0:
        return {"control": 0.0, "data": 0.0, "unattributed": 0.0}
    return {
        "control": control / wall,
        "data": data / wall,
        "unattributed": max(0.0, (wall - control - data) / wall),
    }


def plane_breakdown_by_type(
    records: typing.Sequence[TraceRecord],
) -> dict[str, dict[str, float]]:
    groups: dict[str, list[TraceRecord]] = {}
    for record in records:
        groups.setdefault(record.op_type, []).append(record)
    return {op: plane_breakdown(group) for op, group in sorted(groups.items())}


def phase_breakdown(tasks: typing.Sequence[Task]) -> list[tuple[str, str, float]]:
    """Aggregate (phase, plane, total seconds) across tasks, largest first.

    Numeric suffixes (``copy_disk_0``/``copy_disk_1``) fold together.
    """
    totals: dict[tuple[str, str], float] = {}
    for task in tasks:
        for name, plane, seconds in task.phases:
            base = name.rstrip("0123456789").rstrip("_")
            totals[(base, plane)] = totals.get((base, plane), 0.0) + seconds
    return sorted(
        [(name, plane, seconds) for (name, plane), seconds in totals.items()],
        key=lambda item: -item[2],
    )
