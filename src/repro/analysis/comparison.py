"""Side-by-side trace comparison: the output of a what-if replay."""

from __future__ import annotations

import typing

from repro.analysis.latency import latency_by_type
from repro.analysis.report import render_table
from repro.traces.records import TraceRecord


def compare_traces(
    baseline: typing.Sequence[TraceRecord],
    variant: typing.Sequence[TraceRecord],
    baseline_label: str = "baseline",
    variant_label: str = "variant",
    min_samples: int = 3,
) -> tuple[list[str], list[list[str]]]:
    """Per-op-type p50 latency comparison, biggest improvement first.

    Returns (headers, rows); render with
    :func:`repro.analysis.report.render_table`.
    """
    base_stats = latency_by_type(baseline)
    var_stats = latency_by_type(variant)
    rows = []
    for op in sorted(set(base_stats) & set(var_stats)):
        base = base_stats[op]
        var = var_stats[op]
        if base["count"] < min_samples or var["count"] < min_samples:
            continue
        speedup = base["p50"] / var["p50"] if var["p50"] > 0 else float("inf")
        rows.append(
            [
                op,
                base["count"],
                f"{base['p50']:.2f}",
                f"{var['p50']:.2f}",
                f"{speedup:.2f}x",
            ]
        )
    rows.sort(key=lambda row: -float(row[4].rstrip("x")))
    headers = [
        "operation",
        "n",
        f"{baseline_label} p50 (s)",
        f"{variant_label} p50 (s)",
        "speedup",
    ]
    return headers, rows


def comparison_report(
    baseline: typing.Sequence[TraceRecord],
    variant: typing.Sequence[TraceRecord],
    baseline_label: str = "baseline",
    variant_label: str = "variant",
) -> str:
    """The rendered comparison table plus aggregate lines."""
    headers, rows = compare_traces(
        baseline, variant, baseline_label=baseline_label, variant_label=variant_label
    )
    table = render_table(headers, rows, title="What-if comparison")
    base_mean = sum(r.latency for r in baseline) / max(1, len(baseline))
    var_mean = sum(r.latency for r in variant) / max(1, len(variant))
    summary = (
        f"\noverall mean latency: {baseline_label} {base_mean:.2f}s -> "
        f"{variant_label} {var_mean:.2f}s"
    )
    return table + summary
