"""Span-tree analysis: phase attribution, queue/service split, critical path.

Input is a span tree (a root :class:`~repro.tracing.span.Span` whose
tracer indexes its descendants). Three analyses:

- :func:`phase_attribution` — **exclusive** (self) time per phase tag:
  each span contributes its duration minus the union of its children's
  intervals, so nested instrumentation never double-counts. The root's
  own self time is scheduling gaps between phases — reported under the
  root's phase (``task``), which the exhibits fold into "other".
- :func:`queueing_service_split` — wait-tagged spans (resource-pool and
  dispatch waits) vs everything else: how much of an operation was spent
  *waiting for* the control plane rather than being served by it.
- :func:`critical_path` — the sequence of span segments that determined
  the root's end time, found by walking backwards from the root's end
  through the last-finishing child at each level. Segment lengths sum to
  exactly the root's duration (the critical-path length can never exceed
  the operation's latency).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.tracing.span import DATA_PHASES, Span
from repro.tracing.tracer import Tracer

# Phases counted as control-plane time in exhibit summaries.
CONTROL_PHASES = frozenset(
    {"task", "queue", "admission", "placement", "db", "agent", "retry", "cpu", "lock", "request", "eventlog"}
)


def _finished_children(tracer: Tracer, span: Span) -> list[Span]:
    return [child for child in tracer.children(span) if child.finished]


def _interval_union(intervals: list[tuple[float, float]]) -> float:
    """Total length covered by a set of (start, end) intervals."""
    if not intervals:
        return 0.0
    intervals.sort()
    covered = 0.0
    current_start, current_end = intervals[0]
    for start, end in intervals[1:]:
        if start > current_end:
            covered += current_end - current_start
            current_start, current_end = start, end
        else:
            current_end = max(current_end, end)
    covered += current_end - current_start
    return covered


def exclusive_time(tracer: Tracer, span: Span) -> float:
    """Span duration minus the union of its children's intervals."""
    if not span.finished:
        return 0.0
    intervals = [
        (max(child.start, span.start), min(child.end, span.end))
        for child in _finished_children(tracer, span)
        if child.end > span.start and child.start < span.end
    ]
    return max(0.0, span.duration - _interval_union(intervals))


def phase_attribution(root: Span) -> dict[str, float]:
    """Exclusive seconds per phase tag over ``root``'s subtree."""
    if root.is_null:
        return {}
    tracer = root.tracer
    totals: dict[str, float] = {}
    for span in tracer.subtree(root):
        self_time = exclusive_time(tracer, span)
        if self_time > 0.0:
            totals[span.phase] = totals.get(span.phase, 0.0) + self_time
    return totals


def aggregate_phase_attribution(roots: typing.Iterable[Span]) -> dict[str, float]:
    """Summed :func:`phase_attribution` over many span trees."""
    totals: dict[str, float] = {}
    for root in roots:
        for phase, seconds in phase_attribution(root).items():
            totals[phase] = totals.get(phase, 0.0) + seconds
    return totals


def control_plane_share(attribution: dict[str, float]) -> float:
    """Fraction of attributed time on control-plane phases."""
    control = sum(s for p, s in attribution.items() if p not in DATA_PHASES)
    total = sum(attribution.values())
    return control / total if total > 0 else 0.0


def queueing_service_split(root: Span) -> dict[str, float]:
    """Seconds spent waiting vs being served, over ``root``'s subtree.

    Wait spans are marked with a ``wait`` tag by the instrumentation
    (dispatch-queue waits, CPU/DB/agent pool waits, copy-slot waits,
    gateway admission, retry backoff). Exclusive time is used on both
    sides, so the two buckets sum to the attributed total.
    """
    if root.is_null:
        return {"queueing": 0.0, "service": 0.0}
    tracer = root.tracer
    queueing = service = 0.0
    for span in tracer.subtree(root):
        self_time = exclusive_time(tracer, span)
        if span.tags.get("wait"):
            queueing += self_time
        else:
            service += self_time
    return {"queueing": queueing, "service": service}


@dataclasses.dataclass(frozen=True)
class CriticalSegment:
    """One stretch of the critical path, attributed to one span."""

    span: Span
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


def critical_path(root: Span) -> list[CriticalSegment]:
    """Segments that determined ``root``'s end time, in time order.

    Walk backwards from the root's end: the last-finishing child before
    the cursor owns the path up to its end; gaps between children belong
    to the parent (its self time was the blocker). Recurses into each
    owning child. Segment durations sum to the root's duration exactly.
    """
    if root.is_null or not root.finished:
        return []
    tracer = root.tracer

    def walk(span: Span, cutoff: float) -> list[CriticalSegment]:
        segments: list[CriticalSegment] = []
        cursor = min(cutoff, span.end)
        children = [
            child
            for child in _finished_children(tracer, span)
            if child.start < cursor and child.end > span.start
        ]
        while cursor > span.start:
            active = [child for child in children if child.start < cursor]
            if not active:
                segments.append(CriticalSegment(span, span.start, cursor))
                break
            owner = max(active, key=lambda child: (min(child.end, cursor), child.start))
            owner_end = min(owner.end, cursor)
            if owner_end < cursor:
                segments.append(CriticalSegment(span, owner_end, cursor))
            segments.extend(walk(owner, owner_end))
            cursor = max(span.start, min(owner.start, cursor))
            children = [child for child in children if child is not owner]
        return segments

    segments = walk(root, root.end)
    segments.reverse()
    return segments


def roots_in_window(tracer: Tracer, start_s: float, end_s: float) -> list[Span]:
    """Finished root spans overlapping ``[start_s, end_s]``, in start order.

    The triage engine asks this around an alert's firing time; overlap
    (not containment) keeps long-running operations that *straddle* the
    window visible, since those are usually the interesting ones.
    """
    return sorted(
        (
            root
            for root in tracer.roots()
            if root.finished and root.end > start_s and root.start < end_s
        ),
        key=lambda root: (root.start, root.context.span_id),
    )


def window_phase_attribution(
    tracer: Tracer, start_s: float, end_s: float
) -> dict[str, float]:
    """Exclusive seconds per phase over roots active in a time window.

    Each root's attribution is weighted by the fraction of the root's
    interval inside the window — an approximation (phases are not spread
    uniformly across an operation), but it keeps work that merely
    straddles the window from dominating it.
    """
    if end_s <= start_s:
        return {}
    totals: dict[str, float] = {}
    for root in roots_in_window(tracer, start_s, end_s):
        overlap = min(root.end, end_s) - max(root.start, start_s)
        weight = overlap / root.duration if root.duration > 0 else 1.0
        for phase, seconds in phase_attribution(root).items():
            totals[phase] = totals.get(phase, 0.0) + seconds * weight
    return totals


def slowest_root_in_window(
    tracer: Tracer, start_s: float, end_s: float
) -> Span | None:
    """The longest finished root overlapping the window (triage drill-down)."""
    roots = roots_in_window(tracer, start_s, end_s)
    if not roots:
        return None
    return max(roots, key=lambda root: (root.duration, -root.start))


def critical_path_length(segments: typing.Sequence[CriticalSegment]) -> float:
    return sum(segment.duration for segment in segments)


def critical_path_phases(segments: typing.Sequence[CriticalSegment]) -> dict[str, float]:
    """Critical-path seconds per phase tag (the 'what to fix first' view)."""
    totals: dict[str, float] = {}
    for segment in segments:
        totals[segment.span.phase] = totals.get(segment.span.phase, 0.0) + segment.duration
    return totals
