"""Closed-form queueing results used to validate the simulator.

The DES kernel's credibility rests on matching theory where theory
exists. This module provides the standard results — M/M/1, M/M/c
(Erlang C), and egalitarian processor sharing — which
``tests/validation`` checks the simulation against.
"""

from __future__ import annotations

import math


def mm1_mean_wait(arrival_rate: float, service_rate: float) -> float:
    """Mean time in queue (excluding service) for an M/M/1 system."""
    if arrival_rate <= 0 or service_rate <= 0:
        raise ValueError("rates must be positive")
    rho = arrival_rate / service_rate
    if rho >= 1.0:
        raise ValueError(f"unstable system (rho={rho:.3f})")
    return rho / (service_rate - arrival_rate)


def mm1_mean_number_in_system(arrival_rate: float, service_rate: float) -> float:
    """Mean number of jobs in an M/M/1 system (queue + service)."""
    rho = arrival_rate / service_rate
    if rho >= 1.0:
        raise ValueError(f"unstable system (rho={rho:.3f})")
    return rho / (1.0 - rho)


def erlang_c(servers: int, offered_load: float) -> float:
    """Probability an arrival waits in an M/M/c queue (Erlang C formula).

    ``offered_load`` is a = λ/μ in Erlangs; requires a < c for stability.
    """
    if servers < 1:
        raise ValueError("servers must be >= 1")
    if offered_load <= 0:
        raise ValueError("offered load must be positive")
    if offered_load >= servers:
        raise ValueError(
            f"unstable system (load {offered_load:.2f} >= servers {servers})"
        )
    # Sum a^k/k! for k < c, computed iteratively for stability.
    term = 1.0
    total = 1.0
    for k in range(1, servers):
        term *= offered_load / k
        total += term
    top = term * offered_load / servers  # a^c / c!
    rho = offered_load / servers
    return (top / (1.0 - rho)) / (total + top / (1.0 - rho))


def mmc_mean_wait(arrival_rate: float, service_rate: float, servers: int) -> float:
    """Mean queueing delay (excluding service) for M/M/c."""
    offered = arrival_rate / service_rate
    wait_probability = erlang_c(servers, offered)
    return wait_probability / (servers * service_rate - arrival_rate)


def processor_sharing_mean_response(
    arrival_rate: float, mean_size: float, capacity: float
) -> float:
    """Mean response time of an M/G/1 egalitarian processor-sharing queue.

    PS response depends only on the mean job size: T = x̄ / (C (1 - ρ)).
    This is the theory behind :class:`~repro.storage.bandwidth.FairShareLink`.
    """
    if capacity <= 0 or mean_size <= 0 or arrival_rate <= 0:
        raise ValueError("all parameters must be positive")
    rho = arrival_rate * mean_size / capacity
    if rho >= 1.0:
        raise ValueError(f"unstable system (rho={rho:.3f})")
    return (mean_size / capacity) / (1.0 - rho)


def utilization(arrival_rate: float, service_rate: float, servers: int = 1) -> float:
    """Offered utilization ρ = λ/(cμ)."""
    if servers < 1 or service_rate <= 0:
        raise ValueError("bad parameters")
    return arrival_rate / (servers * service_rate)
