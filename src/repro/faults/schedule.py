"""Declarative fault schedules.

A :class:`FaultSchedule` is an ordered collection of timed
:class:`FaultSpec` windows; the :class:`~repro.faults.injector.FaultInjector`
arms each spec at ``start_s`` and disarms it at ``start_s + duration_s``.
Specs are frozen dataclasses so schedules are serializable
(:meth:`FaultSchedule.from_dicts` / :meth:`FaultSchedule.to_dicts`) and
hashable-by-value for reproducibility.

Spec catalogue:

==================  =========================================================
``host_flap``       hosts disconnect for the window (calls fail fast,
                    placement avoids them), then reconnect
``agent_degrade``   host-agent calls slow down by ``latency_factor`` and/or
                    fail with probability ``drop_rate``
``db_slowdown``     every database service time is multiplied by ``factor``
``datastore_outage``  copies into the named datastores fail
``copy_flakiness``  every copy fails with probability ``fail_rate``
``shard_crash``     submissions to the named management servers fail
``server_crash``    the named management servers crash outright: in-flight
                    task processes are aborted, submissions rejected, and
                    the restart (at window end) replays the task journal
``message_drop``    bus messages vanish in transit with probability
                    ``rate`` (redelivery timers resend them)
``message_duplicate``  delivered bus messages are cloned with probability
                    ``rate`` (consumers deduplicate by idempotency key)
``message_delay``   bus publishes stall ``delay_s`` before enqueueing
``message_reorder`` bus messages jump the queue with probability ``rate``
``topic_partition`` bus topics stop delivering entirely for the window
                    (queues build; healing drains them)
==================  =========================================================

Targets are referenced *by name* (host names, datastore names, server
names); empty target tuples mean "pick ``count`` at random from the live
infrastructure" using the injector's seeded stream, keeping schedules
portable across rig sizes.
"""

from __future__ import annotations

import dataclasses
import random
import typing

from repro.faults.manifest import GroundTruthManifest, window_from_spec

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.faults.injector import FaultTargets


@dataclasses.dataclass(frozen=True)
class FaultSpec:
    """One timed fault window. Subclasses define arm/disarm behaviour."""

    start_s: float
    duration_s: float

    kind: typing.ClassVar[str] = "abstract"

    def __post_init__(self) -> None:
        if self.start_s < 0:
            raise ValueError(f"start_s must be >= 0, got {self.start_s}")
        if self.duration_s <= 0:
            raise ValueError(f"duration_s must be > 0, got {self.duration_s}")

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    # The injector calls select() once at arm time (resolving names and
    # random picks into live components), then arm()/disarm() with the
    # same selection and a unique per-window token.
    def select(self, targets: "FaultTargets", rng: random.Random) -> list:
        raise NotImplementedError

    def arm(self, targets: "FaultTargets", token: object, selection: list) -> None:
        raise NotImplementedError

    def disarm(self, targets: "FaultTargets", token: object, selection: list) -> None:
        raise NotImplementedError

    def describe(self, selection: list) -> str:
        # NB: never repr() live entities here — their back-references
        # (host ↔ cluster ↔ vms) make dataclass repr blow up combinatorially.
        names = ",".join(
            item.name if hasattr(item, "name") else type(item).__name__
            for item in selection
        )
        return f"{self.kind}[{names}]"


@dataclasses.dataclass(frozen=True)
class HostFlap(FaultSpec):
    """Hosts disconnect for the window, then reconnect."""

    hosts: tuple[str, ...] = ()
    count: int = 1

    kind: typing.ClassVar[str] = "host_flap"

    def select(self, targets, rng):
        return targets.pick_hosts(self.hosts, self.count, rng)

    def arm(self, targets, token, selection):
        for host in selection:
            targets.flap_down(host)

    def disarm(self, targets, token, selection):
        for host in selection:
            targets.flap_up(host)


@dataclasses.dataclass(frozen=True)
class AgentDegrade(FaultSpec):
    """Host-agent calls slow down and/or drop for the window."""

    hosts: tuple[str, ...] = ()
    count: int = 1
    latency_factor: float = 1.0
    drop_rate: float = 0.0

    kind: typing.ClassVar[str] = "agent_degrade"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.latency_factor < 1.0:
            raise ValueError("latency_factor must be >= 1.0")
        if not 0.0 <= self.drop_rate <= 1.0:
            raise ValueError("drop_rate must be in [0, 1]")
        if self.latency_factor == 1.0 and self.drop_rate == 0.0:
            raise ValueError("agent_degrade must degrade latency or drop calls")

    def select(self, targets, rng):
        return targets.pick_hosts(self.hosts, self.count, rng)

    def arm(self, targets, token, selection):
        for host in selection:
            hook = targets.agent_hook(host)
            if self.latency_factor > 1.0:
                hook.set_latency(token, self.latency_factor)
            if self.drop_rate > 0.0:
                hook.set_drop(token, self.drop_rate)

    def disarm(self, targets, token, selection):
        for host in selection:
            targets.agent_hook(host).disarm(token)


@dataclasses.dataclass(frozen=True)
class DbSlowdown(FaultSpec):
    """Every database service time is multiplied by ``factor``."""

    factor: float = 2.0

    kind: typing.ClassVar[str] = "db_slowdown"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.factor <= 1.0:
            raise ValueError("factor must be > 1.0")

    def select(self, targets, rng):
        return targets.database_hooks()

    def arm(self, targets, token, selection):
        for hook in selection:
            hook.set_latency(token, self.factor)

    def disarm(self, targets, token, selection):
        for hook in selection:
            hook.disarm(token)

    def describe(self, selection):
        return f"{self.kind}[x{self.factor:g}]"


@dataclasses.dataclass(frozen=True)
class DatastoreOutage(FaultSpec):
    """Copies into the selected datastores fail for the window."""

    datastores: tuple[str, ...] = ()
    count: int = 1

    kind: typing.ClassVar[str] = "datastore_outage"

    def select(self, targets, rng):
        return targets.pick_datastores(self.datastores, self.count, rng)

    def arm(self, targets, token, selection):
        for datastore in selection:
            for hook in targets.copy_hooks():
                hook.block((token, datastore.entity_id), key=datastore.entity_id)

    def disarm(self, targets, token, selection):
        for datastore in selection:
            for hook in targets.copy_hooks():
                hook.unblock((token, datastore.entity_id))


@dataclasses.dataclass(frozen=True)
class CopyFlakiness(FaultSpec):
    """Every copy fails with probability ``fail_rate`` for the window."""

    fail_rate: float = 0.5

    kind: typing.ClassVar[str] = "copy_flakiness"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.fail_rate <= 1.0:
            raise ValueError("fail_rate must be in (0, 1]")

    def select(self, targets, rng):
        return targets.copy_hooks()

    def arm(self, targets, token, selection):
        for hook in selection:
            hook.set_drop(token, self.fail_rate)

    def disarm(self, targets, token, selection):
        for hook in selection:
            hook.disarm(token)

    def describe(self, selection):
        return f"{self.kind}[p={self.fail_rate:g}]"


@dataclasses.dataclass(frozen=True)
class ShardCrash(FaultSpec):
    """Submissions to the selected management servers fail for the window."""

    shards: tuple[str, ...] = ()
    count: int = 1

    kind: typing.ClassVar[str] = "shard_crash"

    def select(self, targets, rng):
        return targets.pick_servers(self.shards, self.count, rng)

    def arm(self, targets, token, selection):
        for server in selection:
            server.faults.block(token)

    def disarm(self, targets, token, selection):
        for server in selection:
            server.faults.unblock(token)


@dataclasses.dataclass(frozen=True)
class ServerCrash(FaultSpec):
    """The selected management servers crash for the window.

    Harsher than :class:`ShardCrash` (which only rejects *new*
    submissions): arming interrupts every in-flight task process with
    :class:`~repro.faults.errors.ServerCrashed` and rejects submissions;
    disarming restarts the server, whose
    :class:`~repro.controlplane.recovery.RecoveryManager` replays the task
    journal and reconciles the interrupted work. ``duration_s`` is the
    downtime.
    """

    shards: tuple[str, ...] = ()
    count: int = 1

    kind: typing.ClassVar[str] = "server_crash"

    def select(self, targets, rng):
        return targets.pick_servers(self.shards, self.count, rng)

    def arm(self, targets, token, selection):
        for server in selection:
            server.crash(token)

    def disarm(self, targets, token, selection):
        for server in selection:
            server.restart(token)


@dataclasses.dataclass(frozen=True)
class MessageFault(FaultSpec):
    """Shared skeleton for bus-level message faults.

    Targets every mediated bus (direct-call rigs have none, so these
    windows arm as no-ops there — random schedules stay portable).
    ``topics`` narrows the blast radius to the named topics; empty means
    every topic on the bus.
    """

    topics: tuple[str, ...] = ()

    def select(self, targets, rng):
        return targets.buses()

    def _scope(self) -> tuple[str, ...] | None:
        return self.topics or None

    def describe(self, selection):
        scope = ",".join(self.topics) if self.topics else "*"
        return f"{self.kind}[{scope}]"


@dataclasses.dataclass(frozen=True)
class MessageDrop(MessageFault):
    """Bus messages vanish in transit with probability ``rate``."""

    rate: float = 0.3

    kind: typing.ClassVar[str] = "message_drop"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.rate <= 1.0:
            raise ValueError("rate must be in (0, 1]")

    def arm(self, targets, token, selection):
        for bus in selection:
            bus.faults.set_drop(token, self.rate, topics=self._scope())

    def disarm(self, targets, token, selection):
        for bus in selection:
            bus.faults.disarm(token)


@dataclasses.dataclass(frozen=True)
class MessageDuplicate(MessageFault):
    """Delivered bus messages are cloned with probability ``rate``."""

    rate: float = 0.3

    kind: typing.ClassVar[str] = "message_duplicate"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.rate <= 1.0:
            raise ValueError("rate must be in (0, 1]")

    def arm(self, targets, token, selection):
        for bus in selection:
            bus.faults.set_duplicate(token, self.rate, topics=self._scope())

    def disarm(self, targets, token, selection):
        for bus in selection:
            bus.faults.disarm(token)


@dataclasses.dataclass(frozen=True)
class MessageDelay(MessageFault):
    """Bus publishes stall ``delay_s`` before enqueueing."""

    delay_s: float = 2.0

    kind: typing.ClassVar[str] = "message_delay"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.delay_s <= 0.0:
            raise ValueError("delay_s must be > 0")

    def arm(self, targets, token, selection):
        for bus in selection:
            bus.faults.set_delay(token, self.delay_s, topics=self._scope())

    def disarm(self, targets, token, selection):
        for bus in selection:
            bus.faults.disarm(token)


@dataclasses.dataclass(frozen=True)
class MessageReorder(MessageFault):
    """Bus messages jump the queue with probability ``rate``."""

    rate: float = 0.5

    kind: typing.ClassVar[str] = "message_reorder"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.rate <= 1.0:
            raise ValueError("rate must be in (0, 1]")

    def arm(self, targets, token, selection):
        for bus in selection:
            bus.faults.set_reorder(token, self.rate, topics=self._scope())

    def disarm(self, targets, token, selection):
        for bus in selection:
            bus.faults.disarm(token)


@dataclasses.dataclass(frozen=True)
class TopicPartition(MessageFault):
    """Bus topics stop delivering for the window; healing drains them.

    Redelivery timers keep firing during the partition but re-queued
    messages stay parked, so a long partition can exhaust a message's
    redelivery budget — exactly the at-least-once-then-give-up semantics
    the dead-letter path exists for.
    """

    kind: typing.ClassVar[str] = "topic_partition"

    def arm(self, targets, token, selection):
        for bus in selection:
            bus.faults.set_partition(token, topics=self._scope())

    def disarm(self, targets, token, selection):
        for bus in selection:
            bus.faults.disarm(token)


SPEC_KINDS: dict[str, type[FaultSpec]] = {
    spec.kind: spec
    for spec in (
        HostFlap,
        AgentDegrade,
        DbSlowdown,
        DatastoreOutage,
        CopyFlakiness,
        ShardCrash,
        ServerCrash,
        MessageDrop,
        MessageDuplicate,
        MessageDelay,
        MessageReorder,
        TopicPartition,
    )
}


class FaultSchedule:
    """An ordered set of fault windows driven by one injector run."""

    def __init__(self, specs: typing.Iterable[FaultSpec] = ()) -> None:
        self._specs: list[FaultSpec] = []
        for spec in specs:
            self.add(spec)

    def add(self, spec: FaultSpec) -> "FaultSchedule":
        if not isinstance(spec, FaultSpec):
            raise TypeError(f"expected a FaultSpec, got {type(spec).__name__}")
        self._specs.append(spec)
        return self

    @property
    def specs(self) -> list[FaultSpec]:
        return list(self._specs)

    @property
    def horizon_s(self) -> float:
        """Time by which every window has been disarmed."""
        return max((spec.end_s for spec in self._specs), default=0.0)

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> typing.Iterator[FaultSpec]:
        return iter(self._specs)

    # -- (de)serialization -------------------------------------------------

    @classmethod
    def from_dicts(cls, entries: typing.Sequence[dict]) -> "FaultSchedule":
        """Build a schedule from ``[{"kind": ..., **fields}, ...]`` entries."""
        schedule = cls()
        for entry in entries:
            fields = dict(entry)
            kind = fields.pop("kind", None)
            if kind not in SPEC_KINDS:
                raise ValueError(
                    f"unknown fault kind {kind!r}; known: {sorted(SPEC_KINDS)}"
                )
            spec_cls = SPEC_KINDS[kind]
            for name in ("hosts", "datastores", "shards", "topics"):
                if name in fields:
                    fields[name] = tuple(fields[name])
            schedule.add(spec_cls(**fields))
        return schedule

    def to_dicts(self) -> list[dict]:
        out = []
        for spec in self._specs:
            entry = dataclasses.asdict(spec)
            entry["kind"] = spec.kind
            out.append(entry)
        return out

    def ground_truth(self) -> GroundTruthManifest:
        """The *planned* injection oracle: one window per spec.

        Targets are the requested names; random picks stay unresolved
        (empty tuples) — use
        :meth:`~repro.faults.injector.FaultInjector.ground_truth` for the
        names actually drawn at arm time.
        """
        return GroundTruthManifest(window_from_spec(spec) for spec in self._specs)


def standard_fault_schedule(duration_s: float, scale: float = 1.0) -> FaultSchedule:
    """The R-X3 reference schedule, phased across ``duration_s``.

    Three overlapping stress phases: an early host-flap window, a long
    agent degradation running to near the end of the window (the
    expensive one: latency inflation turns calls into timeout storms, and
    slow/dropped calls back up behind the degraded agents' op slots), and
    a late database slowdown, plus copy flakiness covering the middle of
    the degradation. ``scale`` widens the blast radius (host counts and
    rates) for harsher ablations.
    """
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    count = max(1, round(2 * scale))
    return FaultSchedule(
        [
            HostFlap(
                start_s=0.10 * duration_s, duration_s=0.20 * duration_s, count=count
            ),
            AgentDegrade(
                start_s=0.25 * duration_s,
                duration_s=0.70 * duration_s,
                count=max(1, round(3 * scale)),
                latency_factor=12.0 * scale,
                drop_rate=min(0.9, 0.45 * scale),
            ),
            DbSlowdown(
                start_s=0.55 * duration_s, duration_s=0.20 * duration_s, factor=3.0
            ),
            CopyFlakiness(
                start_s=0.30 * duration_s,
                duration_s=0.30 * duration_s,
                fail_rate=min(0.9, 0.30 * scale),
            ),
            DatastoreOutage(
                start_s=0.45 * duration_s, duration_s=0.10 * duration_s, count=1
            ),
        ]
    )


def random_fault_schedule(
    rng: random.Random,
    duration_s: float,
    max_specs: int = 6,
) -> FaultSchedule:
    """A randomized schedule for property tests: any mix of fault kinds,
    windows anywhere in ``[0, duration_s)``, always bounded.

    Message-fault kinds target mediated buses only; on direct-call rigs
    they arm as no-ops, so the same schedule runs on either topology.
    """
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    schedule = FaultSchedule()
    for _ in range(rng.randint(1, max_specs)):
        start = rng.uniform(0.0, duration_s * 0.8)
        duration = rng.uniform(duration_s * 0.05, duration_s * 0.5)
        kind = rng.choice(
            ["host_flap", "agent_degrade", "db_slowdown", "copy_flakiness",
             "datastore_outage", "shard_crash", "server_crash",
             "message_drop", "message_duplicate", "message_delay",
             "message_reorder", "topic_partition"]
        )
        if kind == "host_flap":
            schedule.add(HostFlap(start, duration, count=rng.randint(1, 3)))
        elif kind == "agent_degrade":
            schedule.add(
                AgentDegrade(
                    start,
                    duration,
                    count=rng.randint(1, 3),
                    latency_factor=rng.uniform(2.0, 20.0),
                    drop_rate=rng.uniform(0.1, 0.8),
                )
            )
        elif kind == "db_slowdown":
            schedule.add(DbSlowdown(start, duration, factor=rng.uniform(1.5, 6.0)))
        elif kind == "copy_flakiness":
            schedule.add(CopyFlakiness(start, duration, fail_rate=rng.uniform(0.1, 0.9)))
        elif kind == "datastore_outage":
            schedule.add(DatastoreOutage(start, duration, count=1))
        elif kind == "shard_crash":
            schedule.add(ShardCrash(start, duration, count=1))
        elif kind == "server_crash":
            schedule.add(ServerCrash(start, duration, count=1))
        elif kind == "message_drop":
            schedule.add(MessageDrop(start, duration, rate=rng.uniform(0.1, 0.6)))
        elif kind == "message_duplicate":
            schedule.add(MessageDuplicate(start, duration, rate=rng.uniform(0.1, 0.5)))
        elif kind == "message_delay":
            schedule.add(MessageDelay(start, duration, delay_s=rng.uniform(0.5, 5.0)))
        elif kind == "message_reorder":
            schedule.add(MessageReorder(start, duration, rate=rng.uniform(0.2, 0.8)))
        else:
            schedule.add(TopicPartition(start, duration))
    return schedule
