"""Fault taxonomy: the exception contract between injection and resilience.

Resilience machinery (retries, circuit breakers) must distinguish
*transient* failures — the kind a retry can plausibly mask — from
programming errors and permanent conditions. Every modeled fault raised
by an injection hook derives from :class:`TransientError`; retry policies
default to retrying exactly that set.
"""

from __future__ import annotations


class TransientError(Exception):
    """A modeled, possibly-transient infrastructure failure.

    Host-agent faults, injected copy failures, and shard outages all
    derive from this; :class:`~repro.controlplane.resilience.RetryPolicy`
    retries these by default and nothing else.
    """


class InjectedFault(TransientError):
    """Generic fault raised by a :class:`~repro.faults.hooks.FaultHook`."""


class ShardUnavailable(TransientError):
    """A management-server shard is down; submissions to it fail."""


class ServerCrashed(TransientError):
    """The management server itself crashed.

    Raised into in-flight task processes when a
    :class:`~repro.faults.schedule.ServerCrash` window arms, and by
    :meth:`~repro.controlplane.server.ManagementServer.submit` while the
    server is down. Transient: the server restarts after its downtime, so
    callers (the cloud director, storm workers) may retry — the recovery
    manager guarantees a retried submission never duplicates work that
    the journal already accounts for.
    """


class MessageLost(TransientError):
    """The message bus gave up on a message.

    Raised into the publisher's reply when a message exhausts its
    redelivery budget (repeatedly dropped in transit), is shed by a
    bounded queue's overflow policy, or dead-lettered on arrival at a
    full queue. Transient: the send itself may be retried — consumers
    deduplicate by idempotency key, so a retried send never re-executes
    work a late copy already performed.
    """
