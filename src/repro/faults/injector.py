"""The fault injector: a simulator process that drives a schedule.

:class:`FaultTargets` is the facade between declarative
:class:`~repro.faults.schedule.FaultSpec`\\ s and live infrastructure: it
resolves names to hosts/datastores/servers, hands out the right
:class:`~repro.faults.hooks.FaultHook` for each injection point, and
owns host flap bookkeeping (depth-counted so overlapping flap windows
restore the original state exactly once).

:class:`FaultInjector` spawns one simulator process per fault window;
each sleeps until ``start_s``, resolves its targets, arms them under a
unique token, sleeps for ``duration_s``, and disarms. The injector
records a timeline of arm/disarm events and exposes ``drain()`` so
experiments can wait for every window to close.

This module deliberately imports nothing from ``repro.controlplane`` /
``repro.storage`` / ``repro.cloud`` at runtime (those packages import
``repro.faults``); it only duck-types against their public attributes.
"""

from __future__ import annotations

import dataclasses
import random
import typing

from repro.datacenter.entities import Datastore, Host, HostState
from repro.faults.manifest import (
    GroundTruthManifest,
    GroundTruthWindow,
    window_from_spec,
)
from repro.faults.schedule import FaultSchedule, FaultSpec

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.controlplane.server import ManagementServer
    from repro.faults.hooks import FaultHook
    from repro.sim.kernel import Process, Simulator
    from repro.sim.stats import MetricsRegistry


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One arm/disarm transition in the injector timeline."""

    at_s: float
    action: str  # "arm" | "disarm"
    description: str


class FaultTargets:
    """Resolves fault specs against live servers, hosts, and datastores."""

    def __init__(
        self,
        servers: typing.Sequence["ManagementServer"],
        hosts: typing.Sequence[Host] | None = None,
        datastores: typing.Sequence[Datastore] | None = None,
        buses: typing.Sequence | None = None,
    ) -> None:
        self.servers: list["ManagementServer"] = list(servers)
        # Buses not owned by any target server — e.g. the federation bus,
        # which lives on the FederatedCloud while its shards run direct.
        self._extra_buses: list = list(buses) if buses else []
        if not self.servers:
            raise ValueError("FaultTargets needs at least one management server")
        if hosts is None:
            hosts = [host for server in self.servers for host in server.hosts]
        self.hosts: list[Host] = list(hosts)
        if datastores is None:
            seen: dict[str, Datastore] = {}
            for server in self.servers:
                for datastore in server.datastores():
                    seen.setdefault(datastore.entity_id, datastore)
            datastores = list(seen.values())
        self.datastores: list[Datastore] = list(datastores)
        # flap bookkeeping: overlapping windows restore state exactly once
        self._flap_depth: dict[str, int] = {}
        self._flap_saved: dict[str, HostState] = {}

    @classmethod
    def for_server(cls, server: "ManagementServer") -> "FaultTargets":
        return cls([server])

    @classmethod
    def for_shards(cls, plane) -> "FaultTargets":
        """Build targets from a ``ShardedControlPlane``-shaped object."""
        return cls(list(plane.shards))

    @classmethod
    def for_federation(cls, cloud) -> "FaultTargets":
        """Targets for a ``FederatedCloud``: every shard plus the federation bus."""
        bus = getattr(cloud, "bus", None)
        buses = [bus] if bus is not None and getattr(bus, "mediated", False) else None
        return cls(list(cloud.plane.shards), buses=buses)

    # -- selection ---------------------------------------------------------

    @staticmethod
    def _pick(pool: list, names: tuple[str, ...], count: int, rng: random.Random, what: str) -> list:
        if names:
            by_name = {item.name: item for item in pool}
            missing = [name for name in names if name not in by_name]
            if missing:
                raise KeyError(f"unknown {what}(s): {missing}")
            return [by_name[name] for name in names]
        ordered = sorted(pool, key=lambda item: item.name)
        if count >= len(ordered):
            return ordered
        return rng.sample(ordered, count)

    def pick_hosts(self, names: tuple[str, ...], count: int, rng: random.Random) -> list[Host]:
        return self._pick(self.hosts, names, count, rng, "host")

    def pick_datastores(
        self, names: tuple[str, ...], count: int, rng: random.Random
    ) -> list[Datastore]:
        return self._pick(self.datastores, names, count, rng, "datastore")

    def pick_servers(
        self, names: tuple[str, ...], count: int, rng: random.Random
    ) -> list["ManagementServer"]:
        return self._pick(self.servers, names, count, rng, "server")

    # -- hook lookup -------------------------------------------------------

    def server_for_host(self, host: Host) -> "ManagementServer":
        for server in self.servers:
            try:
                server.agent(host)
            except KeyError:
                continue
            return server
        raise KeyError(f"host {host.name!r} not managed by any target server")

    def agent_hook(self, host: Host) -> "FaultHook":
        return self.server_for_host(host).agent(host).faults

    def database_hooks(self) -> list["FaultHook"]:
        return [server.database.faults for server in self.servers]

    def copy_hooks(self) -> list["FaultHook"]:
        return [server.copy_engine.faults for server in self.servers]

    def buses(self) -> list:
        """Mediated message buses across the target servers.

        Duck-typed (``bus.mediated``) to keep this module free of
        ``repro.controlplane`` imports; direct-call rigs yield an empty
        list, so message-fault specs arm as no-ops there.
        """
        out = list(self._extra_buses)
        for server in self.servers:
            bus = getattr(server, "bus", None)
            if bus is not None and getattr(bus, "mediated", False) and bus not in out:
                out.append(bus)
        return out

    # -- host flaps --------------------------------------------------------

    def flap_down(self, host: Host) -> None:
        depth = self._flap_depth.get(host.entity_id, 0)
        if depth == 0:
            self._flap_saved[host.entity_id] = host.state
            host.state = HostState.DISCONNECTED
        self._flap_depth[host.entity_id] = depth + 1

    def flap_up(self, host: Host) -> None:
        depth = self._flap_depth.get(host.entity_id, 0)
        if depth <= 0:
            raise RuntimeError(f"flap_up without flap_down on {host.name}")
        if depth == 1:
            host.state = self._flap_saved.pop(host.entity_id)
            del self._flap_depth[host.entity_id]
        else:
            self._flap_depth[host.entity_id] = depth - 1

    @property
    def flapped_hosts(self) -> int:
        return len(self._flap_depth)


class FaultInjector:
    """Drives a :class:`FaultSchedule` against :class:`FaultTargets`."""

    def __init__(
        self,
        sim: "Simulator",
        targets: FaultTargets,
        schedule: FaultSchedule,
        rng: random.Random | None = None,
        metrics: "MetricsRegistry | None" = None,
        name: str = "faults",
    ) -> None:
        from repro.sim.stats import MetricsRegistry

        self.sim = sim
        self.targets = targets
        self.schedule = schedule
        self.rng = rng or random.Random(0x5EED)
        self.metrics = metrics or MetricsRegistry(sim, prefix=name)
        self.name = name
        self.events: list[FaultEvent] = []
        self.processes: list["Process"] = []
        self.active = 0
        self._started = False
        self._injected: list[GroundTruthWindow] = []

    def start(self) -> "FaultInjector":
        """Spawn one driver process per fault window."""
        if self._started:
            raise RuntimeError("fault injector already started")
        self._started = True
        for index, spec in enumerate(self.schedule):
            self.processes.append(
                self.sim.spawn(
                    self._drive(index, spec), name=f"{self.name}:{spec.kind}:{index}"
                )
            )
        return self

    def _drive(self, index: int, spec: FaultSpec) -> typing.Generator:
        if spec.start_s > self.sim.now:
            yield self.sim.timeout(spec.start_s - self.sim.now)
        selection = spec.select(self.targets, self.rng)
        token = (self.name, index)
        description = spec.describe(selection)
        spec.arm(self.targets, token, selection)
        self.active += 1
        self.metrics.counter("windows_armed").add()
        self.metrics.gauge("active_windows").set(self.active)
        self.events.append(FaultEvent(self.sim.now, "arm", description))
        # Ground truth is recorded as *resolved*: actual arm instant and
        # the target names drawn from the live infrastructure.
        window_index = len(self._injected)
        self._injected.append(
            window_from_spec(
                spec,
                start_s=self.sim.now,
                end_s=self.sim.now + spec.duration_s,
                targets=[
                    item.name if hasattr(item, "name") else type(item).__name__
                    for item in selection
                ],
            )
        )
        try:
            yield self.sim.timeout(spec.duration_s)
        finally:
            spec.disarm(self.targets, token, selection)
            self.active -= 1
            self.metrics.gauge("active_windows").set(self.active)
            self.events.append(FaultEvent(self.sim.now, "disarm", description))
            self._injected[window_index] = dataclasses.replace(
                self._injected[window_index], end_s=self.sim.now
            )

    def drain(self) -> typing.Generator:
        """Process-style: wait until every fault window has closed."""
        from repro.sim.events import AllOf

        if self.processes:
            yield AllOf(self.sim, list(self.processes))

    def ground_truth(self) -> GroundTruthManifest:
        """The *resolved* injection oracle: windows as actually armed.

        Each entry carries the real arm instant, the target names drawn
        from the live infrastructure, and (once the window closed) the
        actual disarm instant. Windows still armed when the run stops keep
        their planned end.
        """
        return GroundTruthManifest(self._injected)

    def timeline(self) -> list[str]:
        """Human-readable arm/disarm log, for the CLI demo."""
        return [
            f"t={event.at_s:9.2f}s  {event.action:<6}  {event.description}"
            for event in self.events
        ]
