"""Chaos sweeps: randomized faults vs the exactly-once invariant.

The recovery subsystem's contract (``docs/recovery.md``) is that a
management-server crash at *any* point in *any* workload leaves every
admitted task in exactly one terminal state — succeeded or failed/dead-
lettered — with no duplicate terminal records, no duplicate dead letters,
and no duplicate provisioned VMs. A claim like that is only worth what
its adversary costs, so this module sweeps randomized crash points
(timing, downtime, workload seed) and asserts the invariant after every
run.

The message bus (``docs/bus.md``) extends the contract to the transport:
with every control-plane hop bus-mediated, dropped / duplicated /
delayed / reordered / partitioned messages must not lose or duplicate a
terminal task state either. ``run_message_fault_point`` /
``message_fault_sweep`` are the crash-sweep analogues for that layer.

Used three ways:

- ``tests/faults/test_crash_sweep.py`` and
  ``tests/faults/test_message_chaos.py`` — bounded sweeps in tier-1;
- CI's chaos job — larger fixed-seed sweeps;
- ``python -m repro.faults.chaos --seeds 20 --points 10`` (add
  ``--mode message`` for the bus sweep) — the full acceptance sweeps
  (200 points each).
"""

from __future__ import annotations

import dataclasses
import random
import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.controlplane.server import ManagementServer


def check_exactly_once(server: "ManagementServer") -> list[str]:
    """Every violation of the exactly-once invariant, as human-readable strings.

    Checks, in order: no task stranded mid-lifecycle; every journaled
    admit has exactly one journaled terminal record; at most one dead
    letter per task; every dead letter maps to a task that ended ERROR;
    and no VM name is placed twice (a re-issued clone must never
    materialize its VM twice).
    """
    violations: list[str] = []
    tasks = server.tasks
    for task in tasks.unaccounted():
        violations.append(
            f"task-{task.task_id} ({task.op_type}) stranded in {task.state.value}"
        )
    journal = server.journal
    terminal_counts = journal.terminal_counts()
    for task_id in journal.open_task_ids():
        violations.append(f"task-{task_id} admitted but never reached a terminal state")
    for task_id, count in sorted(terminal_counts.items()):
        if count != 1:
            violations.append(f"task-{task_id} has {count} terminal records")
        if journal.enabled and not journal.admitted(task_id):
            violations.append(f"task-{task_id} reached a terminal state unadmitted")
    dead_seen: dict[int, int] = {}
    for letter in tasks.dead_letters:
        dead_seen[letter.task_id] = dead_seen.get(letter.task_id, 0) + 1
    failed_ids = {task.task_id for task in tasks.failed()}
    for task_id, count in sorted(dead_seen.items()):
        if count > 1:
            violations.append(f"task-{task_id} dead-lettered {count} times")
        if task_id not in failed_ids:
            violations.append(f"task-{task_id} dead-lettered but not in ERROR state")
    # Ground truth: a clone's target name is its idempotency key, so two
    # live placed VMs sharing a name means a re-issue duplicated work.
    from repro.datacenter.vm import VirtualMachine

    placed_names: dict[str, int] = {}
    for vm in server.inventory.all(VirtualMachine):
        if vm.host is not None and not vm.is_template:
            placed_names[vm.name] = placed_names.get(vm.name, 0) + 1
    for name, count in sorted(placed_names.items()):
        if count > 1:
            violations.append(f"VM name {name!r} placed {count} times")
    return violations


@dataclasses.dataclass
class CrashPointResult:
    """Outcome of one storm run with one crash window."""

    seed: int
    crash_at_s: float | None
    downtime_s: float
    completed: int
    failed: int
    dead_letters: int
    parked: int
    adopted: int
    reissued: int
    requeued: int
    makespan_s: float
    violations: list[str]
    # Time from the crash until the last pre-crash task reached a terminal
    # state (0.0 when the crash landed after the backlog drained, or for a
    # no-crash baseline run).
    mttr_s: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations


def run_crash_point(
    seed: int,
    crash_at_s: float | None,
    downtime_s: float,
    total: int = 12,
    concurrency: int = 4,
    linked: bool = True,
) -> CrashPointResult:
    """One closed-loop clone storm with a server crash at ``crash_at_s``.

    Runs with the journal on and a retrying storm configuration, drains
    the fault window, asserts quiescence, and returns the run's stats
    plus any invariant violations. ``crash_at_s=None`` runs the identical
    storm with no crash — the baseline R-X4 measures recovery against.
    """
    from repro.controlplane.costs import ControlPlaneConfig
    from repro.controlplane.resilience import RetryPolicy
    from repro.core.experiments import StormRig
    from repro.faults.injector import FaultInjector, FaultTargets
    from repro.faults.schedule import FaultSchedule, ServerCrash

    # max_inflight below the worker concurrency keeps the dispatch queue
    # occupied, so crashes also land on tasks parked at the dispatch wait
    # (the requeue reconciliation path), not just mid-attempt.
    config = ControlPlaneConfig(
        max_inflight_tasks=max(1, concurrency - 1),
        retry_policy=RetryPolicy(
            max_attempts=4, base_backoff_s=1.0, max_backoff_s=10.0, jitter=0.5
        ),
    )
    rig = StormRig(seed=seed, hosts=8, datastores=2, config=config, journal=True)
    injector = None
    if crash_at_s is not None:
        schedule = FaultSchedule(
            [ServerCrash(start_s=crash_at_s, duration_s=downtime_s, count=1)]
        )
        injector = FaultInjector(
            rig.sim,
            FaultTargets.for_server(rig.server),
            schedule,
            rng=rig.streams.stream("chaos-injector"),
        ).start()
    summary = rig.closed_loop_storm(total=total, concurrency=concurrency, linked=linked)
    if injector is not None:
        drain = rig.sim.spawn(injector.drain(), name="chaos-drain")
        rig.sim.run(until=drain)
    rig.sim.run()
    if rig.sim.peek() != float("inf"):
        raise RuntimeError("simulation did not quiesce after the crash sweep run")
    recovery = rig.server.recovery
    totals = recovery.verdict_totals()
    mttr = 0.0
    if recovery.crashes:
        crashed_at = recovery.crashes[0].crashed_at
        affected = [
            task.finished_at
            for task in rig.server.tasks.tasks
            if task.submitted_at <= crashed_at
            and task.finished_at is not None
            and task.finished_at > crashed_at
        ]
        if affected:
            mttr = max(affected) - crashed_at
    return CrashPointResult(
        seed=seed,
        crash_at_s=crash_at_s,
        downtime_s=downtime_s if crash_at_s is not None else 0.0,
        completed=len(rig.server.tasks.succeeded()),
        failed=len(rig.server.tasks.failed()),
        dead_letters=len(rig.server.tasks.dead_letters),
        parked=sum(epoch.parked for epoch in recovery.crashes),
        adopted=totals["adopted"],
        reissued=totals["reissued"],
        requeued=totals["requeued"],
        makespan_s=summary["makespan_s"],
        violations=check_exactly_once(rig.server),
        mttr_s=mttr,
    )


def crash_sweep(
    seeds: typing.Iterable[int],
    points_per_seed: int = 10,
    rng: random.Random | None = None,
    max_crash_at_s: float = 240.0,
    downtimes_s: tuple[float, ...] = (5.0, 30.0, 120.0),
    total: int = 12,
    concurrency: int = 4,
) -> list[CrashPointResult]:
    """Randomized crash points across seeds; returns every run's result.

    Crash timing is drawn uniformly — covering admission, dispatch wait,
    mid-attempt, and post-storm idle — scaled to the storm flavour
    (linked storms finish in tens of seconds, full-copy storms in
    hundreds; ``max_crash_at_s`` bounds the full-copy draw). Downtime
    cycles through ``downtimes_s``. The draw stream is separate from the
    workload seeds so adding sweep points never perturbs the workloads.
    """
    rng = rng or random.Random(0xC4A5)
    results: list[CrashPointResult] = []
    for seed in seeds:
        for point in range(points_per_seed):
            linked = point % 2 == 0
            horizon = 45.0 if linked else max_crash_at_s
            crash_at = rng.uniform(1.0, horizon)
            downtime = downtimes_s[point % len(downtimes_s)]
            results.append(
                run_crash_point(
                    seed,
                    crash_at,
                    downtime,
                    total=total,
                    concurrency=concurrency,
                    linked=linked,
                )
            )
    return results


MESSAGE_FAULT_KINDS = ("drop", "duplicate", "delay", "reorder", "partition")


@dataclasses.dataclass
class MessageFaultResult:
    """Outcome of one bus-mediated storm run with one message-fault window."""

    seed: int
    kind: str
    intensity: float
    fault_at_s: float
    fault_duration_s: float
    completed: int
    failed: int
    dead_letters: int
    published: int
    delivered: int
    redelivered: int
    deduped: int
    dropped: int
    makespan_s: float
    mean_queue_wait_s: float
    violations: list[str]

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def goodput_per_hour(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return self.completed * 3600.0 / self.makespan_s


def _message_spec(kind: str, intensity: float, start_s: float, duration_s: float):
    """Build the MessageFault spec for one sweep point."""
    from repro.faults.schedule import (
        MessageDelay,
        MessageDrop,
        MessageDuplicate,
        MessageReorder,
        TopicPartition,
    )

    if kind == "drop":
        return MessageDrop(start_s, duration_s, rate=intensity)
    if kind == "duplicate":
        return MessageDuplicate(start_s, duration_s, rate=intensity)
    if kind == "delay":
        return MessageDelay(start_s, duration_s, delay_s=intensity)
    if kind == "reorder":
        return MessageReorder(start_s, duration_s, rate=intensity)
    if kind == "partition":
        return TopicPartition(start_s, duration_s)
    raise ValueError(f"unknown message fault kind {kind!r}; known: {MESSAGE_FAULT_KINDS}")


def run_message_fault_point(
    seed: int,
    kind: str | None,
    intensity: float,
    fault_at_s: float = 5.0,
    fault_duration_s: float = 30.0,
    total: int = 12,
    concurrency: int = 4,
    linked: bool = True,
    crash_at_s: float | None = None,
    downtime_s: float = 30.0,
) -> MessageFaultResult:
    """One bus-mediated clone storm with one message-fault window.

    Every hop (gateway→director, director→task-manager, task-manager→
    host-agent) rides the bus (``direct_calls=False``) with the journal
    on, so at-least-once redelivery and idempotency-key dedup are both in
    play. ``kind=None`` runs the no-fault bus baseline. ``crash_at_s``
    optionally overlays a :class:`~repro.faults.ServerCrash` restart
    window — the R-X5 restart-storm cells compose both fault layers.
    """
    from repro.controlplane.costs import ControlPlaneConfig
    from repro.controlplane.resilience import RetryPolicy
    from repro.core.experiments import StormRig
    from repro.faults.injector import FaultInjector, FaultTargets
    from repro.faults.schedule import FaultSchedule, ServerCrash

    config = ControlPlaneConfig(
        max_inflight_tasks=max(1, concurrency - 1),
        retry_policy=RetryPolicy(
            max_attempts=4, base_backoff_s=1.0, max_backoff_s=10.0, jitter=0.5
        ),
    )
    rig = StormRig(
        seed=seed,
        hosts=8,
        datastores=2,
        config=config,
        journal=True,
        bus=True,
        direct_calls=False,
    )
    specs = []
    if kind is not None:
        specs.append(_message_spec(kind, intensity, fault_at_s, fault_duration_s))
    if crash_at_s is not None:
        specs.append(ServerCrash(start_s=crash_at_s, duration_s=downtime_s, count=1))
    injector = None
    if specs:
        injector = FaultInjector(
            rig.sim,
            FaultTargets.for_server(rig.server),
            FaultSchedule(specs),
            rng=rig.streams.stream("chaos-injector"),
        ).start()
    summary = rig.closed_loop_storm(total=total, concurrency=concurrency, linked=linked)
    if injector is not None:
        drain = rig.sim.spawn(injector.drain(), name="chaos-drain")
        rig.sim.run(until=drain)
    rig.sim.run()
    if rig.sim.peek() != float("inf"):
        raise RuntimeError("simulation did not quiesce after the message fault run")
    stats = rig.bus.topic_stats()
    waits = sum(s.waits for s in stats.values())
    total_wait = sum(s.total_wait_s for s in stats.values())
    return MessageFaultResult(
        seed=seed,
        kind=kind or "none",
        intensity=intensity if kind is not None else 0.0,
        fault_at_s=fault_at_s if kind is not None else 0.0,
        fault_duration_s=fault_duration_s if kind is not None else 0.0,
        completed=len(rig.server.tasks.succeeded()),
        failed=len(rig.server.tasks.failed()),
        dead_letters=len(rig.server.tasks.dead_letters),
        published=sum(s.published for s in stats.values()),
        delivered=sum(s.delivered for s in stats.values()),
        redelivered=sum(s.redelivered for s in stats.values()),
        deduped=sum(s.deduped for s in stats.values()),
        dropped=sum(s.dropped for s in stats.values()),
        makespan_s=summary["makespan_s"],
        mean_queue_wait_s=total_wait / waits if waits else 0.0,
        violations=check_exactly_once(rig.server),
    )


def message_fault_sweep(
    seeds: typing.Iterable[int],
    points_per_seed: int = 10,
    rng: random.Random | None = None,
    total: int = 12,
    concurrency: int = 4,
) -> list[MessageFaultResult]:
    """Randomized message faults across seeds; returns every run's result.

    Fault kinds cycle through drop/duplicate/delay/reorder/partition;
    intensities and window timing are drawn from a separate stream so
    adding sweep points never perturbs the workloads. Defaults give the
    R-X5 acceptance shape: 20 seeds x 10 points = 200 fault points.
    """
    rng = rng or random.Random(0xB005)
    results: list[MessageFaultResult] = []
    for seed in seeds:
        for point in range(points_per_seed):
            kind = MESSAGE_FAULT_KINDS[point % len(MESSAGE_FAULT_KINDS)]
            if kind == "drop":
                intensity = rng.uniform(0.1, 0.6)
            elif kind == "duplicate":
                intensity = rng.uniform(0.1, 0.5)
            elif kind == "delay":
                intensity = rng.uniform(0.5, 5.0)
            elif kind == "reorder":
                intensity = rng.uniform(0.2, 0.8)
            else:
                intensity = 0.0
            fault_at = rng.uniform(1.0, 40.0)
            duration = rng.uniform(10.0, 60.0)
            results.append(
                run_message_fault_point(
                    seed,
                    kind,
                    intensity,
                    fault_at_s=fault_at,
                    fault_duration_s=duration,
                    total=total,
                    concurrency=concurrency,
                    linked=True,
                )
            )
    return results


def check_federation_exactly_once(cloud) -> list[str]:
    """Exactly-once across shard boundaries, as human-readable strings.

    Extends :func:`check_exactly_once` to a ``FederatedCloud``: every
    shard passes its own check; no VM name materializes on more than one
    shard (a submission that was stolen or forwarded must execute on
    exactly one survivor); every federation topic drains; and every
    bus-routed submission's reply settled — no tenant deploy silently
    lost between shards.
    """
    from repro.datacenter.vm import VirtualMachine

    violations: list[str] = []
    for shard in cloud.plane.shards:
        violations.extend(f"{shard.name}: {v}" for v in check_exactly_once(shard))
    placed: dict[str, list[str]] = {}
    for shard in cloud.plane.shards:
        for vm in shard.inventory.all(VirtualMachine):
            if vm.host is not None and not vm.is_template:
                placed.setdefault(vm.name, []).append(shard.name)
    for name, owners in sorted(placed.items()):
        if len(owners) > 1:
            violations.append(
                f"VM name {name!r} placed on {len(owners)} shards ({', '.join(owners)})"
            )
    bus = getattr(cloud, "bus", None)
    if bus is not None and getattr(bus, "mediated", False):
        for topic, depth in bus.depths().items():
            if depth:
                violations.append(f"topic {topic} left {depth} undelivered messages")
    for key in cloud.unresolved_submissions():
        violations.append(f"submission {key} never settled (lost across shards)")
    return violations


@dataclasses.dataclass
class FederationFaultResult:
    """Outcome of one skewed federated storm with one fault window."""

    seed: int
    kind: str
    intensity: float
    crash_kind: str
    crash_at_s: float | None
    downtime_s: float
    affinity_only: bool
    completed: int
    failed: int
    dead_letters: int
    steals: int
    spills: int
    reroutes: int
    remote_completions: int
    p95_latency_s: float
    makespan_s: float
    violations: list[str]
    per_shard: list[dict] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def goodput_per_hour(self) -> float:
        if self.makespan_s <= 0:
            return 0.0
        return self.completed * 3600.0 / self.makespan_s


def run_federation_fault_point(
    seed: int,
    kind: str | None = None,
    intensity: float = 0.0,
    fault_at_s: float = 5.0,
    fault_duration_s: float = 30.0,
    total: int = 24,
    concurrency: int = 8,
    shards: int = 3,
    hosts_per_shard: int = 4,
    orgs: int = 9,
    skew: float = 0.8,
    crash_at_s: float | None = None,
    downtime_s: float = 30.0,
    crash_kind: str = "server_crash",
    affinity_only: bool = False,
    spill_queue_depth: int = 4,
    telemetry=None,
) -> FederationFaultResult:
    """One skewed multi-tenant deploy storm over a shard federation.

    ``skew`` is the fraction of deploys driven through orgs homed on
    shard 0 (the hot shard); ``crash_at_s`` optionally crashes that shard
    mid-run (``crash_kind``: ``server_crash`` takes the process down and
    replays its journal on restart, ``shard_crash`` leaves it up but
    rejecting). ``kind`` optionally overlays one R-X5 message fault
    (drop/duplicate/delay/reorder/partition) on the federation topics.
    With ``affinity_only=True`` the same storm runs through the classic
    org-pinned router — the baseline R-X8 compares against. Max-inflight
    is held just below the worker concurrency so saturation spillover is
    actually exercised.
    """
    from repro.cloud.federation import FederatedCloud
    from repro.cloud.tenancy import Organization
    from repro.controlplane.bus import MessageBus
    from repro.controlplane.costs import ControlPlaneConfig
    from repro.controlplane.resilience import RetryPolicy
    from repro.faults.injector import FaultInjector, FaultTargets
    from repro.faults.schedule import FaultSchedule, ServerCrash, ShardCrash
    from repro.sim.events import AllOf
    from repro.sim.kernel import Simulator
    from repro.sim.random import RandomStreams

    if crash_kind not in ("server_crash", "shard_crash"):
        raise ValueError(f"unknown crash kind {crash_kind!r}")
    sim = Simulator()
    streams = RandomStreams(seed)
    # Max-inflight well below the worker concurrency: the hot shard's
    # dispatch queue visibly backs up under skew, which is what the
    # spillover threshold (and the hot_shard triage signature) keys on.
    config = ControlPlaneConfig(
        max_inflight_tasks=max(1, concurrency // 2),
        retry_policy=RetryPolicy(
            max_attempts=4, base_backoff_s=1.0, max_backoff_s=10.0, jitter=0.5
        ),
    )
    bus = None
    if not affinity_only:
        bus = MessageBus(sim, rng=streams.stream("fed-bus"), direct_calls=False)
    cloud = FederatedCloud(
        sim,
        streams,
        shard_count=shards,
        hosts_per_shard=hosts_per_shard,
        config=config,
        bus=bus,
        affinity_only=affinity_only,
        journal=True,
        telemetry=telemetry,
        spill_queue_depth=spill_queue_depth,
    )
    org_objs = [
        Organization(f"org{i}", quota_vms=1_000_000, quota_storage_gb=1e9)
        for i in range(orgs)
    ]
    # Home every org up-front (all shards healthy and idle → pure
    # round-robin, identical in both router modes), then drive ``skew``
    # of the deploys through the orgs homed on shard 0.
    for org in org_objs:
        cloud.director_for(org)
    hot = [org for i, org in enumerate(org_objs) if i % shards == 0]
    cold = [org for i, org in enumerate(org_objs) if i % shards != 0] or hot
    hot_tenths = int(round(skew * 10))
    pending: list[tuple[int, Organization]] = []
    for i in range(total):
        pool = hot if (i % 10) < hot_tenths else cold
        pending.append((i, pool[i % len(pool)]))
    failures: list[str] = []

    def worker():
        while pending:
            index, org = pending.pop(0)
            try:
                yield from cloud.deploy(org, "small-linux-linked", 1, f"fed-{index}")
            except Exception as exc:  # noqa: BLE001 — failed deploys are data here
                failures.append(f"fed-{index}: {type(exc).__name__}")

    specs = []
    if crash_at_s is not None:
        crash_cls = ServerCrash if crash_kind == "server_crash" else ShardCrash
        specs.append(crash_cls(start_s=crash_at_s, duration_s=downtime_s, shards=("vc-1",)))
    if kind is not None:
        specs.append(_message_spec(kind, intensity, fault_at_s, fault_duration_s))
    injector = None
    if specs:
        injector = FaultInjector(
            sim,
            FaultTargets.for_federation(cloud),
            FaultSchedule(specs),
            rng=streams.stream("chaos-injector"),
        ).start()
    workers = [sim.spawn(worker(), name=f"fed-worker-{j}") for j in range(concurrency)]
    sim.run(until=AllOf(sim, workers))
    makespan = sim.now
    if injector is not None:
        sim.run(until=sim.spawn(injector.drain(), name="chaos-drain"))
    sim.run()
    if sim.peek() != float("inf"):
        raise RuntimeError("simulation did not quiesce after the federation fault run")
    completed = sum(
        1
        for director in cloud.directors
        for vapp in director.vapps
        if vapp.state.name == "RUNNING"
    )
    # A failed deploy either raised at the router (``failures``) or came
    # back as a FAILED/PARTIAL vApp; both are goodput losses.
    failed = total - completed
    totals = cloud.federation_totals()
    per_shard = [
        {
            "shard": shard.name,
            "tasks_completed": len(shard.tasks.succeeded()),
            "steals": stats.steals,
            "spills": stats.spills,
            "reroutes": stats.reroutes,
            "remote_completions": stats.remote_completions,
        }
        for shard, stats in zip(cloud.plane.shards, cloud.shard_stats)
    ]
    return FederationFaultResult(
        seed=seed,
        kind=kind or "none",
        intensity=intensity if kind is not None else 0.0,
        crash_kind=crash_kind if crash_at_s is not None else "none",
        crash_at_s=crash_at_s,
        downtime_s=downtime_s if crash_at_s is not None else 0.0,
        affinity_only=affinity_only,
        completed=completed,
        failed=failed,
        dead_letters=cloud.plane.dead_letters(),
        steals=totals["steals"],
        spills=totals["spills"],
        reroutes=totals["reroutes"],
        remote_completions=totals["remote_completions"],
        p95_latency_s=cloud.deploy_latency_p(0.95),
        makespan_s=makespan,
        violations=check_federation_exactly_once(cloud),
        per_shard=per_shard,
    )


def federation_fault_sweep(
    seeds: typing.Iterable[int],
    points_per_seed: int = 7,
    rng: random.Random | None = None,
    total: int = 18,
    concurrency: int = 6,
    shards: int = 3,
) -> list[FederationFaultResult]:
    """Randomized cross-shard fault points; returns every run's result.

    Each seed cycles through a shard-crash point, a server-crash point,
    and the five R-X5 message-fault kinds overlaid on a mid-run crash of
    the hot shard — the full chaos posture re-run on the federation
    topics. Crash timing, downtime, and intensities are drawn from a
    separate stream so adding sweep points never perturbs the workloads.
    """
    rng = rng or random.Random(0xFEDE)
    points = ("shard_crash", "server_crash") + MESSAGE_FAULT_KINDS
    results: list[FederationFaultResult] = []
    for seed in seeds:
        for point in range(points_per_seed):
            label = points[point % len(points)]
            crash_at = rng.uniform(2.0, 30.0)
            downtime = rng.uniform(10.0, 60.0)
            if label in ("shard_crash", "server_crash"):
                kind, intensity = None, 0.0
                crash_kind = label
            else:
                kind = label
                crash_kind = "server_crash" if point % 2 else "shard_crash"
                if kind == "drop":
                    intensity = rng.uniform(0.1, 0.5)
                elif kind == "duplicate":
                    intensity = rng.uniform(0.1, 0.4)
                elif kind == "delay":
                    intensity = rng.uniform(0.5, 4.0)
                elif kind == "reorder":
                    intensity = rng.uniform(0.2, 0.8)
                else:
                    intensity = 0.0
            results.append(
                run_federation_fault_point(
                    seed,
                    kind=kind,
                    intensity=intensity,
                    fault_at_s=rng.uniform(1.0, 20.0),
                    fault_duration_s=rng.uniform(10.0, 40.0),
                    total=total,
                    concurrency=concurrency,
                    shards=shards,
                    crash_at_s=crash_at,
                    downtime_s=downtime,
                    crash_kind=crash_kind,
                )
            )
    return results


def main(argv: typing.Sequence[str] | None = None) -> int:
    """CLI: ``python -m repro.faults.chaos --seeds 20 --points 10``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.faults.chaos",
        description="Sweep randomized faults; assert exactly-once semantics.",
    )
    parser.add_argument(
        "--mode",
        choices=("crash", "message", "federation"),
        default="crash",
        help=(
            "crash: server-crash sweep; message: bus message-fault sweep; "
            "federation: cross-shard crash + message chaos on the federation topics"
        ),
    )
    parser.add_argument("--seeds", type=int, default=20, help="number of workload seeds")
    parser.add_argument("--points", type=int, default=10, help="fault points per seed")
    parser.add_argument("--total", type=int, default=12, help="clones per storm")
    parser.add_argument("--concurrency", type=int, default=4)
    parser.add_argument(
        "--sweep-seed", type=int, default=None, help="seed for fault-point draws"
    )
    args = parser.parse_args(argv)

    if args.mode == "federation":
        sweep_seed = 0xFEDE if args.sweep_seed is None else args.sweep_seed
        results = federation_fault_sweep(
            range(args.seeds),
            points_per_seed=args.points,
            rng=random.Random(sweep_seed),
            total=args.total,
            concurrency=args.concurrency,
        )
        bad = [r for r in results if not r.ok]
        print(
            f"federation sweep: {len(results)} fault points across {args.seeds} seeds — "
            f"{sum(r.completed for r in results)} deploys completed, "
            f"{sum(r.steals for r in results)} stolen, "
            f"{sum(r.spills for r in results)} spilled, "
            f"{sum(r.reroutes for r in results)} rerouted, "
            f"{sum(r.dead_letters for r in results)} dead-lettered"
        )
        if bad:
            for result in bad:
                print(
                    f"FAIL seed={result.seed} kind={result.kind} "
                    f"crash={result.crash_kind}@{result.crash_at_s:.1f}s:"
                )
                for violation in result.violations:
                    print(f"  - {violation}")
            print(f"{len(bad)}/{len(results)} fault points violated cross-shard exactly-once")
            return 1
        print("cross-shard exactly-once invariant held at every fault point")
        return 0

    if args.mode == "message":
        sweep_seed = 0xB005 if args.sweep_seed is None else args.sweep_seed
        results = message_fault_sweep(
            range(args.seeds),
            points_per_seed=args.points,
            rng=random.Random(sweep_seed),
            total=args.total,
            concurrency=args.concurrency,
        )
        bad = [r for r in results if not r.ok]
        print(
            f"message sweep: {len(results)} fault points across {args.seeds} seeds — "
            f"{sum(r.published for r in results)} published, "
            f"{sum(r.redelivered for r in results)} redelivered, "
            f"{sum(r.deduped for r in results)} deduped, "
            f"{sum(r.dropped for r in results)} dropped in transit, "
            f"{sum(r.dead_letters for r in results)} dead-lettered"
        )
        if bad:
            for result in bad:
                print(
                    f"FAIL seed={result.seed} kind={result.kind} "
                    f"intensity={result.intensity:.2f} at={result.fault_at_s:.1f}s:"
                )
                for violation in result.violations:
                    print(f"  - {violation}")
            print(f"{len(bad)}/{len(results)} fault points violated exactly-once")
            return 1
        print("exactly-once invariant held at every message-fault point")
        return 0

    sweep_seed = 0xC4A5 if args.sweep_seed is None else args.sweep_seed
    results = crash_sweep(
        range(args.seeds),
        points_per_seed=args.points,
        rng=random.Random(sweep_seed),
        total=args.total,
        concurrency=args.concurrency,
    )
    bad = [r for r in results if not r.ok]
    parked = sum(r.parked for r in results)
    adopted = sum(r.adopted for r in results)
    reissued = sum(r.reissued for r in results)
    requeued = sum(r.requeued for r in results)
    print(
        f"crash sweep: {len(results)} crash points across {args.seeds} seeds — "
        f"{parked} parked, {adopted} adopted, {reissued} reissued, "
        f"{requeued} requeued, {sum(r.dead_letters for r in results)} dead-lettered"
    )
    if bad:
        for result in bad:
            print(
                f"FAIL seed={result.seed} crash_at={result.crash_at_s:.1f}s "
                f"downtime={result.downtime_s:.0f}s:"
            )
            for violation in result.violations:
                print(f"  - {violation}")
        print(f"{len(bad)}/{len(results)} crash points violated exactly-once")
        return 1
    print("exactly-once invariant held at every crash point")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
