"""Machine-readable ground truth for injected fault windows.

The triage scorer (:mod:`repro.triage.scoring`) needs to know, for every
run, *what was actually injected where and when* — the oracle it grades
verdicts against. Two sources produce :class:`GroundTruthManifest`\\ s:

- :meth:`~repro.faults.schedule.FaultSchedule.ground_truth` — the
  *planned* view, straight off the schedule. Targets are the requested
  names; random picks (empty target tuples) show up as empty targets,
  since the schedule does not know what the injector will draw.
- :meth:`~repro.faults.injector.FaultInjector.ground_truth` — the
  *resolved* view, recorded at arm time: target names as actually drawn
  from the live infrastructure, start stamped at the arm instant, end
  updated to the actual disarm instant (planned end if the run stops
  while the window is still armed).

Windows serialize to plain dicts / JSON and round-trip exactly (pinned by
``tests/faults/test_manifest.py``), so a chaos run can persist its oracle
next to its verdicts.
"""

from __future__ import annotations

import dataclasses
import json
import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.faults.schedule import FaultSpec

#: Spec field holding the headline intensity per fault kind. Kinds not
#: listed (crashes, outages, partitions) are binary: intensity 1.0.
_INTENSITY_FIELD: dict[str, str] = {
    "agent_degrade": "drop_rate",
    "db_slowdown": "factor",
    "copy_flakiness": "fail_rate",
    "message_drop": "rate",
    "message_duplicate": "rate",
    "message_delay": "delay_s",
    "message_reorder": "rate",
}

#: Spec fields that name targets or the window itself — everything else
#: is an intensity/shape parameter worth keeping in ``params``.
_NON_PARAM_FIELDS = frozenset(
    {"start_s", "duration_s", "hosts", "datastores", "shards", "topics"}
)


@dataclasses.dataclass(frozen=True)
class GroundTruthWindow:
    """One injected fault window, as the scorer sees it."""

    kind: str
    start_s: float
    end_s: float
    targets: tuple[str, ...] = ()
    intensity: float = 1.0
    params: dict = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.end_s < self.start_s:
            raise ValueError(
                f"window ends before it starts ({self.start_s} -> {self.end_s})"
            )

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    def active(self, at_s: float, grace_s: float = 0.0) -> bool:
        """Was this window armed at ``at_s`` (+ trailing grace)?"""
        return self.start_s <= at_s <= self.end_s + grace_s

    def overlaps(self, other: "GroundTruthWindow") -> bool:
        return self.start_s < other.end_s and other.start_s < self.end_s

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "targets": list(self.targets),
            "intensity": self.intensity,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, entry: dict) -> "GroundTruthWindow":
        return cls(
            kind=entry["kind"],
            start_s=float(entry["start_s"]),
            end_s=float(entry["end_s"]),
            targets=tuple(entry.get("targets", ())),
            intensity=float(entry.get("intensity", 1.0)),
            params=dict(entry.get("params", {})),
        )


def window_from_spec(
    spec: "FaultSpec",
    start_s: float | None = None,
    end_s: float | None = None,
    targets: typing.Sequence[str] | None = None,
) -> GroundTruthWindow:
    """Build one manifest window from a spec (+ optional resolved facts)."""
    entry = dataclasses.asdict(spec)
    params = {
        key: value for key, value in entry.items() if key not in _NON_PARAM_FIELDS
    }
    field = _INTENSITY_FIELD.get(spec.kind)
    intensity = float(entry[field]) if field is not None else 1.0
    if targets is None:
        # Planned view: requested names only; random picks are unresolved.
        targets = ()
        for name in ("hosts", "datastores", "shards", "topics"):
            if entry.get(name):
                targets = tuple(entry[name])
                break
    return GroundTruthWindow(
        kind=spec.kind,
        start_s=spec.start_s if start_s is None else start_s,
        end_s=spec.end_s if end_s is None else end_s,
        targets=tuple(targets),
        intensity=intensity,
        params=params,
    )


class GroundTruthManifest:
    """An ordered set of injected windows: the triage scoring oracle."""

    def __init__(self, windows: typing.Iterable[GroundTruthWindow] = ()) -> None:
        self.windows: list[GroundTruthWindow] = list(windows)

    def __len__(self) -> int:
        return len(self.windows)

    def __iter__(self) -> typing.Iterator[GroundTruthWindow]:
        return iter(self.windows)

    def add(self, window: GroundTruthWindow) -> "GroundTruthManifest":
        self.windows.append(window)
        return self

    def kinds(self) -> list[str]:
        return sorted({window.kind for window in self.windows})

    def active_at(self, at_s: float, grace_s: float = 0.0) -> list[GroundTruthWindow]:
        """Windows armed at ``at_s``, nearest start first."""
        return sorted(
            (w for w in self.windows if w.active(at_s, grace_s)),
            key=lambda w: (abs(at_s - w.start_s), w.start_s, w.kind),
        )

    # -- (de)serialization -------------------------------------------------

    def to_dicts(self) -> list[dict]:
        return [window.to_dict() for window in self.windows]

    @classmethod
    def from_dicts(cls, entries: typing.Sequence[dict]) -> "GroundTruthManifest":
        return cls(GroundTruthWindow.from_dict(entry) for entry in entries)

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dicts(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "GroundTruthManifest":
        return cls.from_dicts(json.loads(text))

    def describe(self) -> list[str]:
        return [
            f"{w.start_s:8.1f}-{w.end_s:8.1f}s  {w.kind:<18} "
            f"x{w.intensity:g}  [{','.join(w.targets) or '*'}]"
            for w in self.windows
        ]
