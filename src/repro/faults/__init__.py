"""Declarative fault injection for the control-plane simulator.

``repro.faults`` turns the old ad-hoc ``_fail_next`` lists into a uniform
model: every injectable component owns a :class:`FaultHook`, and a
:class:`FaultInjector` process arms/disarms timed :class:`FaultSpec`
windows from a :class:`FaultSchedule` against live targets.

This package must stay import-light: ``repro.controlplane`` and
``repro.storage`` import it, so it never imports them at runtime.
"""

from repro.faults.errors import (
    InjectedFault,
    MessageLost,
    ServerCrashed,
    ShardUnavailable,
    TransientError,
)
from repro.faults.hooks import ALL_KEYS, FaultHook
from repro.faults.injector import FaultEvent, FaultInjector, FaultTargets
from repro.faults.manifest import (
    GroundTruthManifest,
    GroundTruthWindow,
    window_from_spec,
)
from repro.faults.schedule import (
    AgentDegrade,
    CopyFlakiness,
    DatastoreOutage,
    DbSlowdown,
    FaultSchedule,
    FaultSpec,
    HostFlap,
    MessageDelay,
    MessageDrop,
    MessageDuplicate,
    MessageFault,
    MessageReorder,
    ServerCrash,
    ShardCrash,
    SPEC_KINDS,
    TopicPartition,
    random_fault_schedule,
    standard_fault_schedule,
)

__all__ = [
    "ALL_KEYS",
    "AgentDegrade",
    "CopyFlakiness",
    "DatastoreOutage",
    "DbSlowdown",
    "FaultEvent",
    "FaultHook",
    "FaultInjector",
    "FaultSchedule",
    "FaultSpec",
    "FaultTargets",
    "GroundTruthManifest",
    "GroundTruthWindow",
    "HostFlap",
    "InjectedFault",
    "MessageDelay",
    "MessageDrop",
    "MessageDuplicate",
    "MessageFault",
    "MessageLost",
    "MessageReorder",
    "ServerCrash",
    "ServerCrashed",
    "ShardCrash",
    "ShardUnavailable",
    "SPEC_KINDS",
    "TopicPartition",
    "TransientError",
    "random_fault_schedule",
    "standard_fault_schedule",
    "window_from_spec",
]
