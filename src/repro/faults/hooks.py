"""The uniform fault-injection hook.

Every injectable component (host agent, database, copy engine, management
server) owns one :class:`FaultHook` and consults it at the top of each
operation via :meth:`FaultHook.fire`. The hook composes four fault shapes:

- **one-shot errors** (``arm_once``) — the legacy ``inject_failure`` path;
- **probabilistic drops** (``set_drop``) — each fire fails with probability
  ``rate``;
- **latency degradation** (``set_latency``) — ``fire`` returns a service
  time multiplier;
- **keyed outages** (``block``) — fires against a blocked key (or any key,
  via ``"*"``) fail unconditionally.

Drops and latency factors are registered under an opaque *source* token so
overlapping fault windows compose: latency factors multiply, drop rates
combine as independent events, and disarming one window leaves the others
armed. The :class:`~repro.faults.injector.FaultInjector` uses a fresh
token per armed window.
"""

from __future__ import annotations

import random
import typing

from repro.faults.errors import InjectedFault

ALL_KEYS = "*"


class FaultHook:
    """One injection point; see module docstring for the fault shapes."""

    def __init__(
        self,
        sim,
        name: str = "",
        rng: random.Random | None = None,
        error_factory: typing.Callable[[str], BaseException] = InjectedFault,
    ) -> None:
        self.sim = sim
        self.name = name
        self.rng = rng or random.Random(0)
        self.error_factory = error_factory
        self.injected = 0
        self._once: list[BaseException] = []
        self._drops: dict[object, float] = {}
        self._latency: dict[object, float] = {}
        self._blocks: dict[object, str] = {}

    # -- arming ------------------------------------------------------------

    def arm_once(self, error: BaseException | None = None) -> None:
        """Fail exactly one future fire with ``error``."""
        self._once.append(error or self.error_factory(f"injected fault on {self.name}"))

    def set_drop(self, source: object, rate: float) -> None:
        """Fail each fire with probability ``rate`` while ``source`` is armed."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"drop rate must be in [0, 1], got {rate}")
        self._drops[source] = rate

    def clear_drop(self, source: object) -> None:
        self._drops.pop(source, None)

    def set_latency(self, source: object, factor: float) -> None:
        """Multiply service times by ``factor`` while ``source`` is armed."""
        if factor < 1.0:
            raise ValueError(f"latency factor must be >= 1.0, got {factor}")
        self._latency[source] = factor

    def clear_latency(self, source: object) -> None:
        self._latency.pop(source, None)

    def block(self, source: object, key: str = ALL_KEYS) -> None:
        """Fail every fire whose key matches (``"*"`` matches all keys)."""
        self._blocks[source] = key

    def unblock(self, source: object) -> None:
        self._blocks.pop(source, None)

    def disarm(self, source: object) -> None:
        """Remove every fault registered under ``source``."""
        self.clear_drop(source)
        self.clear_latency(source)
        self.unblock(source)

    # -- introspection -----------------------------------------------------

    @property
    def latency_factor(self) -> float:
        factor = 1.0
        for value in self._latency.values():
            factor *= value
        return factor

    @property
    def drop_rate(self) -> float:
        """Combined drop probability across armed sources."""
        survive = 1.0
        for rate in self._drops.values():
            survive *= 1.0 - rate
        return 1.0 - survive

    @property
    def armed(self) -> bool:
        return bool(self._once or self._drops or self._latency or self._blocks)

    def blocked(self, key: str | None = None) -> bool:
        for blocked_key in self._blocks.values():
            if blocked_key == ALL_KEYS or (key is not None and blocked_key == key):
                return True
        return False

    # -- the injection point ----------------------------------------------

    def fire(self, key: str | None = None) -> float:
        """Apply the hook once: raise an injected error or return the
        current latency multiplier.

        ``key`` scopes keyed outages (e.g. a datastore entity id); pass
        ``None`` at unkeyed injection points.
        """
        if self._once:
            self.injected += 1
            raise self._once.pop(0)
        if self.blocked(key):
            self.injected += 1
            scope = key if key is not None else "all"
            raise self.error_factory(f"{self.name}: outage covering {scope!r}")
        rate = self.drop_rate
        if rate > 0.0 and self.rng.random() < rate:
            self.injected += 1
            raise self.error_factory(f"{self.name}: call dropped (rate {rate:.2f})")
        return self.latency_factor
