"""Automated incident triage: from SLO alerts to ranked root-cause verdicts.

The observability stack can *see* control-plane degradation (spans,
telemetry roll-ups, burn-rate alerts) and the fault layer can *cause* it
(twelve injectable fault kinds) — this package connects the two. A
:class:`TriageEngine` attaches to the SLO monitor's fire hook; on each
alert it reads the recent telemetry roll-ups and span store through an
:class:`EvidenceContext` (strictly read-only, so scrapes stay
schedule-neutral), evaluates a catalogue of :class:`TriageRule`\\ s, and
emits a :class:`Verdict`: ranked (fault kind, resource, phase,
confidence) hypotheses, each carrying the evidence chain that supports
it. A :class:`TriageScorer` grades verdicts against the injected
ground truth (:class:`~repro.faults.manifest.GroundTruthManifest`),
reporting precision/recall/top-1 accuracy per fault kind — the R-X6
exhibit runs that scoring over randomized chaos runs.

``NULL_TRIAGE`` is the zero-cost off switch, mirroring ``NULL_TELEMETRY``
/ ``NULL_JOURNAL`` / ``NULL_BUS``: attaching it is a no-op and schedules
are untouched (proven by ``tests/triage/test_triage_neutrality.py``).
"""

from repro.triage.engine import (
    NO_CULPRIT,
    NULL_TRIAGE,
    NullTriageEngine,
    TriageEngine,
    Verdict,
)
from repro.triage.evidence import Evidence, EvidenceContext, Hypothesis, parse_metric_id
from repro.triage.rules import TriageRule, default_rules
from repro.triage.scoring import KindScore, ScoreReport, TriageScorer

__all__ = [
    "Evidence",
    "EvidenceContext",
    "Hypothesis",
    "KindScore",
    "NO_CULPRIT",
    "NULL_TRIAGE",
    "NullTriageEngine",
    "ScoreReport",
    "TriageEngine",
    "TriageRule",
    "TriageScorer",
    "Verdict",
    "default_rules",
    "parse_metric_id",
]
