"""Randomized triage chaos runs: inject a fault, score the verdicts.

The R-X6 rig is the R-F-alerts deploy storm grown three ways: the bus is
mediated (so message faults have a transport to hit), the journal is on
(so server crashes recover), and a quarter of deploys are *full* clones
(so copy faults have bytes to break — linked clones never touch the copy
engine). On top of the four R-F-alerts burn-rate rules it adds three
tripwires that make every detectable fault kind alertable: a
vm-retry-rate rule (catches submission refusals, which complete no tasks
and would otherwise starve the ratio rules), a bus drop-rate rule, and a
bus queue-wait latency rule.

``run_triage_point`` runs one seeded storm with one strong fault window
of a chosen kind (or none), triage attached, and returns the verdicts
plus the resolved ground truth. ``triage_sweep`` cycles kinds across
seeds and pools the scores — the R-X6 exhibit and the CI smoke job
(``python -m repro.triage.harness --seeds 10``) both sit on it.

``message_duplicate`` and ``message_reorder`` are deliberately outside
the sweep: the bus absorbs both by design (idempotency-key dedup,
commutative consumers), so they move no SLO and fire no alert — there is
nothing to triage. The rule catalogue still names them when asked
directly (``TriageEngine.triage_now``), which the unit tests cover.
"""

from __future__ import annotations

import dataclasses
import random
import typing

from repro.controlplane.costs import ControlPlaneConfig, DEFAULT_COSTS
from repro.core.experiments import StormRig
from repro.datacenter.templates import MEDIUM_LINUX
from repro.faults import (
    AgentDegrade,
    CopyFlakiness,
    DatastoreOutage,
    DbSlowdown,
    FaultInjector,
    FaultSchedule,
    FaultTargets,
    GroundTruthManifest,
    HostFlap,
    MessageDelay,
    MessageDrop,
    ServerCrash,
    ShardCrash,
    TopicPartition,
)
from repro.telemetry.recorder import NULL_RECORDER, FlightRecorder
from repro.triage.engine import TriageEngine, Verdict
from repro.triage.scoring import ScoreReport, TriageScorer

#: Fault kinds the sweep injects — every kind with an alertable SLO
#: signature. Ordered; seed i injects KINDS[i % len].
SWEEP_KINDS: tuple[str, ...] = (
    "host_flap",
    "agent_degrade",
    "db_slowdown",
    "datastore_outage",
    "copy_flakiness",
    "server_crash",
    "shard_crash",
    "message_drop",
    "message_delay",
    "topic_partition",
)

#: The quick subset (CI smoke): the kinds with the sharpest signatures.
QUICK_KINDS: tuple[str, ...] = (
    "host_flap",
    "agent_degrade",
    "db_slowdown",
    "datastore_outage",
    "server_crash",
    "message_drop",
)


def kind_schedule(
    kind: str | None, rng: random.Random, duration_s: float
) -> FaultSchedule:
    """One strong mid-run window of ``kind`` (None -> no faults).

    Start and width are drawn from ``rng`` so every seed exercises a
    different alignment against the workload; intensities come from the
    strong end of each kind's range so the question the sweep answers is
    "does triage *name* it", not "is it detectable at all".
    """
    schedule = FaultSchedule()
    if kind is None:
        return schedule
    start = rng.uniform(0.3, 0.45) * duration_s
    width = rng.uniform(0.25, 0.35) * duration_s
    # Crash/partition windows stay short so recovery/heal (the
    # interesting part) happens inside the run.
    short = rng.uniform(0.1, 0.18) * duration_s
    if kind == "host_flap":
        schedule.add(HostFlap(start, width, count=2))
    elif kind == "agent_degrade":
        schedule.add(
            AgentDegrade(
                start,
                width,
                count=3,
                latency_factor=rng.uniform(10.0, 18.0),
                drop_rate=rng.uniform(0.5, 0.7),
            )
        )
    elif kind == "db_slowdown":
        # The storm runs the database at a few percent utilization, so
        # only a drastic slowdown pushes it into visible queueing.
        schedule.add(DbSlowdown(start, width, factor=rng.uniform(40.0, 60.0)))
    elif kind == "datastore_outage":
        schedule.add(DatastoreOutage(start, width, count=1))
    elif kind == "copy_flakiness":
        schedule.add(CopyFlakiness(start, width, fail_rate=rng.uniform(0.5, 0.75)))
    elif kind == "server_crash":
        schedule.add(ServerCrash(start, short, count=1))
    elif kind == "shard_crash":
        schedule.add(ShardCrash(start, width, count=1))
    elif kind == "message_drop":
        schedule.add(MessageDrop(start, width, rate=rng.uniform(0.3, 0.5)))
    elif kind == "message_delay":
        # The stall sits on the publish side, invisible to queue-wait —
        # it has to be big enough to drag end-to-end deploy latency.
        schedule.add(MessageDelay(start, width, delay_s=rng.uniform(6.0, 10.0)))
    elif kind == "topic_partition":
        schedule.add(TopicPartition(start, short))
    else:
        raise ValueError(f"no sweep schedule for fault kind {kind!r}")
    return schedule


@dataclasses.dataclass
class TriagePoint:
    """One seeded chaos run's outcome."""

    seed: int
    kind: str | None
    verdicts: list[Verdict]
    manifest: GroundTruthManifest
    report: ScoreReport
    alerts: int
    scrapes: int
    completed: int
    # Flight-recorder outputs (empty/None unless recorder=True).
    bundles: list = dataclasses.field(default_factory=list)
    retention: dict | None = None

    @property
    def ok(self) -> bool:
        """Did the run behave? (No-fault runs must not name a culprit.)"""
        if self.kind is None:
            return all(not v.confident for v in self.verdicts)
        return True


def run_triage_point(
    seed: int,
    kind: str | None,
    duration_s: float = 600.0,
    arrival_rate: float = 1.2,
    full_clone_every: int = 8,
    triage: bool = True,
    traced: bool = False,
    grace_s: float = 240.0,
    sample_budget: int | None = None,
    recorder: bool = False,
) -> TriagePoint:
    """One storm + one fault window + triage, scored against ground truth.

    ``sample_budget`` (with ``traced=True``) runs the tracer through
    tail-based retention; ``recorder=True`` attaches the incident flight
    recorder so every fired alert (and server crash) snapshots a bundle.
    """
    from repro.cloud.api import AdmissionShed, ApiGateway
    from repro.cloud.catalog import Catalog, CatalogItem
    from repro.cloud.director import CloudDirector, DeployRequest
    from repro.cloud.tenancy import Organization, User
    from repro.controlplane.resilience import (
        BreakerPolicy,
        RetryPolicy,
        TaskDeadlineExceeded,
    )
    from repro.faults.errors import InjectedFault, ShardUnavailable, TransientError
    from repro.operations.base import OperationError
    from repro.sim.events import AllOf
    from repro.telemetry.slo import (
        AvailabilityRule,
        BurnWindow,
        LatencyRule,
        RatioRule,
    )

    costs = dataclasses.replace(DEFAULT_COSTS, host_call_timeout_s=20.0)
    replace_policy = RetryPolicy(
        max_attempts=6,
        base_backoff_s=2.0,
        backoff_multiplier=2.0,
        max_backoff_s=30.0,
        jitter=0.5,
        retry_on=(TransientError, OperationError, TaskDeadlineExceeded),
    )
    in_place_policy = RetryPolicy(
        max_attempts=3,
        base_backoff_s=1.0,
        backoff_multiplier=2.0,
        max_backoff_s=15.0,
        jitter=0.5,
        retry_on=(InjectedFault, ShardUnavailable),
    )
    config = ControlPlaneConfig(
        retry_policy=in_place_policy,
        retry_budget_ratio=0.2,
        task_deadline_s=240.0,
        breaker=BreakerPolicy(failure_threshold=3, cooldown_s=45.0, half_open_probes=1),
    )
    rig = StormRig(
        seed=seed,
        hosts=16,
        datastores=4,
        host_memory_gb=512.0,
        costs=costs,
        config=config,
        traced=traced,
        sample_budget=sample_budget,
        telemetry=True,
        scrape_interval_s=5.0,
        journal=True,
        bus=True,
        direct_calls=False,
    )
    server = rig.server
    telemetry = rig.telemetry
    # Modern-array copy bandwidth: full clones move 40 GB in ~10 s. Every
    # full clone reads from the template's datastore, so its links are the
    # copy bottleneck — keep their utilization well under one or the
    # deploy-latency rule burns with no fault injected.
    server.copy_engine.default_capacity_bps = 4 * 1024**3

    catalog = Catalog("cloud-a")
    linked_item = catalog.add(CatalogItem(name="web", template_name=MEDIUM_LINUX.name))
    full_item = catalog.add(
        CatalogItem(name="db", template_name=MEDIUM_LINUX.name, linked=False)
    )
    org = Organization("acme", quota_vms=100_000, quota_storage_gb=1e9)
    director = CloudDirector(
        server, rig.cluster, rig.library, catalog, retry_policy=replace_policy
    )
    gateway = ApiGateway(
        rig.sim, requests_per_minute=600.0, burst=50.0, telemetry=telemetry
    )
    gateway.enable_shedding(lambda: server.tasks.queue_depth, 128.0)
    session = gateway.login(User("tenant", org))

    windows = (
        BurnWindow(short_s=60.0, long_s=180.0, threshold=2.0),
        BurnWindow(short_s=180.0, long_s=600.0, threshold=1.0),
    )
    success = 'tasks_completed_total{outcome="success"}'
    error = 'tasks_completed_total{outcome="error"}'
    telemetry.add_rule(
        LatencyRule(
            name="deploy-latency-p99",
            objective=0.95,
            metric="director_deploy_latency_s",
            threshold_s=60.0,
            windows=windows,
        )
    )
    telemetry.add_rule(
        RatioRule(
            name="task-goodput",
            objective=0.98,
            bad_metric=error,
            total_metrics=(success, error),
            windows=windows,
        )
    )
    telemetry.add_rule(
        RatioRule(
            name="dead-letter-rate",
            objective=0.995,
            bad_metric="tasks_dead_letter_total",
            total_metrics=(success, error),
            windows=windows,
        )
    )
    telemetry.add_rule(
        RatioRule(
            name="admission-shed-rate",
            objective=0.98,
            bad_metric="gateway_shed_total",
            total_metrics=("gateway_admitted_total", "gateway_shed_total"),
            windows=windows,
        )
    )
    # A flap the placement engine routes around never fails a task —
    # fleet availability is the only signal that burns.
    telemetry.add_rule(
        AvailabilityRule(
            name="host-availability",
            objective=0.99,
            metric_prefix="host_up",
            windows=windows,
        )
    )
    # A shard/server crash refuses submissions: nothing completes, so the
    # completion-ratio rules starve. Retries-vs-deploys keeps burning.
    telemetry.add_rule(
        RatioRule(
            name="vm-retry-rate",
            objective=0.9,
            bad_metric="director_vm_retries_total",
            total_metrics=("director_vm_retries_total", "director_deploys_total"),
            windows=windows,
        )
    )
    telemetry.add_rule(
        RatioRule(
            name="bus-drop-rate",
            objective=0.98,
            bad_metric='bus_dropped_total{bus="bus"}',
            total_metrics=(
                'bus_delivered_total{bus="bus"}',
                'bus_dropped_total{bus="bus"}',
            ),
            windows=windows,
        )
    )
    telemetry.add_rule(
        LatencyRule(
            name="bus-queue-wait",
            objective=0.95,
            metric='bus_queue_wait_s{bus="bus"}',
            threshold_s=2.0,
            windows=windows,
        )
    )

    engine = TriageEngine(telemetry, tracer=rig.tracer)
    if triage:
        engine.attach()
    # The recorder listens after triage (listener order is call order), so
    # every alert-triggered bundle already has the fresh verdict to embed.
    if recorder:
        flight = FlightRecorder(
            telemetry,
            tracer=rig.tracer,
            bus=rig.bus,
            triage=engine if triage else None,
        ).attach(monitor=telemetry.monitor, server=server)
    else:
        flight = NULL_RECORDER

    schedule = kind_schedule(kind, rig.streams.stream("triage-schedule"), duration_s)
    injector = FaultInjector(
        rig.sim,
        FaultTargets.for_server(server),
        schedule,
        rng=rig.streams.stream("fault-injector"),
    ).start()
    telemetry.start()

    requests: list = []

    def one_request(index: int) -> typing.Generator:
        try:
            yield from gateway.admit(session)
        except AdmissionShed:
            return
        item = full_item if index % full_clone_every == 0 else linked_item
        yield from director.deploy(
            DeployRequest(org=org, item=item, vm_count=1, vapp_name=f"req{index}")
        )

    def arrivals() -> typing.Generator:
        rng = rig.streams.stream("arrivals")
        index = 0
        while rig.sim.now < duration_s:
            yield rig.sim.timeout(rng.expovariate(arrival_rate))
            if rig.sim.now >= duration_s:
                break
            requests.append(rig.sim.spawn(one_request(index), name=f"req-{index}"))
            index += 1

    source = rig.sim.spawn(arrivals(), name="arrivals")
    rig.sim.run(until=source)
    if requests:
        rig.sim.run(until=AllOf(rig.sim, requests))
    rig.sim.run(until=rig.sim.spawn(injector.drain(), name="fault-drain"))
    telemetry.stop()
    server.tasks.assert_accounted()

    manifest = injector.ground_truth()
    report = TriageScorer(grace_s=grace_s).score(engine.verdicts, manifest)
    return TriagePoint(
        seed=seed,
        kind=kind,
        verdicts=list(engine.verdicts),
        manifest=manifest,
        report=report,
        alerts=len([e for e in telemetry.monitor.timeline if e.kind == "fire"]),
        scrapes=telemetry.scraper.scrapes,
        completed=len(server.tasks.succeeded()),
        bundles=list(flight.bundles),
        retention=(
            rig.tracer.retention_summary()
            if hasattr(rig.tracer, "retention_summary")
            else None
        ),
    )


def triage_sweep(
    seeds: typing.Iterable[int],
    kinds: typing.Sequence[str] = SWEEP_KINDS,
    duration_s: float = 600.0,
    grace_s: float = 240.0,
) -> tuple[ScoreReport, list[TriagePoint]]:
    """Cycle ``kinds`` across ``seeds``; pool the per-run scores."""
    points = []
    for index, seed in enumerate(seeds):
        kind = kinds[index % len(kinds)]
        points.append(
            run_triage_point(seed, kind, duration_s=duration_s, grace_s=grace_s)
        )
    merged = TriageScorer.merge(point.report for point in points)
    return merged, points


def main(argv: typing.Sequence[str] | None = None) -> int:
    """CI smoke: ``python -m repro.triage.harness --seeds 10`` with gates."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.triage.harness",
        description="Sweep single-fault chaos runs; score triage verdicts.",
    )
    parser.add_argument("--seeds", type=int, default=10, help="number of runs")
    parser.add_argument("--duration", type=float, default=600.0)
    parser.add_argument(
        "--quick", action="store_true", help="sweep only the sharpest fault kinds"
    )
    parser.add_argument("--min-top1", type=float, default=0.8)
    parser.add_argument("--min-recall", type=float, default=0.7)
    args = parser.parse_args(argv)

    kinds = QUICK_KINDS if args.quick else SWEEP_KINDS
    report, points = triage_sweep(
        range(args.seeds), kinds=kinds, duration_s=args.duration
    )
    for point in points:
        named = [v.named_kind for v in point.verdicts]
        print(
            f"seed {point.seed:>3}  injected={point.kind:<18} "
            f"alerts={point.alerts:>2}  verdicts={named}"
        )
    print()
    for line in report.render():
        print(line)
    ok = (
        report.top1_accuracy >= args.min_top1 and report.recall >= args.min_recall
    )
    print()
    print(
        f"gates: top-1 {report.top1_accuracy:.2f} >= {args.min_top1:g} and "
        f"recall {report.recall:.2f} >= {args.min_recall:g}: "
        f"{'PASS' if ok else 'FAIL'}"
    )
    return 0 if ok else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
