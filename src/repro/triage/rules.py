"""The triage rule catalogue: one rule per nameable fault kind.

Each rule reads signals through the :class:`~repro.triage.evidence.EvidenceContext`
and either returns a :class:`~repro.triage.evidence.Hypothesis` (with the
evidence chain that supports it) or ``None``. Rules are designed to be
*discriminating*, not merely sensitive: the gating conditions below are
what keep, say, an agent degradation from being blamed on the hosts a
flap took down, or a datastore outage from reading as generic copy
flakiness. The catalogue (``default_rules()``) is evaluated in full on
every triage and the engine ranks whatever fires by confidence.

Signal map (docs/triage.md renders this as the rule catalogue):

====================  ====================================================
``server_crash``      ``server_crashed`` probe hit 1 in the lookback
                      (+ ``recovery_parked`` backlog as evidence)
``shard_crash``       ``server_blocked`` hit 1 while ``server_crashed``
                      stayed 0 (submissions refused, server alive)
``host_flap``         ``host_up{host=}`` dipped to 0 for specific hosts
``agent_degrade``     per-host hostd ``call_failures``/``timeouts`` rate
                      far above baseline on hosts that stayed *up*
                      (+ breaker state as corroboration)
``db_slowdown``       ``db_utilization`` level high and well above its
                      baseline, pool queue growth and span db-share boosts
``datastore_outage``  copy failure fraction ~1.0 concentrated on specific
                      datastore(s) while other datastores stay healthy
``copy_flakiness``    partial copy-failure fractions spread across
                      datastores
``message_drop``      ``bus_dropped_total`` deltas (+ per-topic ``dropped``
                      probes to localize, redeliveries as corroboration)
``message_duplicate`` per-topic ``duplicated``/``deduped`` growth
``message_delay``     per-topic ``delayed`` growth
``message_reorder``   per-topic ``reordered`` growth
``topic_partition``   a topic published into but not delivering (queue
                      builds, nothing dropped) — or, post-heal, huge
                      queue waits with zero drop/delay counters
``hot_shard``         ``federation_spills{shard=}`` growing on one shard
                      while sibling ``federation_steals`` absorb the
                      spillover (queue-depth imbalance corroborates)
====================  ====================================================
"""

from __future__ import annotations

import re
import typing

from repro.triage.evidence import Evidence, EvidenceContext, Hypothesis

_HOSTD_FAILURES = re.compile(r"(?:^|\.)hostd\..+\.(call_failures|timeouts)$")
_DB_LATENCY = re.compile(r"(?:^|\.)db\..+_latency:seconds$")
_COPY_COUNTER = re.compile(r"(?:^|\.)copy\.(attempts|failures)\.([^.{]+)$")


class TriageRule:
    """One fault-kind detector; subclasses implement :meth:`evaluate`."""

    name: str = "abstract"
    kind: str = "abstract"
    phase: str = "task"
    summary: str = ""

    def evaluate(self, ctx: EvidenceContext) -> Hypothesis | None:
        raise NotImplementedError

    def _hypothesis(
        self,
        resource: str,
        confidence: float,
        evidence: typing.Sequence[Evidence],
    ) -> Hypothesis:
        return Hypothesis(
            kind=self.kind,
            resource=resource,
            phase=self.phase,
            confidence=confidence,
            evidence=tuple(evidence),
            rule=self.name,
        )


class ServerCrashRule(TriageRule):
    name = "server-crash"
    kind = "server_crash"
    phase = "recovery"
    summary = "server_crashed probe hit 1; recovery backlog corroborates"

    def evaluate(self, ctx):
        crashed = [m for m in ctx.find("server_crashed") if ctx.recent_max(m) >= 1.0]
        if not crashed:
            return None
        evidence = [
            Evidence(m, "management server observed down", ctx.recent_max(m))
            for m in crashed
        ]
        confidence = 0.95
        for m in ctx.find("recovery_parked"):
            parked = ctx.recent_max(m)
            if parked > 0:
                evidence.append(
                    Evidence(m, "crash-interrupted tasks parked for recovery", parked)
                )
                confidence = 0.97
        return self._hypothesis("server", confidence, evidence)


class ShardCrashRule(TriageRule):
    name = "shard-crash"
    kind = "shard_crash"
    phase = "task"
    summary = "submissions refused (server_blocked=1) while the server stayed up"

    def evaluate(self, ctx):
        blocked = [m for m in ctx.find("server_blocked") if ctx.recent_max(m) >= 1.0]
        if not blocked:
            return None
        if any(ctx.recent_max(m) >= 1.0 for m in ctx.find("server_crashed")):
            return None  # a real crash explains the refusals better
        evidence = [
            Evidence(m, "shard refusing submissions (fault-blocked)", 1.0)
            for m in blocked
        ]
        return self._hypothesis("server", 0.92, evidence)


def _hosts_down(ctx: EvidenceContext) -> dict[str, str]:
    """host name -> host_up metric id, for hosts that dipped to 0."""
    down = {}
    for metric_id in ctx.find("host_up"):
        minimum = ctx.recent_min(metric_id)
        if minimum is not None and minimum <= 0.0:
            down[ctx.labels(metric_id).get("host", metric_id)] = metric_id
    return down


class HostFlapRule(TriageRule):
    name = "host-flap"
    kind = "host_flap"
    phase = "agent"
    summary = "host_up{host=} dipped to 0 for specific hosts"

    def evaluate(self, ctx):
        down = _hosts_down(ctx)
        if not down:
            return None
        evidence = [
            Evidence(metric_id, f"host {host} observed disconnected", 0.0)
            for host, metric_id in sorted(down.items())
        ]
        return self._hypothesis(",".join(sorted(down)), 0.9, evidence)


class AgentDegradeRule(TriageRule):
    name = "agent-degrade"
    kind = "agent_degrade"
    phase = "agent"
    summary = (
        "hostd call failures/timeouts far above baseline on hosts still up; "
        "breaker trips corroborate"
    )
    min_failures = 3.0
    rate_ratio = 3.0

    def evaluate(self, ctx):
        down = set(_hosts_down(ctx))
        per_host: dict[str, list[str]] = {}
        for metric_id in ctx.find(lambda n: _HOSTD_FAILURES.search(n) is not None):
            host = ctx.labels(metric_id).get("host")
            if host is None or host in down:
                continue
            per_host.setdefault(host, []).append(metric_id)
        culprits: list[tuple[str, float, float]] = []
        for host, ids in sorted(per_host.items()):
            recent = sum(ctx.recent_sum(m) for m in ids)
            baseline = sum(ctx.baseline_rate(m) for m in ids) * ctx.lookback_s
            if recent >= self.min_failures and recent > self.rate_ratio * baseline + 1.0:
                culprits.append((host, recent, baseline))
        if not culprits:
            return None
        total = sum(recent for _, recent, _ in culprits)
        evidence = [
            Evidence(
                f"hostd[{host}]",
                f"host {host} call failures/timeouts surged",
                recent,
                baseline,
            )
            for host, recent, baseline in culprits
        ]
        confidence = 0.55 + 0.3 * min(1.0, total / 20.0)
        tripped = [
            m
            for m in ctx.find("hostd_breaker_state")
            if ctx.labels(m).get("host") in {h for h, _, _ in culprits}
            and ctx.recent_max(m) >= 1.0
        ]
        if tripped:
            confidence += 0.07
            evidence.append(
                Evidence(
                    "hostd_breaker_state",
                    "circuit breaker tripped on the degraded host(s)",
                    float(len(tripped)),
                )
            )
        resource = ",".join(sorted(host for host, _, _ in culprits))
        return self._hypothesis(resource, confidence, evidence)


class DbSlowdownRule(TriageRule):
    name = "db-slowdown"
    kind = "db_slowdown"
    phase = "db"
    summary = (
        "db mean op latency a multiple of its baseline; utilization rise, "
        "pool-queue growth and span db-share boost confidence"
    )

    #: recent mean service time must exceed this multiple of baseline.
    latency_ratio = 3.0

    def evaluate(self, ctx):
        # Primary signal: windowed mean service time of the db op
        # recorders (``vc-1.db.writes_latency:seconds`` over ``:count``)
        # against the pre-lookback baseline. Utilization alone is too
        # weak — a lightly loaded pool can be 25x slower without ever
        # saturating.
        ratios = []
        for seconds_id in ctx.find(lambda n: _DB_LATENCY.search(n) is not None):
            count_id = seconds_id.replace(":seconds", ":count")
            recent_n = ctx.recent_sum(count_id)
            base_n = ctx.baseline_rate(count_id) * ctx.baseline_s
            if recent_n < 5 or base_n < 5:
                continue
            recent_mean = ctx.recent_sum(seconds_id) / recent_n
            base_mean = ctx.baseline_rate(seconds_id) * ctx.baseline_s / base_n
            if base_mean <= 0:
                continue
            ratios.append((recent_mean / base_mean, seconds_id, recent_mean, base_mean))
        if not ratios:
            return None
        ratio, seconds_id, recent_mean, base_mean = max(ratios)
        if ratio < self.latency_ratio:
            return None
        evidence = [
            Evidence(
                seconds_id,
                f"db mean op latency {ratio:.1f}x its baseline",
                recent_mean,
                base_mean,
            )
        ]
        confidence = 0.6 + 0.2 * min(1.0, (ratio - self.latency_ratio) / 20.0)
        ids = ctx.find("db_utilization")
        if ids:
            util = ctx.recent_mean(ids[0])
            base = ctx.baseline_mean(ids[0])
            if util >= 2.0 * (base + 0.02):
                confidence += 0.08
                evidence.append(
                    Evidence(ids[0], "db pool utilization elevated", util, base)
                )
        for queue_id in ctx.find("db_pool_queue"):
            queue = ctx.recent_mean(queue_id)
            queue_base = ctx.baseline_mean(queue_id)
            if queue >= 1.0 and queue > 2.0 * (queue_base + 0.1):
                confidence += 0.08
                evidence.append(
                    Evidence(queue_id, "db pool queue building", queue, queue_base)
                )
                break
        db_share = ctx.phase_shares().get("db", 0.0)
        if db_share >= 0.25:
            confidence += 0.07
            evidence.append(
                Evidence(
                    "spans:phase_attribution",
                    "db dominates exclusive time in recent spans",
                    db_share,
                )
            )
        return self._hypothesis("database", confidence, evidence)


def _copy_failure_fractions(
    ctx: EvidenceContext, seconds: float | None = None
) -> dict[str, tuple[float, float]]:
    """datastore name -> (attempts, failures) over the trailing window."""
    per_ds: dict[str, dict[str, float]] = {}
    for metric_id, in_name, _labels in ctx._parsed:
        match = _COPY_COUNTER.search(in_name)
        if match is None:
            continue
        which, datastore = match.group(1), match.group(2)
        per_ds.setdefault(datastore, {"attempts": 0.0, "failures": 0.0})
        per_ds[datastore][which] += ctx.recent_sum(metric_id, seconds)
    return {
        ds: (counts["attempts"], counts["failures"])
        for ds, counts in per_ds.items()
    }


class DatastoreOutageRule(TriageRule):
    name = "datastore-outage"
    kind = "datastore_outage"
    phase = "copy"
    summary = (
        "copy failure fraction ~1.0 concentrated on specific datastore(s) "
        "while others stay healthy"
    )

    #: fast window for spotting a datastore going dark — a full lookback
    #: still holds minutes of healthy pre-outage copies that dilute the
    #: failure fraction below any sane threshold.
    fast_window_s = 60.0

    def evaluate(self, ctx):
        fractions = _copy_failure_fractions(ctx)
        fast = _copy_failure_fractions(ctx, seconds=self.fast_window_s)
        dead = []
        healthy = 0
        for ds, (attempts, failures) in sorted(fractions.items()):
            fast_attempts, fast_failures = fast.get(ds, (0.0, 0.0))
            for n, bad in ((attempts, failures), (fast_attempts, fast_failures)):
                # 0.8, not ~1.0: successes from just before the outage
                # armed sit inside the same window and dilute the ratio.
                if n >= 3 and bad / n >= 0.8:
                    dead.append((ds, n, bad))
                    break
            else:
                if attempts >= 3 and failures / attempts <= 0.5:
                    healthy += 1
        if not dead:
            return None
        evidence = [
            Evidence(
                f"copy[{ds}]",
                f"copies into {ds} failing ({failures:.0f}/{attempts:.0f})",
                failures / attempts,
            )
            for ds, attempts, failures in dead
        ]
        confidence = 0.85 if healthy else 0.7
        if healthy:
            evidence.append(
                Evidence(
                    "copy[*]",
                    "other datastores accepting copies normally",
                    float(healthy),
                )
            )
        return self._hypothesis(
            ",".join(ds for ds, _, _ in dead), confidence, evidence
        )


class CopyFlakinessRule(TriageRule):
    name = "copy-flakiness"
    kind = "copy_flakiness"
    phase = "copy"
    summary = "partial copy-failure fractions spread across datastores"

    def evaluate(self, ctx):
        fractions = _copy_failure_fractions(ctx)
        partial = []
        total_failures = 0.0
        for ds, (attempts, failures) in sorted(fractions.items()):
            if attempts < 2 or failures == 0:
                continue
            fraction = failures / attempts
            total_failures += failures
            if 0.05 <= fraction < 0.9:
                partial.append((ds, attempts, failures))
        if len(partial) < 2 or total_failures < 3:
            return None
        evidence = [
            Evidence(
                f"copy[{ds}]",
                f"copies into {ds} partially failing ({failures:.0f}/{attempts:.0f})",
                failures / attempts,
            )
            for ds, attempts, failures in partial
        ]
        confidence = 0.6 + 0.25 * min(1.0, total_failures / 10.0)
        return self._hypothesis("copy-engine", confidence, evidence)


def _per_topic_increase(ctx: EvidenceContext, field: str) -> dict[str, float]:
    """topic -> growth of the cumulative per-topic probe over the lookback."""
    out: dict[str, float] = {}
    for metric_id in ctx.find(f"bus_topic_{field}"):
        increase = ctx.increase(metric_id)
        if increase > 0:
            out[ctx.labels(metric_id).get("topic", metric_id)] = increase
    return out


def _top_topic(per_topic: dict[str, float]) -> str:
    return max(sorted(per_topic), key=lambda topic: per_topic[topic])


class MessageDropRule(TriageRule):
    name = "message-drop"
    kind = "message_drop"
    phase = "bus"
    summary = (
        "bus_dropped_total deltas; per-topic dropped probes localize, "
        "redeliveries corroborate"
    )

    def evaluate(self, ctx):
        drops = ctx.sum_over(ctx.find("bus_dropped_total"))
        if drops < 2:
            return None
        evidence = [
            Evidence("bus_dropped_total", "messages lost in transit", drops)
        ]
        per_topic = _per_topic_increase(ctx, "dropped")
        resource = "bus"
        if per_topic:
            resource = _top_topic(per_topic)
            evidence.append(
                Evidence(
                    f"bus_topic_dropped[{resource}]",
                    f"drops concentrated on topic {resource}",
                    per_topic[resource],
                )
            )
        redelivered = ctx.sum_over(ctx.find("bus_redelivered_total"))
        if redelivered > 0:
            evidence.append(
                Evidence(
                    "bus_redelivered_total",
                    "redelivery timers resending lost messages",
                    redelivered,
                )
            )
        confidence = 0.7 + 0.2 * min(1.0, drops / 10.0)
        return self._hypothesis(resource, confidence, evidence)


class MessageDuplicateRule(TriageRule):
    name = "message-duplicate"
    kind = "message_duplicate"
    phase = "bus"
    summary = "per-topic duplicated growth; dedup suppressions corroborate"

    def evaluate(self, ctx):
        per_topic = _per_topic_increase(ctx, "duplicated")
        duplicated = sum(per_topic.values())
        if duplicated < 2:
            return None
        resource = _top_topic(per_topic)
        evidence = [
            Evidence("bus_topic_duplicated", "duplicate copies injected", duplicated)
        ]
        deduped = ctx.sum_over(ctx.find("bus_deduped_total"))
        if deduped > 0:
            evidence.append(
                Evidence(
                    "bus_deduped_total",
                    "idempotency keys absorbing the duplicates",
                    deduped,
                )
            )
        confidence = 0.6 + 0.2 * min(1.0, duplicated / 10.0)
        return self._hypothesis(resource, confidence, evidence)


class MessageDelayRule(TriageRule):
    name = "message-delay"
    kind = "message_delay"
    phase = "bus"
    summary = "per-topic delayed growth (publishes stalled in transit)"

    def evaluate(self, ctx):
        per_topic = _per_topic_increase(ctx, "delayed")
        delayed = sum(per_topic.values())
        if delayed < 2:
            return None
        resource = _top_topic(per_topic)
        evidence = [
            Evidence("bus_topic_delayed", "publishes stalled by transit delay", delayed)
        ]
        confidence = 0.65 + 0.2 * min(1.0, delayed / 20.0)
        return self._hypothesis(resource, confidence, evidence)


class MessageReorderRule(TriageRule):
    name = "message-reorder"
    kind = "message_reorder"
    phase = "bus"
    summary = "per-topic reordered growth (messages jumping the queue)"

    def evaluate(self, ctx):
        per_topic = _per_topic_increase(ctx, "reordered")
        reordered = sum(per_topic.values())
        if reordered < 2:
            return None
        resource = _top_topic(per_topic)
        evidence = [
            Evidence("bus_topic_reordered", "messages jumped the queue", reordered)
        ]
        confidence = 0.55 + 0.2 * min(1.0, reordered / 20.0)
        return self._hypothesis(resource, confidence, evidence)


class TopicPartitionRule(TriageRule):
    name = "topic-partition"
    kind = "topic_partition"
    phase = "bus"
    summary = (
        "a topic published into but not delivering with queue building and "
        "nothing dropped; post-heal: huge queue waits, zero drop/delay counters"
    )

    def evaluate(self, ctx):
        dropped = ctx.sum_over(ctx.find("bus_dropped_total"))
        delayed = sum(_per_topic_increase(ctx, "delayed").values())
        if dropped > 0 or delayed > 0:
            return None  # those counters name a different bus fault
        # Active-partition signature: messages published but parked — a
        # deep queue *now* plus a published-minus-delivered gap over the
        # lookback. (Comparing increases alone is not enough: deliveries
        # from before the partition sit inside the same window.)
        published = _per_topic_increase(ctx, "published")
        delivered = _per_topic_increase(ctx, "delivered")
        stalled = []
        for topic, pub in sorted(published.items()):
            gap = pub - delivered.get(topic, 0.0)
            if gap < 4:
                continue
            depth_ids = ctx.find("bus_queue_depth", topic=topic)
            depth = max((ctx.recent_max(m) for m in depth_ids), default=0.0)
            if depth >= 4:
                stalled.append((topic, gap, depth))
        if stalled:
            topic, gap, depth = max(stalled, key=lambda item: item[2])
            evidence = [
                Evidence(
                    f"bus_topic_published[{topic}]",
                    f"topic {topic} published {gap:g} more than it delivered",
                    gap,
                ),
                Evidence(
                    f"bus_queue_depth[{topic}]", "backlog parked behind it", depth
                ),
            ]
            return self._hypothesis(
                topic, 0.85 + 0.05 * min(1.0, depth / 16.0), evidence
            )
        # Healed-partition signature: the backlog just drained, so the
        # queue-wait histogram grows a tail far beyond any delay fault
        # (seconds) or the redelivery path (which drops messages first).
        for metric_id in ctx.find("bus_queue_wait_s"):
            window = ctx.recent(metric_id)
            if window.count < 2:
                continue
            parked = float(window.hist.count_at_or_above(10.0))
            if parked >= 2:
                evidence = [
                    Evidence(
                        metric_id,
                        "deliveries with queue waits beyond delay/redelivery "
                        "timescales",
                        parked,
                    )
                ]
                return self._hypothesis(
                    "bus", 0.6 + 0.2 * min(1.0, parked / 32.0), evidence
                )
        return None


class HotShardRule(TriageRule):
    name = "hot-shard"
    kind = "hot_shard"
    phase = "task"
    summary = (
        "federation spillover growing on one shard while siblings steal "
        "the overflow — skewed tenant load saturating a shard"
    )

    def evaluate(self, ctx):
        spills: dict[str, float] = {}
        for metric_id in ctx.find("federation_spills"):
            increase = ctx.increase(metric_id)
            if increase > 0:
                spills[ctx.labels(metric_id).get("shard", metric_id)] = increase
        if not spills or sum(spills.values()) < 2:
            return None
        steals = sum(ctx.increase(m) for m in ctx.find("federation_steals"))
        if steals < 1:
            # Spillover with nobody stealing is backpressure, not a hot
            # shard being absorbed — stay silent rather than misattribute.
            return None
        hot = max(sorted(spills), key=lambda shard: spills[shard])
        evidence = [
            Evidence(
                f"federation_spills[{hot}]",
                f"shard {hot} spilling submissions to the shared pool",
                spills[hot],
            ),
            Evidence(
                "federation_steals",
                "sibling shards stealing the spilled work",
                steals,
            ),
        ]
        confidence = 0.65 + 0.2 * min(1.0, sum(spills.values()) / 10.0)
        depths = [ctx.recent_max(m) for m in ctx.find("tasks_queue_depth")]
        depths = [d for d in depths if d is not None]
        if len(depths) >= 2 and max(depths) >= 4 and max(depths) >= 4 * (min(depths) + 0.5):
            confidence += 0.07
            evidence.append(
                Evidence(
                    "tasks_queue_depth",
                    "per-shard dispatch queues sharply imbalanced",
                    max(depths),
                    min(depths),
                )
            )
        return self._hypothesis(hot, confidence, evidence)


def default_rules() -> list[TriageRule]:
    """The full catalogue, in deterministic evaluation order."""
    return [
        ServerCrashRule(),
        ShardCrashRule(),
        HostFlapRule(),
        AgentDegradeRule(),
        DbSlowdownRule(),
        DatastoreOutageRule(),
        CopyFlakinessRule(),
        MessageDropRule(),
        MessageDuplicateRule(),
        MessageDelayRule(),
        MessageReorderRule(),
        TopicPartitionRule(),
        HotShardRule(),
    ]
