"""The triage evidence model: read-only views over roll-ups and spans.

An :class:`EvidenceContext` is built once per alert firing and handed to
every rule. It answers the questions rules ask — "how did this signal
behave over the last few minutes, and how does that compare to the
baseline just before?" — using only the telemetry roll-up store and the
span store. It never touches the simulator, so triage runs inside the
scraper's evaluation step without perturbing schedules.

Window arithmetic (see :mod:`repro.telemetry.rollup`):

- scraped **counters** land as per-scrape deltas, so a trailing window's
  ``sum`` is the count in that window and ``sum / seconds`` is a rate;
- **probes/gauges** land as instantaneous levels, so ``min``/``max``/
  ``mean`` are level statistics, and for a *cumulative* probe (e.g. the
  per-topic ``bus_topic_*`` counters surfaced as probes) the increase
  over a window is ``max - min``;
- the **baseline** for a signal is the window of ``baseline_s`` seconds
  immediately *before* the recent ``lookback_s`` window, computed by
  subtracting nested trailing windows.
"""

from __future__ import annotations

import dataclasses
import re
import typing

from repro.tracing import NULL_TRACER

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.metrics import Telemetry
    from repro.telemetry.rollup import Window

_METRIC_ID_RE = re.compile(r"^(?P<name>[^{]+)(?:\{(?P<labels>.*)\})?$")
_LABEL_RE = re.compile(r'(\w+)="([^"]*)"')


def parse_metric_id(metric_id: str) -> tuple[str, dict[str, str]]:
    """Split ``name{k="v",...}`` into (name, labels)."""
    match = _METRIC_ID_RE.match(metric_id)
    if match is None:
        return metric_id, {}
    labels_text = match.group("labels")
    labels = dict(_LABEL_RE.findall(labels_text)) if labels_text else {}
    return match.group("name"), labels


@dataclasses.dataclass(frozen=True)
class Evidence:
    """One observed fact supporting a hypothesis."""

    signal: str  # metric id / span query that produced it
    statement: str  # human-readable claim
    value: float
    baseline: float = 0.0

    def render(self) -> str:
        if self.baseline:
            return f"{self.statement} (={self.value:g}, baseline {self.baseline:g})"
        return f"{self.statement} (={self.value:g})"


@dataclasses.dataclass(frozen=True)
class Hypothesis:
    """One ranked root-cause candidate inside a verdict."""

    kind: str  # fault kind named (or "none")
    resource: str  # culprit resource(s): host/datastore/topic/... names
    phase: str  # dominant phase the fault manifests in
    confidence: float  # [0, 1]
    evidence: tuple[Evidence, ...] = ()
    rule: str = ""  # rule that produced it

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "confidence", max(0.0, min(1.0, self.confidence))
        )

    def render(self) -> str:
        return (
            f"{self.kind:<18} conf={self.confidence:4.2f}  "
            f"resource={self.resource}  phase={self.phase}"
        )


class EvidenceContext:
    """Read-only signal reader rules evaluate against, built per alert."""

    def __init__(
        self,
        telemetry: "Telemetry",
        tracer=NULL_TRACER,
        now: float = 0.0,
        lookback_s: float = 180.0,
        baseline_s: float = 420.0,
    ) -> None:
        if lookback_s <= 0 or baseline_s <= 0:
            raise ValueError("lookback_s and baseline_s must be positive")
        self.telemetry = telemetry
        self.tracer = tracer
        self.now = now
        self.lookback_s = lookback_s
        self.baseline_s = baseline_s
        # Parse every metric id once; rules do many lookups.
        self._parsed: list[tuple[str, str, dict[str, str]]] = [
            (metric_id, *parse_metric_id(metric_id))
            for metric_id in sorted(telemetry.rollups)
        ]
        self._labels: dict[str, dict[str, str]] = {
            metric_id: labels for metric_id, _, labels in self._parsed
        }
        self._phase_shares: dict[str, float] | None = None

    # -- id discovery ------------------------------------------------------

    def labels(self, metric_id: str) -> dict[str, str]:
        return self._labels.get(metric_id, {})

    def find(
        self,
        name: str | typing.Callable[[str], bool],
        **labels: str,
    ) -> list[str]:
        """Metric ids whose name matches and whose labels include ``labels``.

        ``name`` is an exact metric name or a predicate over the name
        (useful for registry-prefixed ids like ``vc-1.hostd.<id>.timeouts``).
        Results are sorted, so rule evaluation is deterministic.
        """
        predicate = name if callable(name) else name.__eq__
        out = []
        for metric_id, metric_name, metric_labels in self._parsed:
            if not predicate(metric_name):
                continue
            if any(metric_labels.get(k) != v for k, v in labels.items()):
                continue
            out.append(metric_id)
        return out

    # -- window statistics -------------------------------------------------

    def recent(self, metric_id: str, seconds: float | None = None) -> "Window":
        """The trailing window for one series (default ``lookback_s``).

        Pass ``seconds`` for a shorter view: fast-moving counters (a
        datastore going dark) drown in a full lookback that still holds
        minutes of healthy samples.
        """
        return self.telemetry.rollups[metric_id].trailing(
            seconds if seconds is not None else self.lookback_s, self.now
        )

    def _long(self, metric_id: str) -> "Window":
        return self.telemetry.rollups[metric_id].trailing(
            self.lookback_s + self.baseline_s, self.now
        )

    def recent_sum(self, metric_id: str, seconds: float | None = None) -> float:
        """Counter deltas summed over the lookback (= count in window)."""
        return self.recent(metric_id, seconds).sum

    def recent_rate(self, metric_id: str) -> float:
        return self.recent(metric_id).sum / self.lookback_s

    def baseline_rate(self, metric_id: str) -> float:
        """Counter rate over ``baseline_s`` seconds *before* the lookback."""
        long_sum = self._long(metric_id).sum
        return max(0.0, long_sum - self.recent(metric_id).sum) / self.baseline_s

    def recent_mean(self, metric_id: str) -> float:
        return self.recent(metric_id).mean

    def baseline_mean(self, metric_id: str) -> float:
        """Level mean over the baseline window before the lookback."""
        recent = self.recent(metric_id)
        long = self._long(metric_id)
        count = long.count - recent.count
        if count <= 0:
            return 0.0
        return (long.sum - recent.sum) / count

    def recent_max(self, metric_id: str) -> float:
        window = self.recent(metric_id)
        return window.max if window.count else 0.0

    def recent_min(self, metric_id: str) -> float | None:
        """Minimum level over the lookback; None when no samples landed."""
        window = self.recent(metric_id)
        return window.min if window.count else None

    def increase(self, metric_id: str) -> float:
        """Growth of a cumulative (monotone) probe over the lookback."""
        window = self.recent(metric_id)
        if window.count == 0:
            return 0.0
        return max(0.0, window.max - window.min)

    def sum_over(self, metric_ids: typing.Iterable[str]) -> float:
        return sum(self.recent_sum(metric_id) for metric_id in metric_ids)

    # -- span evidence -----------------------------------------------------

    def phase_shares(self) -> dict[str, float]:
        """Normalized exclusive-time phase shares over the lookback window.

        Empty when tracing is off — rules treat span evidence as a
        confidence boost, never a requirement.
        """
        if self._phase_shares is None:
            from repro.analysis.spans import window_phase_attribution

            attribution = window_phase_attribution(
                self.tracer, self.now - self.lookback_s, self.now
            )
            total = sum(attribution.values())
            self._phase_shares = (
                {phase: seconds / total for phase, seconds in attribution.items()}
                if total > 0
                else {}
            )
        return self._phase_shares
