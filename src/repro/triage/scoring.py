"""Scoring triage verdicts against injected ground truth.

The :class:`TriageScorer` matches each verdict's firing time against the
:class:`~repro.faults.manifest.GroundTruthManifest` windows (with a
trailing grace period: burn-rate alerts routinely fire a little after a
short window closes, and the evidence lookback legitimately sees a
just-closed fault) and aggregates:

- **top-1 accuracy** — of the verdicts that fired with at least one
  fault window active, the fraction whose top hypothesis named an active
  window's kind;
- **precision (per kind)** — of the verdicts naming kind K, the fraction
  fired while a K window was actually active;
- **recall (per kind)** — of the injected K windows, the fraction
  credited by at least one verdict whose top hypothesis named K while
  the window was active;
- the **confusion matrix** — injected kind (row) x named kind (column),
  one increment per verdict; verdicts firing with no active window land
  in the ``(none)`` row, "no culprit" verdicts in the ``none`` column.

Verdicts naming :data:`~repro.triage.engine.NO_CULPRIT` never count
against precision — the low-confidence "no culprit" path is the designed
answer for unexplained alerts, not a false accusation.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.triage.engine import NO_CULPRIT, Verdict

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.faults.manifest import GroundTruthManifest

NO_FAULT_ROW = "(none)"


@dataclasses.dataclass
class KindScore:
    """Aggregated counts for one fault kind."""

    kind: str
    injected: int = 0  # ground-truth windows of this kind
    recalled: int = 0  # windows credited by a correct top-1 verdict
    named: int = 0  # verdicts whose top hypothesis named this kind
    named_correct: int = 0  # ... of those, fired while a window was active

    @property
    def precision(self) -> float:
        return self.named_correct / self.named if self.named else 0.0

    @property
    def recall(self) -> float:
        return self.recalled / self.injected if self.injected else 0.0


@dataclasses.dataclass
class ScoreReport:
    """The scorer's output: per-kind scores + confusion matrix + totals."""

    per_kind: dict[str, KindScore]
    confusion: dict[str, dict[str, int]]  # injected row -> named col -> count
    matched_verdicts: int  # verdicts with >= 1 active window
    top1_correct: int
    unmatched_verdicts: int  # verdicts with no active window
    correct_rejections: int  # ... of those, honestly naming "none"
    total_verdicts: int

    @property
    def top1_accuracy(self) -> float:
        return (
            self.top1_correct / self.matched_verdicts if self.matched_verdicts else 0.0
        )

    @property
    def precision(self) -> float:
        named = sum(score.named for score in self.per_kind.values())
        correct = sum(score.named_correct for score in self.per_kind.values())
        return correct / named if named else 0.0

    @property
    def recall(self) -> float:
        injected = sum(score.injected for score in self.per_kind.values())
        recalled = sum(score.recalled for score in self.per_kind.values())
        return recalled / injected if injected else 0.0

    def to_dict(self) -> dict:
        return {
            "top1_accuracy": self.top1_accuracy,
            "precision": self.precision,
            "recall": self.recall,
            "matched_verdicts": self.matched_verdicts,
            "unmatched_verdicts": self.unmatched_verdicts,
            "correct_rejections": self.correct_rejections,
            "total_verdicts": self.total_verdicts,
            "per_kind": {
                kind: {
                    "injected": score.injected,
                    "recalled": score.recalled,
                    "named": score.named,
                    "named_correct": score.named_correct,
                    "precision": score.precision,
                    "recall": score.recall,
                }
                for kind, score in sorted(self.per_kind.items())
            },
            "confusion": {
                row: dict(sorted(cols.items()))
                for row, cols in sorted(self.confusion.items())
            },
        }

    def render(self) -> list[str]:
        lines = [
            f"verdicts: {self.total_verdicts} total, "
            f"{self.matched_verdicts} during fault windows, "
            f"{self.unmatched_verdicts} outside "
            f"({self.correct_rejections} honest no-culprit)",
            f"top-1 accuracy {self.top1_accuracy:.2f}  "
            f"precision {self.precision:.2f}  recall {self.recall:.2f}",
            "",
            f"{'kind':<20} {'injected':>8} {'recalled':>8} "
            f"{'precision':>9} {'recall':>7}",
        ]
        for kind, score in sorted(self.per_kind.items()):
            if score.injected == 0 and score.named == 0:
                continue
            lines.append(
                f"{kind:<20} {score.injected:>8} {score.recalled:>8} "
                f"{score.precision:>9.2f} {score.recall:>7.2f}"
            )
        lines.append("")
        lines.extend(self.render_confusion())
        return lines

    def render_confusion(self) -> list[str]:
        """Injected (rows) x named (columns), only non-empty rows/cols."""
        rows = sorted(self.confusion)
        cols = sorted({col for row in self.confusion.values() for col in row})
        if not rows:
            return ["confusion matrix: (no verdicts)"]
        width = max(14, max(len(c) for c in cols) + 2)
        lines = ["confusion matrix (rows=injected, cols=named):"]
        header = f"{'':<20}" + "".join(f"{col:>{width}}" for col in cols)
        lines.append(header)
        for row in rows:
            cells = "".join(
                f"{self.confusion[row].get(col, 0):>{width}}" for col in cols
            )
            lines.append(f"{row:<20}{cells}")
        return lines


class TriageScorer:
    """Grades verdicts against a ground-truth manifest."""

    def __init__(self, grace_s: float = 240.0) -> None:
        if grace_s < 0:
            raise ValueError("grace_s must be >= 0")
        self.grace_s = grace_s

    def score(
        self,
        verdicts: typing.Sequence[Verdict],
        manifest: "GroundTruthManifest",
    ) -> ScoreReport:
        per_kind: dict[str, KindScore] = {}

        def kind_score(kind: str) -> KindScore:
            return per_kind.setdefault(kind, KindScore(kind=kind))

        for window in manifest:
            kind_score(window.kind).injected += 1

        confusion: dict[str, dict[str, int]] = {}
        recalled_windows: set[int] = set()
        matched = top1 = unmatched = rejections = 0

        for verdict in verdicts:
            named = verdict.named_kind
            active = manifest.active_at(verdict.fired_at, grace_s=self.grace_s)
            if not active:
                unmatched += 1
                if named == NO_CULPRIT:
                    rejections += 1
                else:
                    kind_score(named).named += 1
                confusion.setdefault(NO_FAULT_ROW, {})
                confusion[NO_FAULT_ROW][named] = (
                    confusion[NO_FAULT_ROW].get(named, 0) + 1
                )
                continue
            matched += 1
            naming = [window for window in active if window.kind == named]
            # Confusion row: the active window the verdict matched (its
            # own kind if it named one correctly, else the nearest-start
            # active window the blame *should* have landed on).
            row = (naming[0] if naming else active[0]).kind
            confusion.setdefault(row, {})
            confusion[row][named] = confusion[row].get(named, 0) + 1
            if named == NO_CULPRIT:
                continue
            kind_score(named).named += 1
            if naming:
                top1 += 1
                kind_score(named).named_correct += 1
                for window in naming:
                    window_id = id(window)
                    if window_id not in recalled_windows:
                        recalled_windows.add(window_id)
                        kind_score(window.kind).recalled += 1

        return ScoreReport(
            per_kind=per_kind,
            confusion=confusion,
            matched_verdicts=matched,
            top1_correct=top1,
            unmatched_verdicts=unmatched,
            correct_rejections=rejections,
            total_verdicts=len(verdicts),
        )

    @staticmethod
    def merge(reports: typing.Iterable[ScoreReport]) -> ScoreReport:
        """Pool counts across runs (per-seed reports -> sweep report)."""
        merged = ScoreReport(
            per_kind={},
            confusion={},
            matched_verdicts=0,
            top1_correct=0,
            unmatched_verdicts=0,
            correct_rejections=0,
            total_verdicts=0,
        )
        for report in reports:
            merged.matched_verdicts += report.matched_verdicts
            merged.top1_correct += report.top1_correct
            merged.unmatched_verdicts += report.unmatched_verdicts
            merged.correct_rejections += report.correct_rejections
            merged.total_verdicts += report.total_verdicts
            for kind, score in report.per_kind.items():
                target = merged.per_kind.setdefault(kind, KindScore(kind=kind))
                target.injected += score.injected
                target.recalled += score.recalled
                target.named += score.named
                target.named_correct += score.named_correct
            for row, cols in report.confusion.items():
                target_row = merged.confusion.setdefault(row, {})
                for col, count in cols.items():
                    target_row[col] = target_row.get(col, 0) + count
        return merged
