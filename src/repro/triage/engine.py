"""The triage engine: SLO alert firings in, ranked verdicts out.

:class:`TriageEngine` attaches to the SLO monitor's fire hook
(:attr:`~repro.telemetry.slo.SloMonitor.listeners`). Every new alert
firing builds an :class:`~repro.triage.evidence.EvidenceContext` over the
recent roll-ups and spans, evaluates the full rule catalogue, and records
a :class:`Verdict` whose hypotheses are ranked by confidence (ties broken
by kind/resource so verdicts are deterministic for a fixed seed). When
nothing clears ``min_confidence`` the verdict leads with a low-confidence
``"none"`` hypothesis — an honest "no culprit identified" beats a
confidently wrong name.

The engine is **read-only with respect to the simulation**: it runs
inside the scraper's evaluate step, touches only the roll-up store and
span store, and schedules stay byte-identical with triage attached
(``tests/triage/test_triage_neutrality.py``). :data:`NULL_TRIAGE` is the
zero-cost off switch.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.tracing import NULL_TRACER
from repro.triage.evidence import Evidence, EvidenceContext, Hypothesis
from repro.triage.rules import TriageRule, default_rules

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.metrics import Telemetry
    from repro.telemetry.slo import Alert, SloMonitor

#: Kind named when no rule clears the confidence bar.
NO_CULPRIT = "none"


@dataclasses.dataclass
class Verdict:
    """One triage outcome: what fired, and the ranked root-cause candidates."""

    fired_at: float
    alerts: list[str]
    hypotheses: tuple[Hypothesis, ...]

    @property
    def top(self) -> Hypothesis:
        return self.hypotheses[0]

    @property
    def named_kind(self) -> str:
        return self.hypotheses[0].kind if self.hypotheses else NO_CULPRIT

    @property
    def confident(self) -> bool:
        return self.named_kind != NO_CULPRIT

    def render(self, evidence: bool = True) -> list[str]:
        lines = [
            f"t={self.fired_at:8.1f}s  alerts=[{','.join(self.alerts)}]"
            f"  verdict: {self.named_kind}"
        ]
        for rank, hypothesis in enumerate(self.hypotheses, start=1):
            lines.append(f"  #{rank} {hypothesis.render()}")
            if evidence:
                for item in hypothesis.evidence:
                    lines.append(f"       - {item.render()}")
        return lines


class TriageEngine:
    """Rule-and-evidence root-cause engine over telemetry and spans."""

    is_null = False

    def __init__(
        self,
        telemetry: "Telemetry",
        tracer=NULL_TRACER,
        rules: typing.Sequence[TriageRule] | None = None,
        lookback_s: float = 180.0,
        baseline_s: float = 420.0,
        min_confidence: float = 0.35,
        max_hypotheses: int = 5,
        refractory_s: float = 60.0,
    ) -> None:
        self.telemetry = telemetry
        self.tracer = tracer
        self.rules: list[TriageRule] = (
            list(rules) if rules is not None else default_rules()
        )
        self.lookback_s = lookback_s
        self.baseline_s = baseline_s
        self.min_confidence = min_confidence
        self.max_hypotheses = max_hypotheses
        self.refractory_s = refractory_s
        self.verdicts: list[Verdict] = []

    def attach(self, monitor: "SloMonitor | None" = None) -> "TriageEngine":
        """Subscribe to alert firings (defaults to the telemetry's monitor)."""
        target = monitor if monitor is not None else self.telemetry.monitor
        target.listeners.append(self._on_alert)
        return self

    def _on_alert(self, alert: "Alert", now: float) -> None:
        # Alerts arriving in a burst describe one incident. Within the
        # refractory window the incident's verdict *refines* instead of
        # multiplying: the first alert often beats the evidence (a rule
        # can fire ~2 roll-up windows into a fault, before a failure
        # fraction means anything), so re-run triage with the newer
        # window and keep whichever evaluation is more confident.
        if (
            self.verdicts
            and now - self.verdicts[-1].fired_at <= self.refractory_s
        ):
            previous = self.verdicts[-1]
            alerts = list(previous.alerts)
            if alert.rule not in alerts:
                alerts.append(alert.rule)
            refined = self.triage_now(now, alerts=alerts)
            if refined.top.confidence >= previous.top.confidence:
                self.verdicts[-1] = refined
            else:
                previous.alerts[:] = alerts
            return
        self.verdicts.append(self.triage_now(now, alerts=(alert.rule,)))

    def triage_now(
        self, now: float, alerts: typing.Sequence[str] = ()
    ) -> Verdict:
        """Run the rule catalogue once at ``now`` and rank the output.

        Pure over the telemetry/span state: no simulator interaction, no
        randomness — the same state always yields the same verdict.
        """
        ctx = EvidenceContext(
            self.telemetry,
            tracer=self.tracer,
            now=now,
            lookback_s=self.lookback_s,
            baseline_s=self.baseline_s,
        )
        hypotheses: list[Hypothesis] = []
        for rule in self.rules:
            hypothesis = rule.evaluate(ctx)
            if hypothesis is not None and hypothesis.confidence > 0.0:
                hypotheses.append(hypothesis)
        hypotheses.sort(key=lambda h: (-h.confidence, h.kind, h.resource))
        hypotheses = hypotheses[: self.max_hypotheses]
        if not hypotheses or hypotheses[0].confidence < self.min_confidence:
            # Low-confidence "no culprit": an alert without a nameable
            # cause must not produce a wrong name.
            no_culprit = Hypothesis(
                kind=NO_CULPRIT,
                resource="-",
                phase="-",
                confidence=0.2,
                evidence=(
                    Evidence(
                        "triage",
                        "no rule cleared the confidence threshold "
                        f"({self.min_confidence:g})",
                        hypotheses[0].confidence if hypotheses else 0.0,
                    ),
                ),
                rule="no-culprit",
            )
            hypotheses.insert(0, no_culprit)
        return Verdict(
            fired_at=now, alerts=list(alerts), hypotheses=tuple(hypotheses)
        )

    def render(self, evidence: bool = False) -> list[str]:
        lines: list[str] = []
        for verdict in self.verdicts:
            lines.extend(verdict.render(evidence=evidence))
        return lines


class NullTriageEngine:
    """Triage off: attaching is a no-op and nothing is ever recorded."""

    is_null = True
    verdicts: tuple = ()

    def attach(self, monitor=None) -> "NullTriageEngine":
        return self

    def triage_now(self, now: float, alerts: typing.Sequence[str] = ()) -> Verdict:
        return Verdict(fired_at=now, alerts=list(alerts), hypotheses=())

    def render(self, evidence: bool = False) -> list:
        return []


NULL_TRIAGE = NullTriageEngine()
