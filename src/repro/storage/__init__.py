"""The storage data plane: bandwidth, copy engine, and linked-clone mechanics.

This is the substrate whose cost the paper's "most recent virtualization
techniques" (linked clones) nearly eliminate. Full clones move
disk-size-proportional bytes through a fair-shared storage link; linked
clones move only metadata. Both go through the same admission scheduler so
the control plane sees identical task structure either way.
"""

from repro.storage.bandwidth import FairShareLink, Transfer
from repro.storage.copy_engine import CopyEngine, CopyFailed
from repro.storage.linked_clone import (
    LinkedCloneError,
    consolidate_chain,
    create_linked_backing,
    ensure_clone_anchor,
)
from repro.storage.scheduler import CopyScheduler

__all__ = [
    "CopyEngine",
    "CopyFailed",
    "CopyScheduler",
    "FairShareLink",
    "LinkedCloneError",
    "Transfer",
    "consolidate_chain",
    "create_linked_backing",
    "ensure_clone_anchor",
]
