"""The copy engine: moves disk bytes between datastores.

Cost model: a copy is charged to the *destination* datastore's link (write
bandwidth dominates clone traffic on real arrays; reads of a hot golden
image are largely cache hits). Source-side read bytes are still counted in
the engine's statistics so R-F4 can report total data-plane traffic.
"""

from __future__ import annotations

import random
import typing

from repro.datacenter.entities import Datastore
from repro.faults.errors import TransientError
from repro.faults.hooks import FaultHook
from repro.sim.kernel import Simulator
from repro.sim.stats import MetricsRegistry
from repro.storage.bandwidth import FairShareLink
from repro.tracing import NULL_SPAN, PHASE_COPY

GB = 1024.0**3


class CopyFailed(TransientError):
    """Raised when a copy is aborted by failure injection or an outage."""


class CopyEngine:
    """Executes byte-level copies over per-datastore fair-share links."""

    def __init__(
        self,
        sim: Simulator,
        default_capacity_bps: float = 200 * 1024 * 1024,
        metrics: MetricsRegistry | None = None,
        rng: random.Random | None = None,
    ) -> None:
        """``default_capacity_bps`` defaults to ~200 MB/s effective per
        datastore — mid-range FC/iSCSI array bandwidth of the paper's era."""
        self.sim = sim
        self.default_capacity_bps = default_capacity_bps
        self.metrics = metrics or MetricsRegistry(sim, prefix="copy")
        self._links: dict[str, FairShareLink] = {}
        self.faults = FaultHook(sim, name="copy", rng=rng, error_factory=CopyFailed)

    def link_for(self, datastore: Datastore) -> FairShareLink:
        if datastore.entity_id not in self._links:
            self._links[datastore.entity_id] = FairShareLink(
                self.sim, self.default_capacity_bps, name=f"link:{datastore.name}"
            )
        return self._links[datastore.entity_id]

    def set_capacity(self, datastore: Datastore, capacity_bps: float) -> None:
        """Pin a specific datastore's bandwidth (for heterogeneity studies)."""
        self._links[datastore.entity_id] = FairShareLink(
            self.sim, capacity_bps, name=f"link:{datastore.name}"
        )

    def inject_failure(self, error: Exception | None = None) -> None:
        """Make the next copy fail (failure-injection tests)."""
        self.faults.arm_once(error or CopyFailed("injected copy failure"))

    def copy(
        self,
        source: Datastore,
        destination: Datastore,
        size_gb: float,
        span=NULL_SPAN,
    ) -> typing.Generator[typing.Any, typing.Any, float]:
        """Process-style: copy ``size_gb`` and return the elapsed seconds.

        Allocates space on ``destination`` before moving bytes and releases
        it again on failure, so failed clones don't leak capacity.
        """
        # Keyed by destination: a datastore outage fails copies *into* it.
        # Per-destination attempt/failure counters let triage tell an
        # outage (one datastore fails everything) from flakiness (partial
        # failures across datastores).
        self.metrics.counter(f"attempts.{destination.name}").add()
        try:
            self.faults.fire(key=destination.entity_id)
        except Exception:
            self.metrics.counter("failures").add()
            self.metrics.counter(f"failures.{destination.name}").add()
            raise
        start = self.sim.now
        transfer_span = span.child(
            "copy.transfer",
            phase=PHASE_COPY,
            tags={"size_gb": size_gb, "destination": destination.name},
        )
        destination.allocate(size_gb)
        try:
            yield self.link_for(destination).transfer(size_gb * GB)
        except BaseException as exc:
            destination.reclaim(size_gb)
            self.metrics.counter("failures").add()
            self.metrics.counter(f"failures.{destination.name}").add()
            transfer_span.finish(error=type(exc).__name__)
            raise
        transfer_span.finish()
        elapsed = self.sim.now - start
        self.metrics.counter("bytes_written").add(size_gb * GB)
        self.metrics.counter("bytes_read").add(size_gb * GB)
        self.metrics.counter("copies").add()
        self.metrics.latency("copy_seconds").record(elapsed)
        return elapsed

    @property
    def total_bytes_written(self) -> float:
        return self.metrics.counter("bytes_written").value

    @property
    def total_bytes_read(self) -> float:
        return self.metrics.counter("bytes_read").value
