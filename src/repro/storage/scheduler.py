"""Copy admission control: bounds concurrent copies per datastore.

Real arrays collapse under unbounded concurrent clone streams, so
hypervisor managers cap in-flight copies per datastore. The cap is a
first-order knob in R-T3: raising it helps full clones (data-plane-bound)
and does nothing for linked clones (control-plane-bound) — one of the
paper's design implications.
"""

from __future__ import annotations

import typing

from repro.datacenter.entities import Datastore
from repro.sim.kernel import Simulator
from repro.sim.resources import Resource
from repro.sim.stats import MetricsRegistry
from repro.storage.copy_engine import CopyEngine
from repro.tracing import NULL_SPAN, PHASE_COPY

# Default per-datastore concurrent-copy cap, matching the era's
# vCenter/VAAI guidance of a handful of simultaneous clone streams.
DEFAULT_COPY_SLOTS = 4


class CopyScheduler:
    """Admits copies onto datastores through per-datastore slot pools."""

    def __init__(
        self,
        sim: Simulator,
        engine: CopyEngine,
        slots_per_datastore: int = DEFAULT_COPY_SLOTS,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if slots_per_datastore < 1:
            raise ValueError("slots_per_datastore must be >= 1")
        self.sim = sim
        self.engine = engine
        self.slots_per_datastore = slots_per_datastore
        self.metrics = metrics or MetricsRegistry(sim, prefix="copysched")
        self._slots: dict[str, Resource] = {}

    def _pool(self, datastore: Datastore) -> Resource:
        if datastore.entity_id not in self._slots:
            self._slots[datastore.entity_id] = Resource(
                self.sim,
                capacity=self.slots_per_datastore,
                name=f"copyslots:{datastore.name}",
            )
        return self._slots[datastore.entity_id]

    def queue_depth(self, datastore: Datastore) -> int:
        return self._pool(datastore).queue_depth

    def scheduled_copy(
        self,
        source: Datastore,
        destination: Datastore,
        size_gb: float,
        span=NULL_SPAN,
    ) -> typing.Generator[typing.Any, typing.Any, float]:
        """Process-style: wait for a destination slot, then copy.

        Returns total elapsed seconds including queueing. Queue wait is
        recorded separately so the bottleneck analysis can attribute it.
        The slot wait is traced under the ``copy`` phase (it is data-plane
        backpressure, not control-plane queueing) with a ``wait`` tag.
        """
        start = self.sim.now
        pool = self._pool(destination)
        request = pool.request()
        wait_span = span.child(
            "copy.slot_wait", phase=PHASE_COPY, tags={"wait": True}
        )
        yield request
        wait_span.finish()
        self.metrics.latency("queue_wait").record(self.sim.now - start)
        try:
            yield from self.engine.copy(source, destination, size_gb, span=span)
        finally:
            pool.release(request)
        total = self.sim.now - start
        self.metrics.latency("copy_total").record(total)
        return total
