"""Linked-clone mechanics: delta backings, anchors, and consolidation.

A linked clone needs an *anchor*: a read-only backing in the source VM's
chain to parent the new delta on. Templates publish read-only bases, so
they anchor directly; cloning a writable VM first snapshots it (that
snapshot is control-plane work — part of why linked clones stress the
management plane).
"""

from __future__ import annotations

from repro.datacenter.entities import Datastore
from repro.datacenter.vm import DiskBacking, VirtualDisk, VirtualMachine

# Delta backings start essentially empty; 0.05 GB covers format metadata
# and the first copy-on-write grains.
INITIAL_DELTA_GB = 0.05

# Beyond this chain depth, per-IO redirection overhead makes operators
# consolidate. (View/vCloud deployments of the era used similar bounds.)
MAX_CHAIN_DEPTH = 30


class LinkedCloneError(Exception):
    """Chain-structure violations (no anchor, chain too deep)."""


def ensure_clone_anchor(source: VirtualMachine) -> list[DiskBacking]:
    """Return per-disk read-only anchors, snapshotting the source if needed.

    Returns the backing list aligned with ``source.disks``.
    """
    if not source.disks:
        raise LinkedCloneError(f"source {source.name!r} has no disks")
    if all(_anchor_of(disk) is not None for disk in source.disks):
        return [_anchor_of(disk) for disk in source.disks]  # type: ignore[misc]
    snapshot = source.take_snapshot(f"clone-anchor-{len(source.snapshots)}")
    return list(snapshot.backings)


def has_clone_anchor(source: VirtualMachine) -> bool:
    """True if every disk already has a read-only anchor (no snapshot needed)."""
    return bool(source.disks) and all(
        _anchor_of(disk) is not None for disk in source.disks
    )


def _anchor_of(disk: VirtualDisk) -> DiskBacking | None:
    """The leaf itself if frozen, else the nearest read-only ancestor only
    when the leaf is empty (nothing written since the snapshot)."""
    if disk.backing.read_only:
        return disk.backing
    if disk.backing.parent is not None and disk.backing.size_gb == 0.0:
        parent = disk.backing.parent
        if parent.read_only:
            return parent
    return None


def create_linked_backing(
    anchor: DiskBacking,
    datastore: Datastore,
    initial_gb: float = INITIAL_DELTA_GB,
) -> DiskBacking:
    """Hang a new writable delta off ``anchor`` on ``datastore``.

    The delta may live on a different datastore than its parent (NFS-style
    linked clones); what may not happen is parenting on a writable backing.
    """
    if not anchor.read_only:
        raise LinkedCloneError("anchor backing must be read-only")
    if anchor.chain_depth + 1 > MAX_CHAIN_DEPTH:
        raise LinkedCloneError(
            f"chain depth {anchor.chain_depth + 1} exceeds limit {MAX_CHAIN_DEPTH}"
        )
    datastore.allocate(initial_gb)
    return DiskBacking(datastore=datastore, size_gb=initial_gb, parent=anchor)


def consolidate_chain(disk: VirtualDisk) -> float:
    """Collapse a disk's chain into a single base backing.

    Returns the GB of data that must be copied (the data-plane cost of
    consolidation): the full logical footprint of the chain. The collapsed
    backing replaces the leaf; ancestors' child counts are decremented but
    their storage is only reclaimable when unreferenced (caller's job).
    """
    chain = disk.backing.chain()
    if len(chain) == 1:
        return 0.0
    moved_gb = disk.backing.logical_size_gb
    datastore = disk.backing.datastore
    for link in chain:
        if link.parent is not None:
            link.parent.children -= 1
    datastore.allocate(max(0.0, moved_gb - disk.backing.size_gb))
    disk.backing = DiskBacking(datastore=datastore, size_gb=moved_gb)
    return moved_gb


def merge_leaf_into_parent(disk: VirtualDisk) -> float:
    """Merge the leaf delta into its parent (snapshot deletion).

    Returns the GB moved (the leaf's contents). The parent absorbs the
    leaf's bytes, becomes writable, and replaces it as the disk's backing.
    Only legal when the parent is this disk's private snapshot backing
    (exactly one child); merging into a shared linked-clone anchor would
    corrupt the siblings.
    """
    leaf = disk.backing
    parent = leaf.parent
    if parent is None:
        return 0.0
    if parent.children != 1:
        raise LinkedCloneError(
            f"cannot merge into shared backing (children={parent.children})"
        )
    moved_gb = leaf.size_gb
    leaf.datastore.reclaim(leaf.size_gb)
    parent.datastore.allocate(moved_gb)
    parent.size_gb += moved_gb
    parent.read_only = False
    parent.children -= 1
    disk.backing = parent
    return moved_gb


def reference_counts(backings: list[DiskBacking]) -> dict[int, int]:
    """Child counts per backing id — used in tests and GC decisions."""
    return {backing.backing_id: backing.children for backing in backings}
