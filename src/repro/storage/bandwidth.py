"""Fair-share (processor-sharing) bandwidth links.

A :class:`FairShareLink` models an aggregate storage pipe of fixed capacity
(bytes/second). All in-flight transfers progress simultaneously, each
receiving ``capacity / n`` while ``n`` transfers are active — the standard
fluid-flow approximation for storage arrays and uplinks. Completion events
are rescheduled whenever membership changes.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.sim.events import Event
from repro.sim.kernel import Simulator


@dataclasses.dataclass(slots=True)
class Transfer:
    """An in-flight transfer on a link."""

    size_bytes: float
    remaining: float
    started_at: float
    done: Event
    finished_at: float | None = None

    @property
    def duration(self) -> float:
        if self.finished_at is None:
            raise RuntimeError("transfer not finished")
        return self.finished_at - self.started_at


class FairShareLink:
    """A capacity-C pipe shared equally among active transfers.

    Invariants (property-tested):

    - total bytes delivered never exceeds capacity × elapsed time;
    - a transfer of S bytes alone on the link takes exactly S/C seconds;
    - n equal transfers started together finish together at n·S/C.
    """

    def __init__(self, sim: Simulator, capacity_bps: float, name: str = "link") -> None:
        if capacity_bps <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity_bps = capacity_bps
        self.name = name
        self._active: list[Transfer] = []
        self._last_update = sim.now
        self._next_completion: Event | None = None
        self.bytes_delivered = 0.0
        self.transfer_count = 0
        self._busy_area = 0.0  # integral of (active>0) for utilization
        # Labels are per-link constants; formatting them per event is pure
        # hot-path waste on links that reschedule at every membership change.
        self._xfer_label = f"xfer:{name}"
        self._complete_label = f"complete:{name}"

    # -- public API -----------------------------------------------------------

    def transfer(self, size_bytes: float) -> Event:
        """Start a transfer; the returned event fires with the Transfer."""
        if size_bytes < 0:
            raise ValueError(f"negative transfer size {size_bytes}")
        done = Event(self.sim, name=self._xfer_label)
        record = Transfer(
            size_bytes=size_bytes,
            remaining=size_bytes,
            started_at=self.sim.now,
            done=done,
        )
        self.transfer_count += 1
        if size_bytes == 0:
            record.finished_at = self.sim.now
            done.succeed(value=record)
            return done
        self._advance()
        self._active.append(record)
        self._reschedule()
        return done

    @property
    def active_count(self) -> int:
        return len(self._active)

    @property
    def per_transfer_rate(self) -> float:
        """Current bytes/second each active transfer receives."""
        if not self._active:
            return self.capacity_bps
        return self.capacity_bps / len(self._active)

    def utilization(self, since: float = 0.0) -> float:
        """Fraction of [since, now] during which the link was busy."""
        self._advance()
        span = self.sim.now - since
        if span <= 0:
            return 0.0
        return min(1.0, self._busy_area / span)

    # -- fluid-flow mechanics --------------------------------------------------

    def _advance(self) -> None:
        """Apply progress accrued since the last membership change."""
        now = self.sim.now
        elapsed = now - self._last_update
        self._last_update = now
        if elapsed <= 0 or not self._active:
            return
        rate = self.capacity_bps / len(self._active)
        delivered = 0.0
        for transfer in self._active:
            progress = min(transfer.remaining, rate * elapsed)
            transfer.remaining -= progress
            delivered += progress
        self.bytes_delivered += delivered
        self._busy_area += elapsed
        # Residues below a part-per-billion of the transfer size are float
        # noise (a few ulp of a multi-GB size), not real work; treating
        # them as live would reschedule completions at delays that can
        # underflow to the current timestamp and spin forever.
        def _done(t: Transfer) -> bool:
            return t.remaining <= max(1e-9, 1e-9 * t.size_bytes)

        finished = [t for t in self._active if _done(t)]
        self._active = [t for t in self._active if not _done(t)]
        for transfer in finished:
            transfer.remaining = 0.0
            transfer.finished_at = now
            transfer.done.succeed(value=transfer)

    def _reschedule(self) -> None:
        """(Re)arm the completion timer for the soonest-finishing transfer."""
        stale = self._next_completion
        if stale is not None and not stale.processed and not stale.cancelled:
            stale.cancel()
        self._next_completion = None
        if not self._active:
            return
        rate = self.capacity_bps / len(self._active)
        soonest = min(transfer.remaining for transfer in self._active)
        timer = Event(self.sim, name=self._complete_label)
        timer.callbacks.append(self._on_completion)
        timer.succeed(delay=soonest / rate)
        self._next_completion = timer

    def _on_completion(self, _event: Event) -> None:
        self._next_completion = None
        self._advance()
        self._reschedule()
