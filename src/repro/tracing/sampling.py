"""Tail-based trace retention: full-fidelity tracing on a span budget.

The plain :class:`~repro.tracing.tracer.Tracer` retains every span it
ever created, which is exactly right for a 48-clone storm and exactly
wrong at hyperscale — a million-VM cell would drown in span objects long
before the workload finishes. Tail sampling keeps the *decision* until a
trace is complete (its root span finishes), when everything worth keeping
about it is known, and then applies keep-policies in priority order:

- **errors** — any span in the tree carries an ``error`` tag;
- **retries** — the root ran more than one attempt (``attempts`` tag) or
  the tree contains a ``retry``-phase span;
- **slow** — the root's duration clears a rolling quantile of all root
  durations seen so far (a :class:`~repro.sim.stats.LogHistogram`, so the
  threshold costs O(buckets), not O(samples));
- a bounded **reservoir of normals** — an unbiased sample of healthy
  traces for baseline comparison, drawn with a *private* RNG so sampling
  can never perturb the simulation's random streams.

Retained trees live under a global **span budget**; when admitting a tree
would blow it, lower-value trees are evicted first (normals, then slow,
then retried, then errored — oldest first within a class). A single tree
larger than the whole budget is still admitted: the incident it describes
is worth more than the bound.

:class:`SampledTracer` plugs the sampler into the tracer's finish hook.
It is schedule-neutral by construction — it only reacts to spans the
instrumentation already creates, allocates no simulator events, and draws
no randomness from the workload's streams (pinned by the recorder
neutrality differential). ``python -m repro trace --sample <budget>``
demos it; the R-X7 exhibit measures the retention ratio.
"""

from __future__ import annotations

import dataclasses
import random
import typing
from collections import deque

from repro.sim.stats import LogHistogram
from repro.tracing.span import PHASE_RETRY, Span
from repro.tracing.tracer import Tracer

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

# Keep classes, strongest claim first.
KEEP_ERROR = "error"
KEEP_RETRY = "retry"
KEEP_SLOW = "slow"
KEEP_NORMAL = "normal"
KEEP_CLASSES = (KEEP_ERROR, KEEP_RETRY, KEEP_SLOW, KEEP_NORMAL)

#: Budget-eviction order: the least diagnostic trees go first.
EVICTION_ORDER = (KEEP_NORMAL, KEEP_SLOW, KEEP_RETRY, KEEP_ERROR)


@dataclasses.dataclass(frozen=True)
class RetentionPolicy:
    """Knobs for the tail sampler.

    ``span_budget`` bounds total retained spans (not trees): a tree costs
    what it weighs. ``slow_quantile`` is the rolling root-duration
    quantile above which a trace counts as slow; the threshold only arms
    after ``min_slow_samples`` roots so early traces aren't all "slow"
    relative to an empty distribution. ``normal_reservoir`` bounds the
    healthy-trace sample; ``reservoir_seed`` seeds the private RNG.
    """

    span_budget: int = 4096
    slow_quantile: float = 0.95
    min_slow_samples: int = 20
    normal_reservoir: int = 16
    reservoir_seed: int = 0

    def __post_init__(self) -> None:
        if self.span_budget < 1:
            raise ValueError("span_budget must be >= 1")
        if not 0.0 < self.slow_quantile < 1.0:
            raise ValueError("slow_quantile must be in (0, 1)")
        if self.min_slow_samples < 1:
            raise ValueError("min_slow_samples must be >= 1")
        if self.normal_reservoir < 0:
            raise ValueError("normal_reservoir must be >= 0")


class RetainedTree:
    """One sealed, retained trace: root, all its spans, and why it stayed."""

    __slots__ = ("root", "spans", "keep", "sealed_at")

    def __init__(
        self, root: Span, spans: list[Span], keep: str, sealed_at: float
    ) -> None:
        self.root = root
        self.spans = spans
        self.keep = keep
        self.sealed_at = sealed_at

    @property
    def trace_id(self) -> int:
        return self.root.context.trace_id

    def overlaps(self, lo: float, hi: float) -> bool:
        """Does any simulated time in this tree fall inside [lo, hi]?"""
        end = self.root.end if self.root.end is not None else self.root.start
        return self.root.start <= hi and end >= lo

    def __repr__(self) -> str:
        return (
            f"<RetainedTree trace={self.trace_id} keep={self.keep} "
            f"spans={len(self.spans)}>"
        )


class TailSampler:
    """Classifies sealed trace trees and holds the bounded retained set."""

    def __init__(self, policy: RetentionPolicy | None = None) -> None:
        self.policy = policy if policy is not None else RetentionPolicy()
        # Private stream: reservoir decisions must never touch the
        # simulation's RNGs or the schedule would shift with sampling on.
        self._rng = random.Random(self.policy.reservoir_seed)
        self._durations = LogHistogram("root_durations")
        self._by_class: dict[str, deque[RetainedTree]] = {
            cls: deque() for cls in KEEP_CLASSES
        }
        self._by_trace: dict[int, RetainedTree] = {}
        self._span_count = 0
        self._normal_seen = 0
        self.offered = 0
        #: Total spans across every offered tree — what an unbounded
        #: tracer would have retained; the denominator of the R-X7 ratio.
        self.offered_spans = 0
        self.admitted = 0
        self.dropped = 0
        self.evicted = 0

    # -- classification ------------------------------------------------------

    def slow_threshold(self) -> float | None:
        """Rolling slow cut, or None until enough roots have sealed."""
        if self._durations.count < self.policy.min_slow_samples:
            return None
        return self._durations.quantile(self.policy.slow_quantile)

    def classify(self, root: Span, spans: list[Span]) -> str:
        """Which keep class a sealed tree falls in (strongest claim wins)."""
        for span in spans:
            if "error" in span.tags:
                return KEEP_ERROR
        if root.tags.get("attempts", 1) > 1 or any(
            span.phase == PHASE_RETRY for span in spans
        ):
            return KEEP_RETRY
        threshold = self.slow_threshold()
        if threshold is not None and root.duration >= threshold:
            return KEEP_SLOW
        return KEEP_NORMAL

    # -- admission -----------------------------------------------------------

    def offer(
        self, root: Span, spans: list[Span], sealed_at: float
    ) -> tuple[RetainedTree | None, list[RetainedTree]]:
        """Offer one sealed tree; returns (admitted tree or None, evicted).

        The caller owns forgetting dropped/evicted trees' index entries.
        """
        self.offered += 1
        self.offered_spans += len(spans)
        keep = self.classify(root, spans)
        # Record *after* classifying: a root never competes against its
        # own duration when the slow threshold is computed.
        self._durations.record(max(0.0, root.duration))
        evicted: list[RetainedTree] = []
        if keep == KEEP_NORMAL:
            self._normal_seen += 1
            bucket = self._by_class[KEEP_NORMAL]
            if self.policy.normal_reservoir == 0:
                self.dropped += 1
                return None, evicted
            if len(bucket) >= self.policy.normal_reservoir:
                # Classic reservoir: keep the newcomer with probability
                # k/n, displacing a uniformly-chosen incumbent.
                if (
                    self._rng.random()
                    < self.policy.normal_reservoir / self._normal_seen
                ):
                    victim_index = self._rng.randrange(len(bucket))
                    victim = bucket[victim_index]
                    del bucket[victim_index]
                    self._discard(victim)
                    evicted.append(victim)
                else:
                    self.dropped += 1
                    return None, evicted
        tree = RetainedTree(root, spans, keep, sealed_at)
        self._by_class[keep].append(tree)
        self._by_trace[tree.trace_id] = tree
        self._span_count += len(spans)
        self.admitted += 1
        evicted.extend(self._enforce_budget(protect=tree))
        return tree, evicted

    def _discard(self, tree: RetainedTree) -> None:
        self._by_trace.pop(tree.trace_id, None)
        self._span_count -= len(tree.spans)
        self.evicted += 1

    def _enforce_budget(self, protect: RetainedTree) -> list[RetainedTree]:
        """Evict until the span budget holds; never evict ``protect``.

        A single oversized tree is therefore still admitted — the budget
        bounds steady state, not the worst single incident.
        """
        out: list[RetainedTree] = []
        budget = self.policy.span_budget
        for cls in EVICTION_ORDER:
            bucket = self._by_class[cls]
            while self._span_count > budget and bucket:
                if bucket[0] is protect:
                    if len(bucket) == 1:
                        break
                    victim = bucket[1]
                    del bucket[1]
                else:
                    victim = bucket.popleft()
                self._discard(victim)
                out.append(victim)
            if self._span_count <= budget:
                break
        return out

    # -- queries -------------------------------------------------------------

    @property
    def span_count(self) -> int:
        return self._span_count

    @property
    def tree_count(self) -> int:
        return len(self._by_trace)

    def trees(self) -> list[RetainedTree]:
        """Every retained tree, oldest sealed first."""
        out = [tree for bucket in self._by_class.values() for tree in bucket]
        out.sort(key=lambda tree: (tree.sealed_at, tree.trace_id))
        return out

    def tree_for(self, trace_id: int) -> RetainedTree | None:
        return self._by_trace.get(trace_id)

    def counts_by_class(self) -> dict[str, int]:
        return {cls: len(bucket) for cls, bucket in self._by_class.items()}

    def reset(self) -> None:
        for bucket in self._by_class.values():
            bucket.clear()
        self._by_trace.clear()
        self._durations = LogHistogram("root_durations")
        self._span_count = 0
        self._normal_seen = 0


class SampledTracer(Tracer):
    """A tracer whose finished traces pass through the tail sampler.

    Open traces buffer per trace id; when a root finishes, the whole tree
    seals and the sampler decides. Structural queries (``children`` /
    ``subtree``) keep working on retained trees; ``spans`` reflects
    retained plus still-open spans, so exports and phase attribution run
    unchanged — just over the bounded set.
    """

    def __init__(
        self, sim: "Simulator", policy: RetentionPolicy | None = None
    ) -> None:
        self.policy = policy if policy is not None else RetentionPolicy()
        self.sampler = TailSampler(self.policy)
        super().__init__(sim)

    def _init_store(self) -> None:
        # Open trees, keyed by trace id (insertion = open order).
        self._active: dict[int, list[Span]] = {}

    @property
    def spans(self) -> list[Span]:  # type: ignore[override]
        out = [span for tree in self.sampler.trees() for span in tree.spans]
        for buffered in self._active.values():
            out.extend(buffered)
        return out

    def _store(self, span: Span) -> None:
        self._active.setdefault(span.context.trace_id, []).append(span)

    def _finished(self, span: Span) -> None:
        if span.context.parent_id is not None:
            return
        buffered = self._active.pop(span.context.trace_id, None)
        if buffered is None:
            return
        tree, evicted = self.sampler.offer(span, buffered, sealed_at=self.now)
        if tree is None:
            self._forget(buffered)
        for victim in evicted:
            self._forget(victim.spans)

    def _forget(self, spans: list[Span]) -> None:
        """Drop a dropped/evicted tree's child-index entries (GC the tree)."""
        for span in spans:
            self._children.pop(span.context.span_id, None)

    # -- retained-set queries ------------------------------------------------

    def retained_trees(self) -> list[RetainedTree]:
        return self.sampler.trees()

    def retained_tree(self, trace_id: int) -> RetainedTree | None:
        return self.sampler.tree_for(trace_id)

    @property
    def retained_span_count(self) -> int:
        return self.sampler.span_count

    def open_spans(self) -> list[Span]:
        return [
            span
            for buffered in self._active.values()
            for span in buffered
            if not span.finished
        ]

    def clear(self) -> None:
        self._active.clear()
        self._children.clear()
        self.sampler.reset()

    def retention_summary(self) -> dict[str, int]:
        """Counters for reports: offered/admitted/dropped/evicted + sizes."""
        sampler = self.sampler
        summary = {
            "offered": sampler.offered,
            "offered_spans": sampler.offered_spans,
            "admitted": sampler.admitted,
            "dropped": sampler.dropped,
            "evicted": sampler.evicted,
            "retained_trees": sampler.tree_count,
            "retained_spans": sampler.span_count,
            "span_budget": self.policy.span_budget,
        }
        for cls, count in sampler.counts_by_class().items():
            summary[f"kept_{cls}"] = count
        return summary
