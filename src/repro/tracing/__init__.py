"""Causal, span-based tracing for the management control plane.

The subsystem answers the question the whole-operation
:class:`~repro.traces.records.TraceRecord` cannot: *which control-plane
phase* — gateway admission, placement, task-queue wait, host-agent
execution, DB/event-log writes, storage copy — dominates an operation's
latency as concurrency rises.

Pieces:

- :mod:`repro.tracing.span` — :class:`Span`/:class:`SpanContext`
  primitives on simulated time, the phase taxonomy, and the zero-cost
  :data:`NULL_SPAN`;
- :mod:`repro.tracing.tracer` — the :class:`Tracer` registry (and its
  disabled twin :data:`NULL_TRACER`);
- :mod:`repro.tracing.sampling` — tail-based retention:
  :class:`SampledTracer` keeps finished trace trees inside a fixed span
  budget via keep-policies (errors, retries, slow, normal reservoir);
- :mod:`repro.tracing.export` — Chrome trace-event JSON and JSONL dumps,
  with flow events linking retry attempts;
- :mod:`repro.analysis.spans` — per-phase attribution,
  queueing-vs-service decomposition, and critical-path extraction over
  span trees.

See ``docs/tracing.md`` for the instrumentation map and how to open an
export in ``chrome://tracing``.
"""

from repro.tracing.export import (
    chrome_trace_events,
    read_spans_jsonl,
    retry_flow_events,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.tracing.sampling import (
    KEEP_CLASSES,
    RetainedTree,
    RetentionPolicy,
    SampledTracer,
    TailSampler,
)
from repro.tracing.span import (
    DATA_PHASES,
    NULL_SPAN,
    PHASE_ADMISSION,
    PHASE_AGENT,
    PHASE_BUS,
    PHASE_COPY,
    PHASE_CPU,
    PHASE_DB,
    PHASE_EVENTLOG,
    PHASE_LOCK,
    PHASE_PLACEMENT,
    PHASE_QUEUE,
    PHASE_RECOVERY,
    PHASE_REQUEST,
    PHASE_RETRY,
    PHASE_TASK,
    PHASES,
    Span,
    SpanContext,
)
from repro.tracing.tracer import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    plane_seconds_from_span,
)

__all__ = [
    "DATA_PHASES",
    "KEEP_CLASSES",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "PHASE_ADMISSION",
    "PHASE_AGENT",
    "PHASE_BUS",
    "PHASE_COPY",
    "PHASE_CPU",
    "PHASE_DB",
    "PHASE_EVENTLOG",
    "PHASE_LOCK",
    "PHASE_PLACEMENT",
    "PHASE_QUEUE",
    "PHASE_RECOVERY",
    "PHASE_REQUEST",
    "PHASE_RETRY",
    "PHASE_TASK",
    "PHASES",
    "RetainedTree",
    "RetentionPolicy",
    "SampledTracer",
    "Span",
    "SpanContext",
    "TailSampler",
    "Tracer",
    "chrome_trace_events",
    "plane_seconds_from_span",
    "read_spans_jsonl",
    "retry_flow_events",
    "write_chrome_trace",
    "write_spans_jsonl",
]
