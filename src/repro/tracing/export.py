"""Span export: Chrome trace-event JSON and JSONL dumps.

``chrome://tracing`` (or https://ui.perfetto.dev) loads the trace-event
format directly: each finished span becomes one complete ("X") event,
grouped one trace per track so a task's span tree renders as a nested
flame. Sibling ``attempt-N`` spans of the same task additionally get
flow ("s"/"f") events chaining attempt N's end to attempt N+1's start,
so a retried task reads as one causal arrow across the forest instead of
disconnected slices. JSONL is the machine-readable dump for offline
analysis and round-tripping.
"""

from __future__ import annotations

import json
import pathlib
import typing

from repro.tracing.span import Span

# Simulated seconds -> trace-event microseconds.
_US = 1_000_000.0

_ATTEMPT_PREFIX = "attempt-"


def _attempt_number(span: Span) -> int | None:
    """Attempt ordinal for ``attempt-N`` spans, else None."""
    if not span.name.startswith(_ATTEMPT_PREFIX):
        return None
    try:
        return int(span.name[len(_ATTEMPT_PREFIX):])
    except ValueError:
        return None


def retry_flow_events(
    spans: typing.Iterable[Span],
) -> list[dict[str, typing.Any]]:
    """Flow events chaining a task's retry attempts in attempt order.

    Sibling finished ``attempt-N`` spans (same trace, same parent) are
    sorted by N; each consecutive pair yields a flow-start ("s") anchored
    at the earlier attempt's end and a flow-finish ("f") at the later
    attempt's start, sharing a flow id. Tasks with a single attempt emit
    nothing.
    """
    chains: dict[tuple[int, int | None], list[tuple[int, Span]]] = {}
    for span in spans:
        if not span.finished:
            continue
        number = _attempt_number(span)
        if number is None:
            continue
        key = (span.context.trace_id, span.context.parent_id)
        chains.setdefault(key, []).append((number, span))
    events: list[dict[str, typing.Any]] = []
    flow_id = 0
    for key in sorted(chains, key=lambda item: (item[0], item[1] or 0)):
        attempts = sorted(chains[key], key=lambda pair: pair[0])
        for (_, prev), (number, nxt) in zip(attempts, attempts[1:]):
            flow_id += 1
            common = {
                "name": "retry",
                "cat": "retry",
                "pid": 1,
                "tid": prev.context.trace_id,
                "id": flow_id,
            }
            events.append({**common, "ph": "s", "ts": prev.end * _US})
            events.append(
                {**common, "ph": "f", "bp": "e", "ts": nxt.start * _US}
            )
    return events


def chrome_trace_events(spans: typing.Iterable[Span]) -> list[dict[str, typing.Any]]:
    """Finished spans as Chrome trace-event dicts (unfinished are skipped).

    Includes retry flow events (see :func:`retry_flow_events`) so
    multi-attempt tasks render with causal arrows between attempts.
    """
    spans = list(spans)
    events: list[dict[str, typing.Any]] = []
    for span in spans:
        if not span.finished:
            continue
        context = span.context
        args: dict[str, typing.Any] = {
            "span_id": context.span_id,
            "parent_id": context.parent_id,
        }
        args.update(span.tags)
        events.append(
            {
                "name": span.name,
                "cat": span.phase,
                "ph": "X",
                "ts": span.start * _US,
                "dur": (span.end - span.start) * _US,
                "pid": 1,
                "tid": context.trace_id,
                "args": args,
            }
        )
    events.extend(retry_flow_events(spans))
    events.sort(
        key=lambda event: (event["tid"], event["ts"], -event.get("dur", 0.0))
    )
    return events


def write_chrome_trace(
    spans: typing.Iterable[Span], path: str | pathlib.Path
) -> int:
    """Write a ``chrome://tracing``-loadable JSON file; returns event count."""
    events = chrome_trace_events(spans)
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return len(events)


def write_spans_jsonl(
    spans: typing.Iterable[Span], path: str | pathlib.Path
) -> int:
    """One span dict per line (finished spans only); returns the count."""
    count = 0
    with open(path, "w") as handle:
        for span in spans:
            if not span.finished:
                continue
            handle.write(json.dumps(span.to_dict()) + "\n")
            count += 1
    return count


def read_spans_jsonl(path: str | pathlib.Path) -> list[dict[str, typing.Any]]:
    """Read a JSONL span dump back as plain dicts (schema of Span.to_dict)."""
    required = {"trace_id", "span_id", "parent_id", "name", "phase", "start", "end", "tags"}
    records: list[dict[str, typing.Any]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            missing = required - set(payload)
            if missing:
                raise ValueError(f"span record missing fields: {sorted(missing)}")
            records.append(payload)
    return records
