"""Span export: Chrome trace-event JSON and JSONL dumps.

``chrome://tracing`` (or https://ui.perfetto.dev) loads the trace-event
format directly: each finished span becomes one complete ("X") event,
grouped one trace per track so a task's span tree renders as a nested
flame. JSONL is the machine-readable dump for offline analysis and
round-tripping.
"""

from __future__ import annotations

import json
import pathlib
import typing

from repro.tracing.span import Span

# Simulated seconds -> trace-event microseconds.
_US = 1_000_000.0


def chrome_trace_events(spans: typing.Iterable[Span]) -> list[dict[str, typing.Any]]:
    """Finished spans as Chrome trace-event dicts (unfinished are skipped)."""
    events: list[dict[str, typing.Any]] = []
    for span in spans:
        if not span.finished:
            continue
        context = span.context
        args: dict[str, typing.Any] = {
            "span_id": context.span_id,
            "parent_id": context.parent_id,
        }
        args.update(span.tags)
        events.append(
            {
                "name": span.name,
                "cat": span.phase,
                "ph": "X",
                "ts": span.start * _US,
                "dur": (span.end - span.start) * _US,
                "pid": 1,
                "tid": context.trace_id,
                "args": args,
            }
        )
    events.sort(key=lambda event: (event["tid"], event["ts"], -event["dur"]))
    return events


def write_chrome_trace(
    spans: typing.Iterable[Span], path: str | pathlib.Path
) -> int:
    """Write a ``chrome://tracing``-loadable JSON file; returns event count."""
    events = chrome_trace_events(spans)
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    with open(path, "w") as handle:
        json.dump(payload, handle)
    return len(events)


def write_spans_jsonl(
    spans: typing.Iterable[Span], path: str | pathlib.Path
) -> int:
    """One span dict per line (finished spans only); returns the count."""
    count = 0
    with open(path, "w") as handle:
        for span in spans:
            if not span.finished:
                continue
            handle.write(json.dumps(span.to_dict()) + "\n")
            count += 1
    return count


def read_spans_jsonl(path: str | pathlib.Path) -> list[dict[str, typing.Any]]:
    """Read a JSONL span dump back as plain dicts (schema of Span.to_dict)."""
    required = {"trace_id", "span_id", "parent_id", "name", "phase", "start", "end", "tags"}
    records: list[dict[str, typing.Any]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            payload = json.loads(line)
            missing = required - set(payload)
            if missing:
                raise ValueError(f"span record missing fields: {sorted(missing)}")
            records.append(payload)
    return records
