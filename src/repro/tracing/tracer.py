"""The tracer: span factory and registry on one simulator's clock.

One :class:`Tracer` serves one :class:`~repro.sim.kernel.Simulator`. It
hands out spans (roots via :meth:`start_trace`, children via
``span.child``), records every span it created, and answers structural
queries (children, subtrees) that the analysis layer builds on.

:class:`NullTracer` is the disabled twin: every request returns
:data:`~repro.tracing.span.NULL_SPAN` and nothing is recorded, so a
simulation constructed without tracing pays only a no-op method call at
each instrumentation point.
"""

from __future__ import annotations

import typing

from repro.tracing.span import NULL_SPAN, PHASE_TASK, Span, SpanContext

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class Tracer:
    """Creates, clocks, and indexes spans for one simulation."""

    enabled: typing.ClassVar[bool] = True

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        self._children: dict[int, list[Span]] = {}
        self._next_trace_id = 0
        self._next_span_id = 0
        self._init_store()

    def _init_store(self) -> None:
        """Set up the span store (subclasses swap in bounded retention)."""
        self.spans: list[Span] = []

    @property
    def now(self) -> float:
        return self.sim.now

    # -- span construction ---------------------------------------------------

    def start_trace(
        self,
        name: str,
        phase: str = PHASE_TASK,
        tags: dict[str, typing.Any] | None = None,
    ) -> Span:
        """Open a new root span (a fresh trace id)."""
        self._next_trace_id += 1
        return self._open(name, phase, self._next_trace_id, None, tags)

    def start_span(
        self,
        name: str,
        phase: str = PHASE_TASK,
        parent: Span | None = None,
        tags: dict[str, typing.Any] | None = None,
    ) -> Span:
        """Open a span; with a parent it joins the parent's trace."""
        if parent is None or parent.is_null:
            return self.start_trace(name, phase=phase, tags=tags)
        return self._open(
            name, phase, parent.context.trace_id, parent.context.span_id, tags
        )

    def _open(
        self,
        name: str,
        phase: str,
        trace_id: int,
        parent_id: int | None,
        tags: dict[str, typing.Any] | None,
    ) -> Span:
        self._next_span_id += 1
        span = Span(
            self,
            name,
            phase,
            SpanContext(trace_id=trace_id, span_id=self._next_span_id, parent_id=parent_id),
            start=self.sim.now,
            tags=tags,
        )
        self._store(span)
        if parent_id is not None:
            self._children.setdefault(parent_id, []).append(span)
        return span

    def _store(self, span: Span) -> None:
        self.spans.append(span)

    def _finished(self, span: Span) -> None:
        """Finish hook, called by :meth:`Span.finish` on first close.

        The base tracer retains everything, so nothing happens here;
        :class:`~repro.tracing.sampling.SampledTracer` overrides it to
        seal finished trace trees through the tail sampler.
        """

    # -- structural queries --------------------------------------------------

    def children(self, span: Span) -> list[Span]:
        return list(self._children.get(span.context.span_id, ()))

    def subtree(self, root: Span) -> list[Span]:
        """``root`` and all its descendants, preorder."""
        out: list[Span] = []
        stack = [root]
        while stack:
            span = stack.pop()
            out.append(span)
            stack.extend(reversed(self._children.get(span.context.span_id, ())))
        return out

    def roots(self) -> list[Span]:
        return [span for span in self.spans if span.context.parent_id is None]

    def finished(self) -> list[Span]:
        return [span for span in self.spans if span.finished]

    def open_spans(self) -> list[Span]:
        return [span for span in self.spans if not span.finished]

    def clear(self) -> None:
        """Forget all recorded spans (long-running sweeps between points)."""
        self.spans.clear()
        self._children.clear()


class NullTracer:
    """Tracing disabled: every span request yields the inert singleton."""

    enabled: typing.ClassVar[bool] = False
    spans: list[Span] = []

    def start_trace(self, name: str, phase: str = PHASE_TASK, tags=None):
        return NULL_SPAN

    def start_span(self, name: str, phase: str = PHASE_TASK, parent=None, tags=None):
        return NULL_SPAN

    def children(self, span) -> list:
        return []

    def subtree(self, root) -> list:
        return []

    def roots(self) -> list:
        return []

    def finished(self) -> list:
        return []

    def open_spans(self) -> list:
        return []

    def clear(self) -> None:
        pass


NULL_TRACER = NullTracer()


def plane_seconds_from_span(root: Span, plane: str) -> float:
    """Sum of successful operation-phase span durations on one plane.

    Operation phases (:func:`repro.operations.base.phase`) stamp their
    spans with a ``plane`` tag; this sums them over ``root``'s subtree.
    It is the span-side accounting that
    :meth:`repro.traces.records.TraceRecord.from_task` cross-checks
    against the task's own phase list. Error-marked spans are excluded to
    mirror task phase accounting (a failed phase body appends nothing).
    """
    tracer = root.tracer
    total = 0.0
    for span in tracer.subtree(root):
        if span.finished and span.ok and span.tags.get("plane") == plane:
            total += span.duration
    return total
