"""Span primitives: causally-linked timed intervals on simulated time.

A :class:`Span` is one named interval of simulated time with a parent
link, a **phase tag** from the control-plane taxonomy below, and free-form
tags. Spans form trees: one tree per traced unit of work (a management
task, a director request, an event-log flush). The tree is the raw
material for per-phase latency attribution, queueing-vs-service
decomposition, and critical-path extraction (``repro.analysis.spans``).

Tracing must cost nothing when disabled, so the module also defines
:data:`NULL_SPAN`, a shared inert singleton: its ``child`` returns itself
and ``finish`` does nothing. Components accept a span argument defaulting
to :data:`NULL_SPAN` and guard their instrumentation on ``span.is_null``,
so an untraced run allocates no span objects at all.
"""

from __future__ import annotations

import dataclasses
import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.tracing.tracer import Tracer

# -- the phase taxonomy -------------------------------------------------------
#
# Every span carries one of these tags; the analysis pipeline aggregates
# attributed time by tag. ``queue`` marks time spent waiting for a
# control-plane resource (dispatch slot, CPU worker, DB connection, agent
# slot); the others mark the service the wait was for.

PHASE_TASK = "task"            # task/attempt framing (self time = scheduling gaps)
PHASE_QUEUE = "queue"          # waiting on a control-plane resource
PHASE_ADMISSION = "admission"  # API-gateway admission (token bucket, shedding)
PHASE_PLACEMENT = "placement"  # placement scoring + its inventory reads
PHASE_DB = "db"                # database statements
PHASE_AGENT = "agent"          # host-agent (hostd) calls
PHASE_COPY = "copy"            # data-plane byte moving (incl. copy-slot waits)
PHASE_RETRY = "retry"          # backoff between attempts / re-placements
PHASE_CPU = "cpu"              # management-server CPU phases
PHASE_LOCK = "lock"            # inventory lock acquisition
PHASE_REQUEST = "request"      # director request / per-VM framing
PHASE_EVENTLOG = "eventlog"    # event-log flush machinery
PHASE_RECOVERY = "recovery"    # post-crash journal replay + reconciliation
PHASE_BUS = "bus"              # message-bus publish/deliver/redeliver hops

PHASES = (
    PHASE_TASK,
    PHASE_QUEUE,
    PHASE_ADMISSION,
    PHASE_PLACEMENT,
    PHASE_DB,
    PHASE_AGENT,
    PHASE_COPY,
    PHASE_RETRY,
    PHASE_CPU,
    PHASE_LOCK,
    PHASE_REQUEST,
    PHASE_EVENTLOG,
    PHASE_RECOVERY,
    PHASE_BUS,
)

# Phases that are data-plane work; everything else is control-plane.
DATA_PHASES = frozenset({PHASE_COPY})


@dataclasses.dataclass(frozen=True)
class SpanContext:
    """Identity of one span: which trace it belongs to and its parent."""

    trace_id: int
    span_id: int
    parent_id: int | None


class Span:
    """One named, phase-tagged interval of simulated time."""

    __slots__ = ("tracer", "name", "phase", "context", "start", "end", "tags")

    is_null: typing.ClassVar[bool] = False

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        phase: str,
        context: SpanContext,
        start: float,
        tags: dict[str, typing.Any] | None = None,
    ) -> None:
        if phase not in PHASES:
            raise ValueError(f"unknown phase {phase!r}; known: {PHASES}")
        self.tracer = tracer
        self.name = name
        self.phase = phase
        self.context = context
        self.start = start
        self.end: float | None = None
        self.tags: dict[str, typing.Any] = tags or {}

    # -- lifecycle -----------------------------------------------------------

    def child(
        self,
        name: str,
        phase: str = PHASE_TASK,
        tags: dict[str, typing.Any] | None = None,
    ) -> "Span":
        """Open a child span at the current simulated time."""
        return self.tracer.start_span(name, phase=phase, parent=self, tags=tags)

    def finish(self, error: str | None = None) -> "Span":
        """Close the span at the current simulated time.

        Idempotent: the first finish wins (cleanup paths may race normal
        completion when generators unwind). An ``error`` marks the span's
        work as failed without hiding its duration.
        """
        if self.end is None:
            self.end = self.tracer.now
            if error is not None:
                self.tags["error"] = error
            self.tracer._finished(self)
        return self

    def annotate(self, key: str, value: typing.Any) -> None:
        self.tags[key] = value

    # -- accessors -----------------------------------------------------------

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        if self.end is None:
            raise RuntimeError(f"span {self.name!r} not finished")
        return self.end - self.start

    @property
    def ok(self) -> bool:
        return "error" not in self.tags

    def to_dict(self) -> dict[str, typing.Any]:
        return {
            "trace_id": self.context.trace_id,
            "span_id": self.context.span_id,
            "parent_id": self.context.parent_id,
            "name": self.name,
            "phase": self.phase,
            "start": self.start,
            "end": self.end,
            "tags": dict(self.tags),
        }

    def __repr__(self) -> str:
        window = f"{self.start:.3f}..{'open' if self.end is None else f'{self.end:.3f}'}"
        return f"<Span {self.name!r} phase={self.phase} {window}>"


class _NullSpan:
    """The inert span: every operation is a no-op, ``child`` returns self.

    A single shared instance (:data:`NULL_SPAN`) stands in for "tracing
    off" everywhere, so instrumented code needs no conditionals beyond an
    optional ``is_null`` fast-path guard.
    """

    __slots__ = ()

    is_null: typing.ClassVar[bool] = True
    phase = PHASE_TASK
    name = "null"
    start = 0.0
    end = 0.0
    tags: dict[str, typing.Any] = {}
    finished = True
    duration = 0.0
    ok = True

    def child(self, name: str, phase: str = PHASE_TASK, tags=None) -> "_NullSpan":
        return self

    def finish(self, error: str | None = None) -> "_NullSpan":
        return self

    def annotate(self, key: str, value: typing.Any) -> None:
        pass

    def __repr__(self) -> str:
        return "<NullSpan>"


NULL_SPAN = _NullSpan()
