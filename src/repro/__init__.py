"""repro — reproduction of Soundararajan & Spracklen, IISWC 2013.

*Revisiting the management control plane in virtualized cloud computing
infrastructure.*

The package models a virtualized cloud infrastructure end-to-end — hosts,
datastores, VMs, a vCenter-style management control plane, and a
vCloud-Director-style self-service layer — as a deterministic discrete-event
simulation, then characterizes the management workload that self-service
clouds induce, reproducing the paper's central finding: once linked clones
make the *data* plane cheap, the *control* plane becomes the limiting factor
in cloud provisioning.

Quickstart::

    from repro import CloudManagementProfiler, profiles

    profiler = CloudManagementProfiler(profiles.CLOUD_A, seed=7)
    result = profiler.run(duration=4 * 3600.0)
    print(result.report())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reconstructed table/figure index.
"""

from repro.core.experiments import EXPERIMENTS, ExperimentResult, run_experiment
from repro.core.profiler import CloudManagementProfiler, ProfileResult
from repro.core.scenario import Scenario, ScenarioResult
from repro.workloads import profiles

__version__ = "1.0.0"

__all__ = [
    "CloudManagementProfiler",
    "EXPERIMENTS",
    "ExperimentResult",
    "ProfileResult",
    "Scenario",
    "ScenarioResult",
    "profiles",
    "run_experiment",
    "__version__",
]
