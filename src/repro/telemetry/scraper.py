"""The scraper: a sim-process that snapshots metrics on a cadence.

Each tick it reads every telemetry family, every probe, and every watched
legacy :class:`~repro.sim.stats.MetricsRegistry`, and lands one sample per
metric in that metric's :class:`~repro.telemetry.rollup.RollupSeries`:

- counters (and latency-recorder counts) contribute the *delta* since the
  previous scrape, so window sums read as rates;
- gauges and probes contribute their instantaneous level;
- log-bucket histograms contribute the bucket-wise delta, merged into the
  window's sketch.

Scrape neutrality: the scraper only *reads* model state — it requests no
resources, draws no randomness, and injects no delays beyond its own
timer. Its timer events interleave with the workload's on the shared
sequence counter, but relative order among workload events is preserved,
so task schedules are identical with telemetry on or off (pinned by a
differential test). With telemetry off no scraper exists at all and the
simulation is untouched.
"""

from __future__ import annotations

import typing

from repro.sim.stats import Counter, Gauge, LatencyRecorder, LogHistogram
from repro.telemetry.metrics import Probe, THistogram, format_metric_id

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.metrics import Telemetry


class _HistogramCursor:
    """Last-seen cumulative state of one histogram, for delta scrapes."""

    __slots__ = ("buckets", "zeros", "count", "sum", "min", "max")

    def __init__(self) -> None:
        self.buckets: dict[int, int] = {}
        self.zeros = 0
        self.count = 0
        self.sum = 0.0


class Scraper:
    """Snapshots every registry on a cadence into roll-up series."""

    def __init__(self, telemetry: "Telemetry") -> None:
        self.telemetry = telemetry
        self.scrapes = 0
        self.started = False
        self._until: float | None = None
        self._last_counter: dict[str, float] = {}
        self._hist_cursor: dict[str, _HistogramCursor] = {}

    # -- lifecycle -----------------------------------------------------------

    def start(self, until: float | None = None) -> None:
        if self.started:
            raise RuntimeError("scraper already started")
        self.started = True
        self._until = until
        self.telemetry.sim.spawn(self._loop(), name="telemetry:scraper")

    def stop(self) -> None:
        self._until = self.telemetry.sim.now

    def _loop(self) -> typing.Generator:
        sim = self.telemetry.sim
        interval = self.telemetry.scrape_interval_s
        while True:
            yield sim.timeout(interval)
            if self._until is not None and sim.now > self._until:
                return
            self.scrape()

    # -- one scrape ----------------------------------------------------------

    def scrape(self) -> None:
        now = self.telemetry.sim.now
        for family in self.telemetry.families.values():
            for child in family.children():
                metric_id = format_metric_id(child.name, child.labels)
                if family.kind == "counter":
                    self._sample_counter(metric_id, child.value, now)
                elif family.kind == "gauge":
                    self._sample_gauge(metric_id, child.value, now)
                else:
                    self._sample_histogram(metric_id, child.hist, now)
        for probe in self.telemetry.probes:
            metric_id = format_metric_id(probe.name, probe.labels)
            self._sample_gauge(metric_id, probe.value, now)
        for registry, labels in self.telemetry.watched:
            for key, metric in registry.all().items():
                metric_id = format_metric_id(key, labels)
                if isinstance(metric, Counter):
                    self._sample_counter(metric_id, metric.value, now)
                elif isinstance(metric, Gauge):
                    self._sample_gauge(metric_id, metric.value, now)
                elif isinstance(metric, LatencyRecorder):
                    # Count + total seconds as counters: a trailing
                    # window's seconds-sum over count-sum is the mean
                    # latency in that window (triage leans on this to
                    # compare recent vs baseline service times).
                    count_id = format_metric_id(f"{key}:count", labels)
                    self._sample_counter(count_id, float(metric.count), now)
                    seconds_id = format_metric_id(f"{key}:seconds", labels)
                    self._sample_counter(
                        seconds_id, float(metric.mean * metric.count), now
                    )
                elif isinstance(metric, LogHistogram):
                    self._sample_histogram(metric_id, metric, now)
                # Fixed-bin Histogram / TimeSeries keep their own shape;
                # they are post-run analysis structures, not scrape targets.
        self.scrapes += 1
        self.telemetry.monitor.evaluate(now)

    def _sample_counter(self, metric_id: str, value: float, now: float) -> None:
        last = self._last_counter.get(metric_id, 0.0)
        self._last_counter[metric_id] = value
        self.telemetry.rollup(metric_id, "counter").record(now, value - last)

    def _sample_gauge(self, metric_id: str, value: float, now: float) -> None:
        self.telemetry.rollup(metric_id, "gauge").record(now, value)

    def _sample_histogram(self, metric_id: str, hist: LogHistogram, now: float) -> None:
        cursor = self._hist_cursor.get(metric_id)
        if cursor is None:
            cursor = self._hist_cursor[metric_id] = _HistogramCursor()
        if hist.count == cursor.count:
            return
        delta = LogHistogram(metric_id, base=hist.base)
        delta.zeros = hist.zeros - cursor.zeros
        for index, count in hist._buckets.items():
            previous = cursor.buckets.get(index, 0)
            if count > previous:
                delta._buckets[index] = count - previous
        delta._count = hist.count - cursor.count
        delta._sum = hist.total - cursor.sum
        if hist.exemplars:
            # Carry exemplars only for buckets that grew this window, so a
            # window's exemplar really is an observation from that window.
            for index in delta._buckets:
                entry = hist.exemplars.get(index)
                if entry is not None:
                    if delta.exemplars is None:
                        delta.exemplars = {}
                    delta.exemplars[index] = entry
        # Exact min/max of just-this-delta are unknowable from cumulative
        # state; bound them by the delta's own bucket range.
        if delta._buckets:
            low = min(delta._buckets)
            high = max(delta._buckets)
            delta._min = hist.base ** low
            delta._max = hist.base ** (high + 1)
        elif delta.zeros:
            delta._min = 0.0
            delta._max = 0.0
        cursor.buckets = dict(hist._buckets)
        cursor.zeros = hist.zeros
        cursor.count = hist.count
        cursor.sum = hist.total
        self.telemetry.rollup(metric_id, "histogram").absorb_histogram(now, delta)
