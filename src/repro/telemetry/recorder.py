"""The incident flight recorder: alert-triggered self-contained bundles.

The three observability pillars — span traces, metric roll-ups with SLO
burn alerts, and triage verdicts — each answer a different question; the
recorder makes them answer it *together, at incident time*. Attached to
the SLO monitor's fire hook (after triage, so the verdict exists) and the
server's crash hook, it snapshots into one :class:`IncidentBundle`:

- the fired alerts and their burn windows;
- recent vs baseline roll-up summaries for every metric the firing
  rules reference;
- bucket exemplars from those windows (trace ids of concrete slow
  observations — see :meth:`repro.sim.stats.LogHistogram.record`);
- the retained span trees the exemplars name, plus error/retry/slow
  trees overlapping the incident window (from a
  :class:`~repro.tracing.sampling.SampledTracer`'s bounded store);
- per-topic bus delivery stats and recent dead-letter attributions;
- the triage verdict with its full evidence chain.

A bundle is plain JSON (:meth:`IncidentBundle.to_dict` /
:meth:`IncidentBundle.from_dict` round-trip exactly), so it can be
shipped out of the simulation and read without any repro code — the
"evidence at incident time" artifact the paper's post-hoc diagnosis
story calls for.

Like every observability layer here, the recorder is **read-only with
respect to the simulation**: it runs inside the scraper's evaluate step
(or the crash call), touches only roll-ups/spans/stats, draws no
randomness, and schedules stay byte-identical with it attached
(``tests/telemetry/test_recorder_neutrality.py``). :data:`NULL_RECORDER`
is the zero-cost off switch.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.telemetry.rollup import RollupSeries, Window
from repro.tracing.tracer import NULL_TRACER

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.metrics import Telemetry
    from repro.telemetry.slo import Alert, SloMonitor

#: Bundle schema version, embedded in every export.
BUNDLE_VERSION = 1

TRIGGER_ALERT = "slo-alert"
TRIGGER_CRASH = "server-crash"

_REQUIRED_FIELDS = (
    "trigger",
    "fired_at",
    "alerts",
    "metrics",
    "exemplars",
    "traces",
    "bus",
    "verdict",
    "retention",
)


@dataclasses.dataclass
class IncidentBundle:
    """One incident's evidence, frozen at snapshot time (all plain JSON)."""

    trigger: str
    fired_at: float
    alerts: list[dict[str, typing.Any]]
    metrics: dict[str, typing.Any]
    exemplars: list[dict[str, typing.Any]]
    traces: list[dict[str, typing.Any]]
    bus: dict[str, typing.Any]
    verdict: dict[str, typing.Any] | None
    retention: dict[str, int] | None

    def to_dict(self) -> dict[str, typing.Any]:
        return {
            "version": BUNDLE_VERSION,
            "trigger": self.trigger,
            "fired_at": self.fired_at,
            "alerts": self.alerts,
            "metrics": self.metrics,
            "exemplars": self.exemplars,
            "traces": self.traces,
            "bus": self.bus,
            "verdict": self.verdict,
            "retention": self.retention,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, typing.Any]) -> "IncidentBundle":
        missing = [field for field in _REQUIRED_FIELDS if field not in payload]
        if missing:
            raise ValueError(f"bundle missing fields: {missing}")
        return cls(**{field: payload[field] for field in _REQUIRED_FIELDS})

    # -- convenience queries -------------------------------------------------

    @property
    def alert_names(self) -> list[str]:
        return [alert["rule"] for alert in self.alerts]

    @property
    def trace_ids(self) -> list[int]:
        return [tree["trace_id"] for tree in self.traces]

    def spans_overlapping(self, lo: float, hi: float) -> int:
        """Retained spans whose interval intersects [lo, hi]."""
        hits = 0
        for tree in self.traces:
            for span in tree["spans"]:
                end = span["end"] if span["end"] is not None else span["start"]
                if span["start"] <= hi and end >= lo:
                    hits += 1
        return hits

    def render(self) -> list[str]:
        """Human-readable drill-down (dashboard / ``repro incident``)."""
        lines = [
            f"t={self.fired_at:8.1f}s  {self.trigger}"
            f"  alerts=[{','.join(self.alert_names)}]"
        ]
        verdict = self.verdict
        if verdict is not None and verdict.get("hypotheses"):
            top = verdict["hypotheses"][0]
            lines.append(
                f"  verdict: {top['kind']} conf={top['confidence']:.2f}"
                f" resource={top['resource']} phase={top['phase']}"
            )
            for item in top.get("evidence", ()):
                lines.append(f"    - {item['statement']} (={item['value']:g})")
        for metric_id, windows in sorted(self.metrics.items()):
            recent = windows["recent"]
            baseline = windows["baseline"]
            lines.append(
                f"  {metric_id}: recent mean={recent['mean']:.3g}"
                f" p99={recent['p99']:.3g} n={recent['count']:.0f}"
                f" | baseline mean={baseline['mean']:.3g}"
                f" n={baseline['count']:.0f}"
            )
        if self.exemplars:
            lines.append(
                "  exemplars: "
                + ", ".join(
                    f"{entry['metric']}<= {entry['bucket_le']:.3g}s"
                    f" -> trace {entry['trace_id']}"
                    for entry in self.exemplars[:4]
                )
            )
        keeps: dict[str, int] = {}
        for tree in self.traces:
            keeps[tree["keep"]] = keeps.get(tree["keep"], 0) + 1
        span_total = sum(len(tree["spans"]) for tree in self.traces)
        lines.append(
            f"  traces: {len(self.traces)} retained"
            f" ({', '.join(f'{k}={v}' for k, v in sorted(keeps.items())) or 'none'})"
            f", {span_total} spans"
        )
        for topic, stats in sorted(self.bus.items()):
            if stats["dead_lettered"] or stats["redelivered"] or stats["dropped"]:
                lines.append(
                    f"  bus {topic}: dead={stats['dead_lettered']}"
                    f" redeliv={stats['redelivered']} drop={stats['dropped']}"
                    f" depth={stats['depth']}"
                )
        return lines


def _merge_between(series: RollupSeries, lo: float, hi: float) -> Window:
    """Merged level-0 roll-up over [lo, hi] (the baseline-window read)."""
    merged = Window(lo, max(0.0, hi - lo), base=series.base)
    for window in series.windows(level=0, include_open=True):
        if window.end > lo and window.start < hi and window.count:
            merged.count += window.count
            merged.sum += window.sum
            merged.min = min(merged.min, window.min)
            merged.max = max(merged.max, window.max)
            merged.last = window.last
            merged.hist.merge(window.hist)
    return merged


class FlightRecorder:
    """Snapshots incident bundles on every alert firing and server crash."""

    is_null = False

    def __init__(
        self,
        telemetry: "Telemetry",
        tracer=NULL_TRACER,
        bus=None,
        triage=None,
        lookback_s: float = 180.0,
        baseline_s: float = 420.0,
        refractory_s: float = 60.0,
        max_bundles: int = 32,
        max_trees: int = 24,
        max_spans: int = 2000,
    ) -> None:
        self.telemetry = telemetry
        self.tracer = tracer
        self.bus = bus
        self.triage = triage
        self.lookback_s = lookback_s
        self.baseline_s = baseline_s
        self.refractory_s = refractory_s
        self.max_bundles = max_bundles
        self.max_trees = max_trees
        self.max_spans = max_spans
        self.bundles: list[IncidentBundle] = []
        self.snapshots = 0

    def attach(
        self, monitor: "SloMonitor | None" = None, server=None
    ) -> "FlightRecorder":
        """Subscribe to alert firings (and optionally a server's crashes).

        Attach *after* the triage engine so its verdict exists by the time
        the bundle is built — listener order on the monitor is call order.
        """
        target = monitor if monitor is not None else self.telemetry.monitor
        target.listeners.append(self._on_alert)
        if server is not None:
            server.crash_listeners.append(self._on_crash)
        return self

    # -- hooks ---------------------------------------------------------------

    def _on_alert(self, alert: "Alert", now: float) -> None:
        # Alerts bursting within the refractory window describe one
        # incident: rebuild the last bundle with the union of alerts and
        # the newest evidence instead of multiplying bundles.
        last = self.bundles[-1] if self.bundles else None
        if (
            last is not None
            and last.trigger == TRIGGER_ALERT
            and now - last.fired_at <= self.refractory_s
        ):
            alerts = self._active_alerts()
            seen = {a.rule for a in alerts}
            for name in last.alert_names:
                if name not in seen:
                    alerts.append(_NamedAlert(name))
                    seen.add(name)
            self.bundles[-1] = self._snapshot(TRIGGER_ALERT, now, alerts)
            return
        self._append(self._snapshot(TRIGGER_ALERT, now, [alert]))

    def _on_crash(self, server, now: float) -> None:
        self._append(
            self._snapshot(
                TRIGGER_CRASH, now, self._active_alerts(), crash_of=server.name
            )
        )

    def _append(self, bundle: IncidentBundle) -> None:
        self.bundles.append(bundle)
        if len(self.bundles) > self.max_bundles:
            del self.bundles[0]

    def _active_alerts(self) -> list:
        return list(self.telemetry.monitor.active_alerts())

    # -- the snapshot --------------------------------------------------------

    def _snapshot(
        self,
        trigger: str,
        now: float,
        alerts: typing.Sequence,
        crash_of: str | None = None,
    ) -> IncidentBundle:
        self.snapshots += 1
        alert_dicts = [self._alert_dict(alert) for alert in alerts]
        if crash_of is not None:
            alert_dicts.insert(
                0,
                {
                    "rule": f"server-crash:{crash_of}",
                    "fired_at": now,
                    "resolved_at": None,
                    "peak_burn": 0.0,
                    "window": None,
                },
            )
        metric_ids = self._referenced_metrics(alert["rule"] for alert in alert_dicts)
        metrics: dict[str, typing.Any] = {}
        exemplars: list[dict[str, typing.Any]] = []
        for metric_id in sorted(metric_ids):
            series = self.telemetry.rollups.get(metric_id)
            if series is None:
                continue
            recent = series.trailing(self.lookback_s, now)
            baseline = _merge_between(
                series,
                now - self.lookback_s - self.baseline_s,
                now - self.lookback_s,
            )
            metrics[metric_id] = {
                "recent": recent.summary(),
                "baseline": baseline.summary(),
            }
            for bucket_le, trace_id, value in recent.hist.exemplar_entries():
                exemplars.append(
                    {
                        "metric": metric_id,
                        "bucket_le": bucket_le,
                        "trace_id": trace_id,
                        "value": value,
                    }
                )
        return IncidentBundle(
            trigger=trigger,
            fired_at=now,
            alerts=alert_dicts,
            metrics=metrics,
            exemplars=exemplars,
            traces=self._trace_section(now, exemplars),
            bus=self._bus_section(),
            verdict=self._verdict_section(now, [a["rule"] for a in alert_dicts]),
            retention=self._retention_section(),
        )

    @staticmethod
    def _alert_dict(alert) -> dict[str, typing.Any]:
        window = getattr(alert, "window", None)
        return {
            "rule": alert.rule,
            "fired_at": getattr(alert, "fired_at", 0.0),
            "resolved_at": getattr(alert, "resolved_at", None),
            "peak_burn": getattr(alert, "peak_burn", 0.0),
            "window": None
            if window is None
            else {
                "short_s": window.short_s,
                "long_s": window.long_s,
                "threshold": window.threshold,
            },
        }

    def _referenced_metrics(self, rule_names: typing.Iterable[str]) -> set[str]:
        """Metric ids the firing rules read, resolved from the catalogue."""
        wanted = set(rule_names)
        out: set[str] = set()
        for rule in self.telemetry.monitor.rules:
            if rule.name not in wanted:
                continue
            metric = getattr(rule, "metric", "")
            if metric:
                out.add(metric)
            bad = getattr(rule, "bad_metric", "")
            if bad:
                out.add(bad)
            out.update(getattr(rule, "total_metrics", ()))
            prefix = getattr(rule, "metric_prefix", "")
            if prefix:
                out.update(self.telemetry.series_matching(prefix))
        return out

    def _trace_section(
        self, now: float, exemplars: list[dict[str, typing.Any]]
    ) -> list[dict[str, typing.Any]]:
        """Exemplar-named trees first, then incident-window diagnostics."""
        retained = getattr(self.tracer, "retained_trees", None)
        if retained is None:
            return []
        picked: list = []
        seen: set[int] = set()
        for entry in exemplars:
            tree = self.tracer.retained_tree(entry["trace_id"])
            if tree is not None and tree.trace_id not in seen:
                picked.append(tree)
                seen.add(tree.trace_id)
        lo = now - self.lookback_s
        for tree in retained():
            if tree.trace_id in seen or tree.keep == "normal":
                continue
            if tree.overlaps(lo, now):
                picked.append(tree)
                seen.add(tree.trace_id)
        out: list[dict[str, typing.Any]] = []
        span_budget = self.max_spans
        for tree in picked[: self.max_trees]:
            if span_budget - len(tree.spans) < 0 and out:
                break
            span_budget -= len(tree.spans)
            out.append(
                {
                    "trace_id": tree.trace_id,
                    "keep": tree.keep,
                    "sealed_at": tree.sealed_at,
                    "spans": [span.to_dict() for span in tree.spans],
                }
            )
        return out

    def _bus_section(self) -> dict[str, typing.Any]:
        bus = self.bus
        if bus is None or not getattr(bus, "mediated", False):
            return {}
        out: dict[str, typing.Any] = {}
        for name, stats in bus.topic_stats().items():
            topic = bus.topic(name)
            entry = dataclasses.asdict(stats)
            entry["depth"] = topic.depth
            entry["recent_dead"] = [
                {"key": key, "trace_id": trace_id, "time": when, "reason": reason}
                for key, trace_id, when, reason in topic.recent_dead
            ]
            out[name] = entry
        return out

    def _verdict_section(
        self, now: float, alerts: list[str]
    ) -> dict[str, typing.Any] | None:
        triage = self.triage
        if triage is None or getattr(triage, "is_null", True):
            return None
        verdicts = triage.verdicts
        # The engine attaches before the recorder, so on an alert-burst
        # snapshot its freshest verdict already covers this incident.
        if verdicts and now - verdicts[-1].fired_at <= self.refractory_s:
            verdict = verdicts[-1]
        else:
            verdict = triage.triage_now(now, alerts=alerts)
        return {
            "fired_at": verdict.fired_at,
            "alerts": list(verdict.alerts),
            "hypotheses": [
                {
                    "kind": h.kind,
                    "resource": h.resource,
                    "phase": h.phase,
                    "confidence": h.confidence,
                    "rule": h.rule,
                    "evidence": [
                        {
                            "signal": e.signal,
                            "statement": e.statement,
                            "value": e.value,
                            "baseline": e.baseline,
                        }
                        for e in h.evidence
                    ],
                }
                for h in verdict.hypotheses
            ],
        }

    def _retention_section(self) -> dict[str, int] | None:
        summary = getattr(self.tracer, "retention_summary", None)
        return summary() if summary is not None else None

    def render(self) -> list[str]:
        lines: list[str] = []
        for bundle in self.bundles:
            lines.extend(bundle.render())
        return lines


class _NamedAlert:
    """Stand-in for an already-resolved alert merged into a refreshed bundle."""

    __slots__ = ("rule",)

    fired_at = 0.0
    resolved_at = None
    peak_burn = 0.0
    window = None

    def __init__(self, rule: str) -> None:
        self.rule = rule


class NullFlightRecorder:
    """Recorder off: attaching is a no-op and nothing is ever recorded."""

    is_null = True
    bundles: tuple = ()
    snapshots = 0

    def attach(self, monitor=None, server=None) -> "NullFlightRecorder":
        return self

    def render(self) -> list:
        return []


NULL_RECORDER = NullFlightRecorder()
