"""Windowed roll-up series: bounded-memory time-series of scraped samples.

Modeled on vCenter's stats level/rollup hierarchy: fine-grained windows
(level 0) are kept for a bounded span, then folded into coarser windows
(level 1, 2, ...) instead of growing without bound — the same shape the
paper's management server applies to the host statistics it collects.
Every window keeps exact count/sum/min/max plus a mergeable
:class:`~repro.sim.stats.LogHistogram`, so a roll-up of roll-ups equals
the roll-up of the raw samples (exactly for count/sum/min/max, within one
log bucket for quantiles) — the invariance the property tests pin down.
"""

from __future__ import annotations

import math
import typing

from repro.sim.stats import LOG_HISTOGRAM_BASE, LogHistogram

#: Default retention: (window seconds, windows kept) per level. Each
#: level's window must be an integer multiple of the previous level's.
#: 60 x 60 s (one hour fine), 48 x 5 min (four hours), 48 x 30 min (a day).
DEFAULT_RETENTION: tuple[tuple[float, int], ...] = (
    (60.0, 60),
    (300.0, 48),
    (1800.0, 48),
)


class Window:
    """One roll-up window: exact scalar stats + a quantile sketch."""

    __slots__ = ("start", "width", "count", "sum", "min", "max", "last", "hist")

    def __init__(self, start: float, width: float, base: float = LOG_HISTOGRAM_BASE) -> None:
        self.start = start
        self.width = width
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.last = 0.0
        self.hist = LogHistogram(base=base)

    @property
    def end(self) -> float:
        return self.start + self.width

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    @property
    def rate(self) -> float:
        """Sum per second — the window rate for counter-delta series."""
        return self.sum / self.width if self.width > 0 else 0.0

    def record(self, value: float) -> None:
        self.count += 1
        self.sum += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        self.last = value
        self.hist.record(value)

    def absorb_histogram(self, delta: LogHistogram) -> None:
        """Fold a pre-aggregated histogram delta (scraped cumulative diff)."""
        if delta.count == 0:
            return
        self.count += delta.count
        self.sum += delta.total
        self.min = min(self.min, delta.min)
        self.max = max(self.max, delta.max)
        self.last = delta.max
        self.hist.merge(delta)

    def merge(self, other: "Window") -> None:
        """Fold a later window into this one (coarser-level roll-up)."""
        if other.count:
            self.count += other.count
            self.sum += other.sum
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)
            self.last = other.last
            self.hist.merge(other.hist)
        self.width = max(self.width, other.end - self.start)

    def p(self, fraction: float) -> float:
        """Quantile estimate over the window's samples (bucket upper bound)."""
        return self.hist.quantile(fraction)

    def summary(self) -> dict[str, float]:
        empty = self.count == 0
        return {
            "start": self.start,
            "width": self.width,
            "count": self.count,
            "sum": self.sum,
            "min": 0.0 if empty else self.min,
            "mean": self.mean,
            "max": 0.0 if empty else self.max,
            "p50": self.p(0.50),
            "p99": self.p(0.99),
        }


class RollupSeries:
    """A bounded multi-level roll-up of one metric's scraped samples.

    ``record`` lands samples in the open level-0 window (windows are
    aligned to ``start % width == 0``). When level ``i`` exceeds its
    retention it folds its oldest windows into level ``i+1``; the top
    level evicts. Total memory is therefore fixed by the retention spec,
    independent of run length — the strict bound the scraper relies on.
    """

    __slots__ = ("name", "kind", "retention", "base", "_levels", "_open", "_aggs")

    def __init__(
        self,
        name: str,
        kind: str = "gauge",
        retention: tuple[tuple[float, int], ...] = DEFAULT_RETENTION,
        base: float = LOG_HISTOGRAM_BASE,
    ) -> None:
        if not retention:
            raise ValueError("retention must name at least one level")
        previous = None
        for window_s, keep in retention:
            if window_s <= 0 or keep < 1:
                raise ValueError(f"bad retention level ({window_s}, {keep})")
            if previous is not None:
                ratio = window_s / previous
                if abs(ratio - round(ratio)) > 1e-9 or ratio < 1:
                    raise ValueError(
                        "each level's window must be an integer multiple "
                        f"of the previous ({previous} -> {window_s})"
                    )
            previous = window_s
        self.name = name
        self.kind = kind
        self.retention = retention
        self.base = base
        # Closed windows per level, oldest first.
        self._levels: list[list[Window]] = [[] for _ in retention]
        # The open (still-filling) level-0 window.
        self._open: Window | None = None
        # Per-level aggregation windows being assembled for the next level.
        self._aggs: list[Window | None] = [None] * len(retention)

    # -- recording -----------------------------------------------------------

    def _window_for(self, time: float) -> Window:
        width = self.retention[0][0]
        start = math.floor(time / width) * width
        open_window = self._open
        if open_window is None:
            self._open = open_window = Window(start, width, base=self.base)
        elif start > open_window.start:
            self._close(open_window)
            self._open = open_window = Window(start, width, base=self.base)
        elif start < open_window.start:
            raise ValueError(
                f"sample at {time} predates open window {open_window.start}"
            )
        return open_window

    def record(self, time: float, value: float) -> None:
        """Land one scalar sample (gauge level or counter delta)."""
        self._window_for(time).record(value)

    def absorb_histogram(self, time: float, delta: LogHistogram) -> None:
        """Land one scraped histogram delta."""
        self._window_for(time).absorb_histogram(delta)

    def _close(self, window: Window) -> None:
        self._push(0, window)

    def _push(self, level: int, window: Window) -> None:
        windows = self._levels[level]
        windows.append(window)
        keep = self.retention[level][1]
        while len(windows) > keep:
            oldest = windows.pop(0)
            self._fold_up(level, oldest)

    def _fold_up(self, level: int, window: Window) -> None:
        if level + 1 >= len(self.retention):
            return  # top level: evict
        width = self.retention[level + 1][0]
        start = math.floor(window.start / width) * width
        agg = self._aggs[level + 1]
        if agg is not None and agg.start != start:
            self._push(level + 1, agg)
            agg = None
        if agg is None:
            agg = Window(start, width, base=self.base)
            self._aggs[level + 1] = agg
        agg.merge(window)

    # -- queries -------------------------------------------------------------

    def windows(self, level: int = 0, include_open: bool = True) -> list[Window]:
        """Windows at one level, oldest first (open window last)."""
        out = list(self._levels[level])
        if level > 0 and self._aggs[level] is not None:
            out.append(self._aggs[level])
        if level == 0 and include_open and self._open is not None:
            out.append(self._open)
        return out

    def latest(self) -> Window | None:
        if self._open is not None:
            return self._open
        return self._levels[0][-1] if self._levels[0] else None

    def last_value(self) -> float:
        window = self.latest()
        return window.last if window is not None else 0.0

    def trailing(self, seconds: float, now: float) -> Window:
        """Merged roll-up of all level-0 windows overlapping [now-s, now].

        This is the roll-up-of-roll-ups path: the result is identical (to
        within one log bucket on quantiles) to rolling up the raw samples.
        """
        cutoff = now - seconds
        merged = Window(cutoff, seconds, base=self.base)
        for window in self.windows(level=0, include_open=True):
            if window.end > cutoff and window.start < now:
                if window.count:
                    merged.count += window.count
                    merged.sum += window.sum
                    merged.min = min(merged.min, window.min)
                    merged.max = max(merged.max, window.max)
                    merged.last = window.last
                    merged.hist.merge(window.hist)
        return merged

    def total_windows(self) -> int:
        return sum(len(level) for level in self._levels) + (
            1 if self._open is not None else 0
        ) + sum(1 for agg in self._aggs if agg is not None)

    def series(self, level: int = 0, field: str = "mean") -> list[tuple[float, float]]:
        """(window start, field) pairs for plotting/export."""
        out = []
        for window in self.windows(level=level):
            summary = window.summary()
            out.append((window.start, summary[field]))
        return out


def merge_windows(windows: typing.Iterable[Window], base: float = LOG_HISTOGRAM_BASE) -> Window:
    """Roll a sequence of windows into one (for tests and reporting)."""
    windows = list(windows)
    if not windows:
        return Window(0.0, 0.0, base=base)
    merged = Window(windows[0].start, windows[0].width, base=base)
    for window in windows:
        merged.merge(window)
    return merged
