"""A ``top``-style text dashboard rendered from the scraped roll-up store.

Pure formatting over :class:`~repro.telemetry.metrics.Telemetry` state —
no simulation access, so it can render mid-run (from a scrape hook) or
after the fact. Shown by ``python -m repro metrics``.
"""

from __future__ import annotations

import re
import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.metrics import Telemetry
    from repro.telemetry.rollup import RollupSeries

SPARK_TICKS = "▁▂▃▄▅▆▇█"
BREAKER_NAMES = {0: "closed", 1: "half-open", 2: "OPEN"}
_SHARD_LABEL = re.compile(r'shard="([^"]+)"')


def sparkline(values: typing.Sequence[float], width: int = 24) -> str:
    """Compress a value series into a fixed-width unicode sparkline."""
    if not values:
        return " " * width
    values = list(values)[-width:]
    low = min(values)
    high = max(values)
    span = high - low
    ticks = []
    for value in values:
        if span <= 0:
            ticks.append(SPARK_TICKS[0])
        else:
            index = int((value - low) / span * (len(SPARK_TICKS) - 1))
            ticks.append(SPARK_TICKS[index])
    return "".join(ticks).rjust(width)


def bar(fraction: float, width: int = 20) -> str:
    """A bounded utilization bar: ``[#####---------------]``."""
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "[" + "#" * filled + "-" * (width - filled) + "]"


def _series_values(series: "RollupSeries", field: str = "mean") -> list[float]:
    return [value for _, value in series.series(level=0, field=field)]


def _fmt_row(label: str, body: str) -> str:
    return f"  {label:<46} {body}"


def render_dashboard(
    telemetry: "Telemetry", title: str = "repro top", triage=None, recorder=None
) -> str:
    """Render the current telemetry state as a text dashboard.

    Pass the rig's :class:`~repro.triage.engine.TriageEngine` as
    ``triage`` to append the incident drill-down: one block per verdict
    with its ranked hypotheses and evidence chains. Pass the
    :class:`~repro.telemetry.recorder.FlightRecorder` as ``recorder`` to
    append the incident-bundle drill-down (windows, exemplars, retained
    traces, bus attributions per bundle).
    """
    lines = [f"== {title} @ t={telemetry.sim.now:.1f}s "
             f"(scrapes={telemetry.scraper.scrapes}, "
             f"series={len(telemetry.rollups)}) =="]

    def section(header: str) -> None:
        lines.append("")
        lines.append(header)

    # Utilization gauges/probes (values in [0, 1]).
    util = {
        metric_id: series
        for metric_id, series in sorted(telemetry.rollups.items())
        if "utilization" in metric_id
    }
    if util:
        section("-- utilization --")
        for metric_id, series in util.items():
            level = series.last_value()
            lines.append(_fmt_row(metric_id, f"{bar(level)} {level * 100:5.1f}%"))

    # Queue depths as sparklines of per-window means.
    depths = {
        metric_id: series
        for metric_id, series in sorted(telemetry.rollups.items())
        if "queue_depth" in metric_id or "pool_queue" in metric_id
    }
    if depths:
        section("-- queue depth --")
        for metric_id, series in depths.items():
            values = _series_values(series)
            lines.append(
                _fmt_row(metric_id, f"{sparkline(values)} now={series.last_value():.0f}")
            )

    # Breaker states (probe encodes closed=0 / half-open=1 / open=2).
    breakers = {
        metric_id: series
        for metric_id, series in sorted(telemetry.rollups.items())
        if "breaker_state" in metric_id
    }
    if breakers:
        section("-- circuit breakers --")
        for metric_id, series in breakers.items():
            state = BREAKER_NAMES.get(int(series.last_value()), "?")
            values = _series_values(series, field="max")
            lines.append(_fmt_row(metric_id, f"{sparkline(values)} {state}"))

    # Retry-budget burn: remaining tokens over time.
    budgets = {
        metric_id: series
        for metric_id, series in sorted(telemetry.rollups.items())
        if "retry_budget" in metric_id and "denied" not in metric_id
    }
    if budgets:
        section("-- retry budget --")
        for metric_id, series in budgets.items():
            values = _series_values(series)
            lines.append(
                _fmt_row(metric_id, f"{sparkline(values)} tokens={series.last_value():.1f}")
            )

    # Federation routing: one row per shard with its steal / spill /
    # reroute / remote-completion counters (cumulative probe levels).
    fed_fields = ("steals", "spills", "reroutes", "remote_completions")
    per_shard: dict[str, dict[str, float]] = {}
    for metric_id, series in sorted(telemetry.rollups.items()):
        base = metric_id.split("{", 1)[0]
        if not base.startswith("federation_") or base[len("federation_"):] not in fed_fields:
            continue
        match = _SHARD_LABEL.search(metric_id)
        shard = match.group(1) if match else "?"
        per_shard.setdefault(shard, {})[base[len("federation_"):]] = series.last_value()
    if per_shard:
        section("-- federation (per shard) --")
        for shard, values in sorted(per_shard.items()):
            body = "  ".join(
                f"{field}={values.get(field, 0.0):.0f}" for field in fed_fields
            )
            lines.append(_fmt_row(shard, body))

    # Throughput-ish counters: show per-window rates.
    rates = {
        metric_id: series
        for metric_id, series in sorted(telemetry.rollups.items())
        if series.kind == "counter"
        and metric_id.split("{", 1)[0].endswith("_total")
    }
    if rates:
        section("-- rates (per window) --")
        for metric_id, series in rates.items():
            values = [
                window.rate for window in series.windows(level=0, include_open=True)
            ]
            latest = values[-1] if values else 0.0
            lines.append(
                _fmt_row(metric_id, f"{sparkline(values)} {latest:8.2f}/s")
            )

    # Alerts.
    active = telemetry.monitor.active_alerts() if hasattr(telemetry, "monitor") else []
    section(f"-- alerts ({len(active)} active) --")
    if telemetry.monitor.timeline:
        lines.extend("  " + line for line in telemetry.monitor.render_timeline())
    else:
        lines.append("  (none fired)")

    # Incident triage drill-down: ranked root-cause verdicts per alert
    # burst, with the evidence each hypothesis rests on.
    if triage is not None and not getattr(triage, "is_null", False):
        verdicts = list(triage.verdicts)
        section(f"-- triage ({len(verdicts)} verdicts) --")
        if verdicts:
            for verdict in verdicts:
                lines.extend("  " + line for line in verdict.render(evidence=True))
        else:
            lines.append("  (no alerts fired, no verdicts)")

    # Flight-recorder drill-down: one block per incident bundle.
    if recorder is not None and not getattr(recorder, "is_null", False):
        bundles = list(recorder.bundles)
        section(f"-- incident bundles ({len(bundles)}) --")
        if bundles:
            for bundle in bundles:
                lines.extend("  " + line for line in bundle.render())
        else:
            lines.append("  (no incidents recorded)")
    return "\n".join(lines) + "\n"
