"""SLO rules, multi-window burn-rate evaluation, and the alert timeline.

A rule names an objective ("99.5% of deploys are good") and the burn-rate
windows that guard it. On every scrape the monitor computes the bad/total
ratio over each trailing window pair from the roll-up store, converts it
to a *burn rate* (budget consumption speed: burn 1 means the error budget
exactly lasts the compliance period; burn N means it dies N times
faster), and fires when **both** the short and long window exceed the
pair's threshold — the standard multi-window construction that makes
alerts fast on real regressions and quiet on blips. All times are
simulated time.
"""

from __future__ import annotations

import dataclasses
import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.telemetry.metrics import Telemetry


@dataclasses.dataclass(frozen=True)
class BurnWindow:
    """One (short, long, threshold) multi-window burn-rate pair."""

    short_s: float
    long_s: float
    threshold: float

    def __post_init__(self) -> None:
        if self.short_s <= 0 or self.long_s < self.short_s:
            raise ValueError("need 0 < short_s <= long_s")
        if self.threshold <= 0:
            raise ValueError("threshold must be positive")


#: Default guard: a fast pair for sharp regressions and a slower pair for
#: sustained simmering burn (timescales suit the simulated fault storms).
DEFAULT_BURN_WINDOWS = (
    BurnWindow(short_s=60.0, long_s=300.0, threshold=4.0),
    BurnWindow(short_s=300.0, long_s=900.0, threshold=1.5),
)


@dataclasses.dataclass(frozen=True)
class SloRule:
    """Base rule: subclasses define how bad/total are read from roll-ups."""

    name: str
    objective: float  # target good fraction, e.g. 0.995
    windows: tuple[BurnWindow, ...] = DEFAULT_BURN_WINDOWS

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if not self.windows:
            raise ValueError("rule needs at least one burn window")

    @property
    def budget(self) -> float:
        return 1.0 - self.objective

    def bad_total(
        self, telemetry: "Telemetry", horizon_s: float, now: float
    ) -> tuple[float, float]:
        raise NotImplementedError

    def burn(self, telemetry: "Telemetry", horizon_s: float, now: float) -> float:
        bad, total = self.bad_total(telemetry, horizon_s, now)
        if total <= 0:
            return 0.0
        return (bad / total) / self.budget


@dataclasses.dataclass(frozen=True)
class RatioRule(SloRule):
    """Bad/total from counter series (e.g. task errors vs completions).

    ``total_metrics`` sum — pass every outcome counter (including the bad
    one) when the total is split across labels.
    """

    bad_metric: str = ""
    total_metrics: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.bad_metric or not self.total_metrics:
            raise ValueError("ratio rule needs bad_metric and total_metrics")

    def _trailing_sum(self, telemetry, metric_id, horizon_s, now):
        series = telemetry.rollups.get(metric_id)
        return series.trailing(horizon_s, now).sum if series else 0.0

    def bad_total(self, telemetry, horizon_s, now):
        bad = self._trailing_sum(telemetry, self.bad_metric, horizon_s, now)
        total = sum(
            self._trailing_sum(telemetry, metric_id, horizon_s, now)
            for metric_id in self.total_metrics
        )
        return bad, total


@dataclasses.dataclass(frozen=True)
class LatencyRule(SloRule):
    """Bad = samples at/above a threshold in one histogram series.

    The threshold is resolved at log-bucket granularity, counting any
    straddling bucket as bad — conservative in the alerting direction.
    """

    metric: str = ""
    threshold_s: float = 0.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.metric:
            raise ValueError("latency rule needs a histogram metric")
        if self.threshold_s <= 0:
            raise ValueError("threshold_s must be positive")

    def bad_total(self, telemetry, horizon_s, now):
        series = telemetry.rollups.get(self.metric)
        if series is None:
            return 0.0, 0.0
        window = series.trailing(horizon_s, now)
        return float(window.hist.count_at_or_above(self.threshold_s)), float(window.count)


@dataclasses.dataclass(frozen=True)
class AvailabilityRule(SloRule):
    """Bad = 0-samples across every 0/1 gauge series under a prefix.

    For an up/down probe scraped as a gauge the window ``sum`` is the
    number of "up" samples and ``count`` the total, so ``count - sum`` is
    downtime measured in scrape samples — no per-sample storage needed.
    One rule over ``host_up`` turns sixteen per-host probes into a single
    fleet-availability burn: two hosts down out of sixteen is a 12.5%
    bad fraction, far over any sane budget, without any user-visible
    task failing. This is how infra-only faults (a flap the placement
    engine routes around) still reach the alert timeline.
    """

    metric_prefix: str = ""

    def __post_init__(self) -> None:
        super().__post_init__()
        if not self.metric_prefix:
            raise ValueError("availability rule needs a metric prefix")

    def bad_total(self, telemetry, horizon_s, now):
        bad = total = 0.0
        for series in telemetry.series_matching(self.metric_prefix).values():
            window = series.trailing(horizon_s, now)
            bad += window.count - window.sum
            total += window.count
        return bad, total


@dataclasses.dataclass
class AlertEvent:
    """One transition on the alert timeline."""

    time: float
    rule: str
    kind: str  # "fire" | "resolve"
    burn_short: float
    burn_long: float
    window: BurnWindow


@dataclasses.dataclass
class Alert:
    """One contiguous firing of a rule."""

    rule: str
    fired_at: float
    window: BurnWindow
    resolved_at: float | None = None
    peak_burn: float = 0.0

    @property
    def active(self) -> bool:
        return self.resolved_at is None


class SloMonitor:
    """Evaluates every rule after each scrape; keeps the alert timeline."""

    def __init__(self, telemetry: "Telemetry") -> None:
        self.telemetry = telemetry
        self.rules: list[SloRule] = []
        self.timeline: list[AlertEvent] = []
        self.alerts: list[Alert] = []
        self._active: dict[str, Alert] = {}
        # Fire hooks: called as listener(alert, now) on each new firing.
        # Listeners must be read-only w.r.t. the simulation (the triage
        # engine attaches here) so scrapes stay schedule-neutral.
        self.listeners: list[typing.Callable[[Alert, float], None]] = []

    def add(self, rule: SloRule) -> None:
        if any(existing.name == rule.name for existing in self.rules):
            raise ValueError(f"rule {rule.name!r} already registered")
        self.rules.append(rule)

    def active_alerts(self) -> list[Alert]:
        return [alert for alert in self.alerts if alert.active]

    def evaluate(self, now: float) -> None:
        for rule in self.rules:
            firing_pair: BurnWindow | None = None
            burn_short = burn_long = 0.0
            for pair in rule.windows:
                short = rule.burn(self.telemetry, pair.short_s, now)
                long = rule.burn(self.telemetry, pair.long_s, now)
                if short >= pair.threshold and long >= pair.threshold:
                    firing_pair = pair
                    burn_short, burn_long = short, long
                    break
            active = self._active.get(rule.name)
            if firing_pair is not None:
                if active is None:
                    alert = Alert(rule=rule.name, fired_at=now, window=firing_pair)
                    self._active[rule.name] = alert
                    self.alerts.append(alert)
                    self.timeline.append(
                        AlertEvent(now, rule.name, "fire", burn_short, burn_long, firing_pair)
                    )
                    for listener in self.listeners:
                        listener(alert, now)
                    active = alert
                active.peak_burn = max(active.peak_burn, burn_short)
            elif active is not None:
                active.resolved_at = now
                del self._active[rule.name]
                self.timeline.append(
                    AlertEvent(now, rule.name, "resolve", burn_short, burn_long, active.window)
                )

    def render_timeline(self) -> list[str]:
        """Human-readable timeline lines (the R-F-alerts exhibit body)."""
        out = []
        for event in self.timeline:
            arrow = "FIRE   " if event.kind == "fire" else "resolve"
            out.append(
                f"t={event.time:8.1f}s  {arrow} {event.rule:<24} "
                f"burn short={event.burn_short:5.1f} long={event.burn_long:5.1f} "
                f"(win {event.window.short_s:.0f}s/{event.window.long_s:.0f}s"
                f" x{event.window.threshold:g})"
            )
        return out
