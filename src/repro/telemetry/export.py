"""Exporters: Prometheus text exposition and JSONL roll-up/alert dumps.

The Prometheus exporter renders the *live* cumulative state of every
family, probe, and watched registry — what a real scrape endpoint would
serve at that instant of simulated time. The JSONL exporters dump the
scraped roll-up store (one line per window) and the alert timeline, the
machine-readable companions to the R-F-alerts exhibit.
"""

from __future__ import annotations

import json
import pathlib
import typing

from repro.sim.stats import Counter, Gauge, LatencyRecorder, LogHistogram
from repro.telemetry.metrics import Telemetry


def _prom_name(name: str) -> str:
    out = []
    for ch in name:
        out.append(ch if ch.isalnum() or ch == "_" else "_")
    text = "".join(out)
    if text and text[0].isdigit():
        text = "_" + text
    return text


def _prom_labels(labels, extra: dict[str, str] | None = None) -> str:
    pairs = list(labels)
    if extra:
        pairs.extend(sorted(extra.items()))
    if not pairs:
        return ""
    inner = ",".join(f'{_prom_name(k)}="{v}"' for k, v in pairs)
    return f"{{{inner}}}"


def _hist_lines(name: str, labels, hist: LogHistogram) -> list[str]:
    lines = []
    cumulative = hist.zeros
    lines.append(f'{name}_bucket{_prom_labels(labels, {"le": "0"})} {cumulative}')
    for upper, count in hist.buckets():
        cumulative += count
        lines.append(
            f'{name}_bucket{_prom_labels(labels, {"le": f"{upper:.6g}"})} {cumulative}'
        )
    lines.append(f'{name}_bucket{_prom_labels(labels, {"le": "+Inf"})} {hist.count}')
    lines.append(f"{name}_sum{_prom_labels(labels)} {hist.total:.6g}")
    lines.append(f"{name}_count{_prom_labels(labels)} {hist.count}")
    return lines


def prometheus_text(telemetry: Telemetry) -> str:
    """Render current metric state in Prometheus text exposition format."""
    lines: list[str] = []
    for family in telemetry.families.values():
        name = _prom_name(family.name)
        if family.help:
            lines.append(f"# HELP {name} {family.help}")
        lines.append(f"# TYPE {name} {family.kind}")
        for child in family.children():
            if family.kind == "histogram":
                lines.extend(_hist_lines(name, child.labels, child.hist))
            else:
                lines.append(f"{name}{_prom_labels(child.labels)} {child.value:.6g}")
    for probe in telemetry.probes:
        name = _prom_name(probe.name)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name}{_prom_labels(probe.labels)} {probe.value:.6g}")
    for registry, labels in telemetry.watched:
        for key, metric in registry.all().items():
            name = _prom_name(key)
            if isinstance(metric, Counter):
                lines.append(f"# TYPE {name} counter")
                lines.append(f"{name}{_prom_labels(labels)} {metric.value:.6g}")
            elif isinstance(metric, Gauge):
                lines.append(f"# TYPE {name} gauge")
                lines.append(f"{name}{_prom_labels(labels)} {metric.value:.6g}")
            elif isinstance(metric, LatencyRecorder):
                lines.append(f"# TYPE {name}_seconds summary")
                for q in (0.5, 0.99):
                    lines.append(
                        f'{name}_seconds{_prom_labels(labels, {"quantile": f"{q:g}"})} '
                        f"{metric.percentile(q):.6g}"
                    )
                lines.append(
                    f"{name}_seconds_sum{_prom_labels(labels)} "
                    f"{metric.mean * metric.count:.6g}"
                )
                lines.append(f"{name}_seconds_count{_prom_labels(labels)} {metric.count}")
            elif isinstance(metric, LogHistogram):
                lines.append(f"# TYPE {name} histogram")
                lines.extend(_hist_lines(name, labels, metric))
    return "\n".join(lines) + "\n"


def rollups_jsonl(telemetry: Telemetry, level: int = 0) -> typing.Iterator[str]:
    """One JSON line per roll-up window across every scraped series."""
    for metric_id in sorted(telemetry.rollups):
        series = telemetry.rollups[metric_id]
        for window in series.windows(level=level):
            row = {"metric": metric_id, "kind": series.kind, "level": level}
            row.update(window.summary())
            if series.kind == "counter":
                row["rate"] = window.rate
            yield json.dumps(row, sort_keys=True)


def alerts_jsonl(telemetry: Telemetry) -> typing.Iterator[str]:
    """One JSON line per alert-timeline transition."""
    for event in telemetry.monitor.timeline:
        yield json.dumps(
            {
                "time": event.time,
                "rule": event.rule,
                "kind": event.kind,
                "burn_short": event.burn_short,
                "burn_long": event.burn_long,
                "window_short_s": event.window.short_s,
                "window_long_s": event.window.long_s,
                "threshold": event.window.threshold,
            },
            sort_keys=True,
        )


def write_prometheus(telemetry: Telemetry, path: str | pathlib.Path) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(prometheus_text(telemetry))
    return path


def write_rollups(
    telemetry: Telemetry, path: str | pathlib.Path, level: int = 0
) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        for line in rollups_jsonl(telemetry, level=level):
            handle.write(line + "\n")
    return path


def write_alerts(telemetry: Telemetry, path: str | pathlib.Path) -> pathlib.Path:
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        for line in alerts_jsonl(telemetry):
            handle.write(line + "\n")
    return path


def write_incident_bundle(bundle, path: str | pathlib.Path) -> pathlib.Path:
    """One :class:`~repro.telemetry.recorder.IncidentBundle` as a JSON file."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(bundle.to_dict(), sort_keys=True, indent=2) + "\n")
    return path


def write_incident_bundles(
    bundles: typing.Iterable, path: str | pathlib.Path
) -> pathlib.Path:
    """A flight recorder's bundles as JSONL, one bundle per line."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        for bundle in bundles:
            handle.write(json.dumps(bundle.to_dict(), sort_keys=True) + "\n")
    return path


def read_incident_bundle(path: str | pathlib.Path):
    """Read one bundle JSON file back (inverse of :func:`write_incident_bundle`)."""
    from repro.telemetry.recorder import IncidentBundle

    return IncidentBundle.from_dict(json.loads(pathlib.Path(path).read_text()))


def read_incident_bundles(path: str | pathlib.Path) -> list:
    """Read a JSONL bundle dump back (inverse of :func:`write_incident_bundles`)."""
    from repro.telemetry.recorder import IncidentBundle

    out = []
    with pathlib.Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                out.append(IncidentBundle.from_dict(json.loads(line)))
    return out
