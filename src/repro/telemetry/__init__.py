"""Live telemetry pipeline: metric families, scraper, roll-ups, SLO alerts.

The observability layer for the reproduced control plane, modeled on the
paper's observation that the management server's statistics pipeline is
itself a major database workload. Four pieces:

- :mod:`~repro.telemetry.metrics` — labeled families (counter / gauge /
  log-bucket histogram), read-only probes, and the :class:`Telemetry`
  hub; :data:`NULL_TELEMETRY` keeps the disabled path allocation-free.
- :mod:`~repro.telemetry.scraper` — a sim-process snapshotting every
  registry on a cadence into bounded roll-up time-series.
- :mod:`~repro.telemetry.rollup` — vCenter-style multi-level windowed
  roll-ups (min/mean/max/p99 per window, fold-up retention).
- :mod:`~repro.telemetry.slo` — multi-window burn-rate SLO rules and the
  alert timeline; :mod:`~repro.telemetry.export` and
  :mod:`~repro.telemetry.dashboard` render the results.
- :mod:`~repro.telemetry.recorder` — the incident flight recorder:
  alert- and crash-triggered self-contained JSON bundles tying alerts,
  roll-up windows, exemplar-linked span trees, bus stats, and the triage
  verdict together; :data:`NULL_RECORDER` is the zero-cost off switch.
"""

from repro.telemetry.dashboard import render_dashboard, sparkline
from repro.telemetry.export import (
    alerts_jsonl,
    prometheus_text,
    read_incident_bundle,
    read_incident_bundles,
    rollups_jsonl,
    write_alerts,
    write_incident_bundle,
    write_incident_bundles,
    write_prometheus,
    write_rollups,
)
from repro.telemetry.metrics import (
    NULL_METRIC,
    NULL_TELEMETRY,
    MetricFamily,
    NullMetric,
    NullTelemetry,
    Probe,
    Telemetry,
    format_metric_id,
)
from repro.telemetry.recorder import (
    NULL_RECORDER,
    FlightRecorder,
    IncidentBundle,
    NullFlightRecorder,
)
from repro.telemetry.rollup import DEFAULT_RETENTION, RollupSeries, Window, merge_windows
from repro.telemetry.scraper import Scraper
from repro.telemetry.slo import (
    DEFAULT_BURN_WINDOWS,
    Alert,
    AlertEvent,
    AvailabilityRule,
    BurnWindow,
    LatencyRule,
    RatioRule,
    SloMonitor,
    SloRule,
)

__all__ = [
    "Alert",
    "AlertEvent",
    "AvailabilityRule",
    "BurnWindow",
    "DEFAULT_BURN_WINDOWS",
    "DEFAULT_RETENTION",
    "FlightRecorder",
    "IncidentBundle",
    "LatencyRule",
    "MetricFamily",
    "NULL_METRIC",
    "NULL_RECORDER",
    "NULL_TELEMETRY",
    "NullFlightRecorder",
    "NullMetric",
    "NullTelemetry",
    "Probe",
    "RatioRule",
    "RollupSeries",
    "Scraper",
    "SloMonitor",
    "SloRule",
    "Telemetry",
    "Window",
    "alerts_jsonl",
    "format_metric_id",
    "merge_windows",
    "prometheus_text",
    "read_incident_bundle",
    "read_incident_bundles",
    "render_dashboard",
    "rollups_jsonl",
    "sparkline",
    "write_alerts",
    "write_incident_bundle",
    "write_incident_bundles",
    "write_prometheus",
    "write_rollups",
]
