"""Labeled metric families and the :class:`Telemetry` hub.

A :class:`Telemetry` object owns every live metric family for one
simulation, the probe list sampled at scrape time, the scraped roll-up
store, and the SLO monitor. Components receive it at construction and
grab *handles* once::

    self._t_calls = telemetry.counter("hostd_calls_total", host=host.name)
    ...
    self._t_calls.add()          # hot path: one bound-method call

:data:`NULL_TELEMETRY` is the disabled twin (mirroring tracing's
``NULL_TRACER``): every family request returns the shared
:data:`NULL_METRIC` singleton and probes/watches are dropped, so a
simulation constructed without telemetry allocates nothing per event and
pays only a no-op method call at each instrumentation point.
"""

from __future__ import annotations

import math
import typing

from repro.sim.stats import (
    LOG_HISTOGRAM_BASE,
    LogHistogram,
    MetricsRegistry,
)
from repro.telemetry.rollup import DEFAULT_RETENTION, RollupSeries

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator
    from repro.telemetry.slo import SloMonitor, SloRule

LabelValues = typing.Tuple[typing.Tuple[str, str], ...]


def _label_key(labels: dict[str, str]) -> LabelValues:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def format_metric_id(name: str, labels: LabelValues) -> str:
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class TCounter:
    """A labeled child counter: monotone, finite increments only."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: LabelValues = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def add(self, amount: float = 1.0) -> None:
        if not math.isfinite(amount) or amount < 0:
            raise ValueError(
                f"counter {self.name!r} increment must be finite and >= 0, got {amount!r}"
            )
        self.value += amount


class TGauge:
    """A labeled child gauge: an instantaneous level."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: LabelValues = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        if not math.isfinite(value):
            raise ValueError(f"gauge {self.name!r} level must be finite, got {value!r}")
        self.value = value

    def add(self, delta: float) -> None:
        if not math.isfinite(delta):
            raise ValueError(f"gauge {self.name!r} delta must be finite, got {delta!r}")
        self.value += delta


class THistogram:
    """A labeled child histogram over fixed log buckets (mergeable)."""

    __slots__ = ("name", "labels", "hist")

    kind = "histogram"

    def __init__(
        self, name: str, labels: LabelValues = (), base: float = LOG_HISTOGRAM_BASE
    ) -> None:
        self.name = name
        self.labels = labels
        self.hist = LogHistogram(name, base=base)

    def observe(self, value: float, trace_id: int | None = None) -> None:
        """Record an observation, optionally stamping a trace-id exemplar.

        Callers pass ``trace_id`` only when tracing is live (guard on
        ``span.is_null``), so the untraced path stays allocation-free.
        """
        self.hist.record(value, exemplar=trace_id)


class NullMetric:
    """The inert metric: every mutation is a no-op, every read is zero."""

    __slots__ = ()

    name = ""
    labels: LabelValues = ()
    kind = "null"
    value = 0.0

    def add(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float, trace_id: int | None = None) -> None:
        pass


NULL_METRIC = NullMetric()


class MetricFamily:
    """All children of one metric name, keyed by label values."""

    __slots__ = ("name", "kind", "help", "base", "_children")

    FACTORIES: typing.ClassVar[dict[str, type]] = {
        "counter": TCounter,
        "gauge": TGauge,
        "histogram": THistogram,
    }

    def __init__(
        self, name: str, kind: str, help: str = "", base: float = LOG_HISTOGRAM_BASE
    ) -> None:
        if kind not in self.FACTORIES:
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.base = base
        self._children: dict[LabelValues, typing.Any] = {}

    def labels(self, **labels: str) -> typing.Any:
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            if self.kind == "histogram":
                child = THistogram(self.name, key, base=self.base)
            else:
                child = self.FACTORIES[self.kind](self.name, key)
            self._children[key] = child
        return child

    def children(self) -> list[typing.Any]:
        return list(self._children.values())


class Probe:
    """A read-only callback sampled at scrape time (gauge semantics).

    The function must only *read* simulation state — it runs inside the
    scraper and anything it mutates would break scrape neutrality.
    """

    __slots__ = ("name", "labels", "fn")

    kind = "probe"

    def __init__(self, name: str, fn: typing.Callable[[], float], labels: LabelValues = ()) -> None:
        self.name = name
        self.labels = labels
        self.fn = fn

    @property
    def value(self) -> float:
        return float(self.fn())


class Telemetry:
    """The live telemetry pipeline for one simulation.

    Owns metric families, probes, watched legacy registries, the scraped
    roll-up store, and the SLO monitor. ``start()`` launches the
    :class:`~repro.telemetry.scraper.Scraper` sim-process.
    """

    enabled: typing.ClassVar[bool] = True

    def __init__(
        self,
        sim: "Simulator",
        scrape_interval_s: float = 5.0,
        retention: tuple[tuple[float, int], ...] = DEFAULT_RETENTION,
        histogram_base: float = LOG_HISTOGRAM_BASE,
    ) -> None:
        from repro.telemetry.scraper import Scraper
        from repro.telemetry.slo import SloMonitor

        if scrape_interval_s <= 0:
            raise ValueError("scrape_interval_s must be positive")
        self.sim = sim
        self.scrape_interval_s = scrape_interval_s
        self.retention = retention
        self.histogram_base = histogram_base
        self.families: dict[str, MetricFamily] = {}
        self.probes: list[Probe] = []
        self.watched: list[tuple[MetricsRegistry, LabelValues]] = []
        self.rollups: dict[str, RollupSeries] = {}
        self.scraper = Scraper(self)
        self.monitor: "SloMonitor" = SloMonitor(self)

    # -- family construction -------------------------------------------------

    def _family(self, name: str, kind: str, help: str) -> MetricFamily:
        family = self.families.get(name)
        if family is None:
            family = MetricFamily(name, kind, help=help, base=self.histogram_base)
            self.families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, not {kind}"
            )
        return family

    def counter(self, name: str, help: str = "", **labels: str) -> TCounter:
        return self._family(name, "counter", help).labels(**labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> TGauge:
        return self._family(name, "gauge", help).labels(**labels)

    def histogram(self, name: str, help: str = "", **labels: str) -> THistogram:
        return self._family(name, "histogram", help).labels(**labels)

    def probe(
        self, name: str, fn: typing.Callable[[], float], help: str = "", **labels: str
    ) -> Probe:
        probe = Probe(name, fn, _label_key(labels))
        self.probes.append(probe)
        return probe

    def watch_registry(self, registry: MetricsRegistry, **labels: str) -> None:
        """Include a legacy :class:`MetricsRegistry` in every scrape.

        Counters become per-window rates, gauges become sampled levels,
        latency recorders contribute their count as a rate. The registry
        is only ever read.
        """
        self.watched.append((registry, _label_key(labels)))

    # -- scrape store --------------------------------------------------------

    def rollup(self, metric_id: str, kind: str) -> RollupSeries:
        series = self.rollups.get(metric_id)
        if series is None:
            series = RollupSeries(
                metric_id, kind=kind, retention=self.retention, base=self.histogram_base
            )
            self.rollups[metric_id] = series
        return series

    def series(self, name: str, **labels: str) -> RollupSeries | None:
        """The scraped roll-up series for one metric id, if any."""
        return self.rollups.get(format_metric_id(name, _label_key(labels)))

    def series_matching(self, prefix: str) -> dict[str, RollupSeries]:
        return {
            metric_id: series
            for metric_id, series in self.rollups.items()
            if metric_id.startswith(prefix)
        }

    # -- lifecycle -----------------------------------------------------------

    def start(self, until: float | None = None) -> "Telemetry":
        """Begin scraping on the configured cadence; returns self."""
        self.scraper.start(until=until)
        return self

    def stop(self) -> None:
        self.scraper.stop()

    def scrape_now(self) -> None:
        """Take one scrape immediately (also evaluates SLO rules)."""
        self.scraper.scrape()

    # -- SLO surface ---------------------------------------------------------

    def add_rule(self, rule: "SloRule") -> None:
        self.monitor.add(rule)

    @property
    def alerts(self):
        return self.monitor.timeline


class NullTelemetry:
    """Telemetry disabled: every request yields the inert singleton.

    Shared module-wide (:data:`NULL_TELEMETRY`), so the disabled path
    allocates nothing — handles are the one NULL_METRIC, probe and watch
    registrations are dropped on the floor.
    """

    enabled: typing.ClassVar[bool] = False
    families: dict[str, MetricFamily] = {}
    probes: list[Probe] = []
    rollups: dict[str, RollupSeries] = {}

    def counter(self, name: str, help: str = "", **labels: str) -> NullMetric:
        return NULL_METRIC

    def gauge(self, name: str, help: str = "", **labels: str) -> NullMetric:
        return NULL_METRIC

    def histogram(self, name: str, help: str = "", **labels: str) -> NullMetric:
        return NULL_METRIC

    def probe(self, name: str, fn, help: str = "", **labels: str) -> None:
        return None

    def watch_registry(self, registry, **labels) -> None:
        return None

    def rollup(self, metric_id: str, kind: str) -> None:
        return None

    def series(self, name: str, **labels: str) -> None:
        return None

    def series_matching(self, prefix: str) -> dict:
        return {}

    def start(self, until: float | None = None) -> "NullTelemetry":
        return self

    def stop(self) -> None:
        pass

    def scrape_now(self) -> None:
        pass

    def add_rule(self, rule) -> None:
        pass

    @property
    def alerts(self):
        return ()


NULL_TELEMETRY = NullTelemetry()
