"""DRS-style load balancing: the background migration workload.

A real cluster continuously rebalances: a scheduler scores host load and
live-migrates VMs off hot hosts. Every migration is another management
task — in churny clouds the balancer itself becomes a steady contributor
to the control-plane load (it reacts to every provisioning wave).
"""

from __future__ import annotations

import typing

from repro.datacenter.entities import Cluster, Host
from repro.datacenter.vm import PowerState, VirtualMachine
from repro.operations.migration import MigrateVM
from repro.sim.stats import MetricsRegistry
from repro.controlplane.server import ManagementServer


class LoadBalancer:
    """Periodic greedy rebalancer over a cluster.

    Imbalance metric: max - min powered-on VMs per usable host. When it
    exceeds ``imbalance_threshold``, up to ``max_moves_per_round`` VMs
    migrate from the most- to the least-loaded host.
    """

    def __init__(
        self,
        server: ManagementServer,
        cluster: Cluster,
        check_interval_s: float = 300.0,
        imbalance_threshold: int = 2,
        max_moves_per_round: int = 2,
    ) -> None:
        if check_interval_s <= 0:
            raise ValueError("check_interval_s must be positive")
        if imbalance_threshold < 1 or max_moves_per_round < 1:
            raise ValueError("threshold and moves must be >= 1")
        self.server = server
        self.cluster = cluster
        self.check_interval_s = check_interval_s
        self.imbalance_threshold = imbalance_threshold
        self.max_moves_per_round = max_moves_per_round
        self.metrics = MetricsRegistry(server.sim, prefix="drs")
        self._until: float | None = None
        self._running = False

    # -- scoring ------------------------------------------------------------

    @staticmethod
    def _load(host: Host) -> int:
        return host.powered_on_vms

    def imbalance(self) -> int:
        hosts = self.cluster.usable_hosts
        if len(hosts) < 2:
            return 0
        loads = [self._load(host) for host in hosts]
        return max(loads) - min(loads)

    def plan_moves(self) -> list[tuple[VirtualMachine, Host]]:
        """Greedy donor→recipient plan for one round (pure function)."""
        hosts = sorted(
            self.cluster.usable_hosts, key=lambda host: (self._load(host), host.entity_id)
        )
        if len(hosts) < 2:
            return []
        moves: list[tuple[VirtualMachine, Host]] = []
        donor, recipient = hosts[-1], hosts[0]
        donor_load, recipient_load = self._load(donor), self._load(recipient)
        movable = sorted(
            (vm for vm in donor.vms if vm.power_state == PowerState.ON),
            key=lambda vm: vm.entity_id,
        )
        for vm in movable:
            if donor_load - recipient_load <= self.imbalance_threshold:
                break
            if len(moves) >= self.max_moves_per_round:
                break
            moves.append((vm, recipient))
            donor_load -= 1
            recipient_load += 1
        return moves

    # -- execution -------------------------------------------------------------

    def rebalance_once(self) -> typing.Generator[typing.Any, typing.Any, int]:
        """Process-style: execute one planning round; returns moves made."""
        if self.imbalance() <= self.imbalance_threshold:
            return 0
        moves = self.plan_moves()
        completed = 0
        for vm, destination in moves:
            process = self.server.submit(MigrateVM(vm, destination), priority=8.0)
            try:
                yield process
            except Exception:
                self.metrics.counter("failed_moves").add()
                continue
            completed += 1
            self.metrics.counter("moves").add()
        return completed

    def start(self, until: float | None = None) -> None:
        if self._running:
            raise RuntimeError("load balancer already started")
        self._running = True
        self._until = until
        self.server.sim.spawn(self._loop(), name="drs")

    def stop(self) -> None:
        self._until = self.server.sim.now

    def _loop(self) -> typing.Generator:
        sim = self.server.sim
        while True:
            yield sim.timeout(self.check_interval_s)
            if self._until is not None and sim.now >= self._until:
                return
            try:
                yield from self.rebalance_once()
            except Exception:
                self.metrics.counter("errors").add()
