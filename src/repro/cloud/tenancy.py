"""Multi-tenancy: organizations, users, and quotas."""

from __future__ import annotations

import dataclasses


class QuotaExceeded(Exception):
    """An organization asked for more than its allocation."""


@dataclasses.dataclass
class Organization:
    """A tenant with VM-count and storage quotas."""

    name: str
    quota_vms: int = 100
    quota_storage_gb: float = 10_000.0
    used_vms: int = 0
    used_storage_gb: float = 0.0

    def check(self, vms: int, storage_gb: float) -> None:
        """Raise :class:`QuotaExceeded` if the request would overshoot."""
        if self.used_vms + vms > self.quota_vms:
            raise QuotaExceeded(
                f"org {self.name!r}: {self.used_vms}+{vms} VMs exceeds "
                f"quota {self.quota_vms}"
            )
        if self.used_storage_gb + storage_gb > self.quota_storage_gb:
            raise QuotaExceeded(
                f"org {self.name!r}: storage {self.used_storage_gb + storage_gb:.0f} GB "
                f"exceeds quota {self.quota_storage_gb:.0f} GB"
            )

    def charge(self, vms: int, storage_gb: float) -> None:
        self.check(vms, storage_gb)
        self.used_vms += vms
        self.used_storage_gb += storage_gb

    def credit(self, vms: int, storage_gb: float) -> None:
        self.used_vms = max(0, self.used_vms - vms)
        self.used_storage_gb = max(0.0, self.used_storage_gb - storage_gb)

    @property
    def vm_headroom(self) -> int:
        return self.quota_vms - self.used_vms


@dataclasses.dataclass(frozen=True)
class User:
    """A member of an organization (attribution in traces)."""

    name: str
    org: Organization

    def __str__(self) -> str:
        return f"{self.org.name}/{self.name}"
