"""The self-service API gateway: sessions and admission throttling.

Production directors front the control plane with an API layer that (a)
tracks tenant sessions (each holds management-server memory) and (b)
throttles request admission so a single tenant's script can't saturate
the task pipeline. Throttling trades tenant-visible queueing for
control-plane protection — a design lever the paper's conclusions point
toward.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.cloud.tenancy import Organization, User
from repro.faults.errors import TransientError
from repro.sim.kernel import Simulator
from repro.sim.resources import TokenBucket
from repro.sim.stats import MetricsRegistry
from repro.telemetry.metrics import NULL_TELEMETRY
from repro.tracing import NULL_SPAN, PHASE_ADMISSION


class SessionError(Exception):
    """Invalid or expired session usage."""


class AdmissionShed(TransientError):
    """Request rejected at the door: the control plane is overloaded.

    Transient by design — the tenant (or a retry layer with backoff) may
    try again once the task queue drains. Shedding at admission costs one
    cheap rejection instead of a queued task that would blow its deadline.
    """


@dataclasses.dataclass
class Session:
    """One authenticated tenant session."""

    session_id: int
    user: User
    opened_at: float
    last_used_at: float
    closed: bool = False


class ApiGateway:
    """Session registry + per-org token-bucket admission.

    ``admit`` is the process-style entry point request handlers call
    before touching the director: it validates the session and blocks
    until the org's bucket grants a token.
    """

    def __init__(
        self,
        sim: Simulator,
        requests_per_minute: float = 60.0,
        burst: float = 10.0,
        session_idle_timeout_s: float = 1800.0,
        shed_watermark: float | None = None,
        queue_depth_probe: typing.Callable[[], float] | None = None,
        telemetry=None,
    ) -> None:
        if requests_per_minute <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        if session_idle_timeout_s <= 0:
            raise ValueError("session_idle_timeout_s must be positive")
        if shed_watermark is not None and shed_watermark <= 0:
            raise ValueError("shed_watermark must be positive")
        self.sim = sim
        self.rate_per_s = requests_per_minute / 60.0
        self.burst = burst
        self.session_idle_timeout_s = session_idle_timeout_s
        self.shed_watermark = shed_watermark
        self.queue_depth_probe = queue_depth_probe
        self.metrics = MetricsRegistry(sim, prefix="api")
        self._sessions: dict[int, Session] = {}
        self._buckets: dict[str, TokenBucket] = {}
        self._next_id = 0
        telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._t_admitted = telemetry.counter("gateway_admitted_total")
        self._t_shed = telemetry.counter("gateway_shed_total")
        self._t_wait = telemetry.histogram("gateway_admission_wait_s")
        self._deploy_seq = 0

    def enable_shedding(
        self, queue_depth_probe: typing.Callable[[], float], watermark: float
    ) -> None:
        """Shed admissions while ``queue_depth_probe()`` >= ``watermark``.

        The probe is typically ``lambda: server.tasks.queue_depth`` — the
        datacenter-wide dispatch backlog.
        """
        if watermark <= 0:
            raise ValueError("watermark must be positive")
        self.queue_depth_probe = queue_depth_probe
        self.shed_watermark = watermark

    # -- sessions --------------------------------------------------------------

    def login(self, user: User) -> Session:
        self._next_id += 1
        session = Session(
            session_id=self._next_id,
            user=user,
            opened_at=self.sim.now,
            last_used_at=self.sim.now,
        )
        self._sessions[session.session_id] = session
        self.metrics.counter("logins").add()
        return session

    def logout(self, session: Session) -> None:
        if session.closed:
            raise SessionError(f"session {session.session_id} already closed")
        session.closed = True
        del self._sessions[session.session_id]
        self.metrics.counter("logouts").add()

    def validate(self, session: Session) -> None:
        """Raise unless the session is live; expire idle sessions."""
        if session.closed or session.session_id not in self._sessions:
            raise SessionError(f"session {session.session_id} is closed")
        idle = self.sim.now - session.last_used_at
        if idle > self.session_idle_timeout_s:
            session.closed = True
            del self._sessions[session.session_id]
            self.metrics.counter("expirations").add()
            raise SessionError(
                f"session {session.session_id} expired after {idle:.0f}s idle"
            )
        session.last_used_at = self.sim.now

    @property
    def active_sessions(self) -> int:
        return len(self._sessions)

    def reap_idle(self) -> int:
        """Expire every idle session now; returns the count reaped."""
        stale = [
            session
            for session in self._sessions.values()
            if self.sim.now - session.last_used_at > self.session_idle_timeout_s
        ]
        for session in stale:
            session.closed = True
            del self._sessions[session.session_id]
            self.metrics.counter("expirations").add()
        return len(stale)

    # -- admission ----------------------------------------------------------------

    def _bucket(self, org: Organization) -> TokenBucket:
        if org.name not in self._buckets:
            self._buckets[org.name] = TokenBucket(
                self.sim, rate=self.rate_per_s, burst=self.burst, name=f"api:{org.name}"
            )
        return self._buckets[org.name]

    def admit(
        self, session: Session, cost: float = 1.0, span=NULL_SPAN
    ) -> typing.Generator[typing.Any, typing.Any, float]:
        """Process-style: validate + throttle; returns the admission wait.

        With shedding enabled, an overloaded control plane rejects the
        request up front (:class:`AdmissionShed`) instead of queueing it.
        """
        admit_span = span.child(
            "gateway.admit", phase=PHASE_ADMISSION, tags={"wait": True}
        )
        try:
            self.validate(session)
            if self.shed_watermark is not None and self.queue_depth_probe is not None:
                depth = self.queue_depth_probe()
                if depth >= self.shed_watermark:
                    self.metrics.counter("shed").add()
                    self._t_shed.add()
                    raise AdmissionShed(
                        f"task backlog {depth:.0f} >= watermark "
                        f"{self.shed_watermark:.0f}; request shed"
                    )
            start = self.sim.now
            yield from self._bucket(session.user.org).take(cost)
        except BaseException as exc:
            admit_span.finish(error=type(exc).__name__)
            raise
        admit_span.finish()
        wait = self.sim.now - start
        self.metrics.counter("admitted").add()
        self.metrics.latency("admission_wait").record(wait)
        self._t_admitted.add()
        self._t_wait.observe(
            wait,
            trace_id=None if admit_span.is_null else admit_span.context.trace_id,
        )
        return wait

    def submit_deploy(
        self, session: Session, director, request, cost: float = 1.0, span=NULL_SPAN
    ) -> typing.Generator[typing.Any, typing.Any, typing.Any]:
        """Process-style: admit, then hand the deploy to the director.

        The gateway→director hop: with a mediated bus the request rides
        the director's deploy topic (at-least-once, keyed per request) and
        this waits on the reply; with direct calls it is a plain director
        call. Returns the settled vApp either way.
        """
        yield from self.admit(session, cost=cost, span=span)
        bus = director.server.bus
        if not bus.mediated:
            vapp = yield from director.deploy(request)
            return vapp
        self._deploy_seq += 1
        key = f"deploy:{request.vapp_name}:{self._deploy_seq}"
        reply = self.sim.event(name=f"bus-reply:{key}")
        yield from bus.publish(
            director.deploy_topic_name, request, key=key, reply=reply, span=span
        )
        vapp = yield reply
        return vapp
