"""High availability: host failures and the restart storms they cause.

When a host dies, every VM it ran must be restarted elsewhere — a burst
of placement decisions and power-on operations through the *control
plane* at exactly the moment the datacenter is degraded. This is the
availability-side analogue of the paper's provisioning argument: modern
"cheap" recovery mechanisms are data-light and control-heavy.
"""

from __future__ import annotations

import typing

from repro.cloud.placement import PlacementEngine, PlacementError
from repro.datacenter.entities import Cluster, Host, HostState
from repro.datacenter.vm import PowerState, VirtualMachine
from repro.operations.power import PowerOn
from repro.sim.events import AllOf
from repro.sim.stats import MetricsRegistry
from repro.controlplane.server import ManagementServer


class HAManager:
    """Detects (is told about) host failures and restarts their VMs."""

    def __init__(
        self,
        server: ManagementServer,
        cluster: Cluster,
        placement: PlacementEngine | None = None,
    ) -> None:
        self.server = server
        self.cluster = cluster
        self.placement = placement or PlacementEngine()
        self.metrics = MetricsRegistry(server.sim, prefix="ha")

    def fail_host(
        self, host: Host
    ) -> typing.Generator[typing.Any, typing.Any, dict[str, int]]:
        """Process-style: fail ``host`` and restart its powered-on VMs.

        Returns counts: restarted, lost (no capacity), stranded_off
        (powered-off VMs left unplaced until the host returns).
        """
        if host not in self.cluster.hosts:
            raise ValueError(f"host {host.name!r} is not in cluster {self.cluster.name!r}")
        if host.state == HostState.DISCONNECTED:
            raise ValueError(f"host {host.name!r} already failed")
        host.state = HostState.DISCONNECTED
        self.metrics.counter("host_failures").add()
        failure_time = self.server.sim.now

        victims = [vm for vm in sorted(host.vms, key=lambda v: v.entity_id)]
        restart_processes = []
        counts = {"restarted": 0, "lost": 0, "stranded_off": 0}
        for vm in victims:
            if vm.power_state != PowerState.ON:
                counts["stranded_off"] += 1
                continue
            vm.power_state = PowerState.OFF  # it crashed with its host
            try:
                target = self.placement.choose_host(
                    self.cluster, memory_gb=vm.memory_gb
                )
            except PlacementError:
                counts["lost"] += 1
                self.metrics.counter("restart_failures").add()
                continue
            vm.place_on(target)
            restart_processes.append(
                (vm, self.server.submit(PowerOn(vm), priority=1.0))
            )
        if restart_processes:
            yield AllOf(
                self.server.sim,
                [self._guard(process) for _, process in restart_processes],
            )
        for vm, process in restart_processes:
            if process.ok:
                counts["restarted"] += 1
                self.metrics.latency("restart_latency").record(
                    self.server.sim.now - failure_time
                )
            else:
                counts["lost"] += 1
                self.metrics.counter("restart_failures").add()
        return counts

    def recover_host(self, host: Host) -> None:
        """Bring a failed host back (it rejoins empty)."""
        if host.state != HostState.DISCONNECTED:
            raise ValueError(f"host {host.name!r} is not failed")
        host.state = HostState.CONNECTED
        self.metrics.counter("host_recoveries").add()

    def _guard(self, process):
        def swallow():
            try:
                yield process
            except Exception:
                pass

        return self.server.sim.spawn(swallow())


class FailureInjector:
    """Randomly fails and recovers hosts over a run (resilience studies)."""

    def __init__(
        self,
        ha: HAManager,
        mean_time_between_failures_s: float,
        recovery_time_s: float = 1800.0,
        seed_stream=None,
    ) -> None:
        if mean_time_between_failures_s <= 0 or recovery_time_s <= 0:
            raise ValueError("MTBF and recovery time must be positive")
        self.ha = ha
        self.mtbf_s = mean_time_between_failures_s
        self.recovery_time_s = recovery_time_s
        self.rng = seed_stream
        self.events: list[tuple[float, str, str]] = []

    def start(self, until: float) -> None:
        self.ha.server.sim.spawn(self._loop(until), name="failure-injector")

    def _loop(self, until: float) -> typing.Generator:
        sim = self.ha.server.sim
        while True:
            gap = self.rng.expovariate(1.0 / self.mtbf_s)
            if sim.now + gap >= until:
                return
            yield sim.timeout(gap)
            candidates = self.ha.cluster.usable_hosts
            if len(candidates) <= 1:
                continue  # never fail the last host
            victim = candidates[self.rng.randrange(len(candidates))]
            self.events.append((sim.now, "fail", victim.name))
            try:
                yield from self.ha.fail_host(victim)
            except Exception:
                continue
            yield sim.timeout(self.recovery_time_s)
            self.ha.recover_host(victim)
            self.events.append((sim.now, "recover", victim.name))
