"""The self-service cloud layer (vCloud-Director-style).

Tenants deploy vApps from catalogs through a :class:`CloudDirector`, which
translates every self-service request into streams of management
operations against the control plane. Elasticity policies watch capacity
and trigger infrastructure reconfiguration — the mechanism by which cloud
provisioning rates drag "previously infrequent" operations into the hot
path (the paper's claim 4).
"""

from repro.cloud.api import AdmissionShed, ApiGateway, Session, SessionError
from repro.cloud.catalog import Catalog, CatalogItem
from repro.cloud.director import CloudDirector, DeployRequest
from repro.cloud.elasticity import ElasticityPolicy, SparePool
from repro.cloud.drs import LoadBalancer
from repro.cloud.federation import FederatedCloud
from repro.cloud.ha import FailureInjector, HAManager
from repro.cloud.placement import PlacementEngine, PlacementError
from repro.cloud.tenancy import Organization, QuotaExceeded, User
from repro.cloud.vapp import VApp, VAppState

__all__ = [
    "AdmissionShed",
    "ApiGateway",
    "Catalog",
    "CatalogItem",
    "CloudDirector",
    "DeployRequest",
    "ElasticityPolicy",
    "FailureInjector",
    "FederatedCloud",
    "HAManager",
    "LoadBalancer",
    "Organization",
    "PlacementEngine",
    "PlacementError",
    "QuotaExceeded",
    "Session",
    "SessionError",
    "SparePool",
    "User",
    "VApp",
    "VAppState",
]
