"""Catalogs: the published menu of deployable images."""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass(frozen=True)
class CatalogItem:
    """One deployable entry: a template plus its provisioning mode.

    ``linked`` selects the clone flavour — the knob the paper's clouds
    flipped to conserve data bandwidth.
    """

    name: str
    template_name: str
    linked: bool = True
    description: str = ""


class Catalog:
    """A named collection of catalog items."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._items: dict[str, CatalogItem] = {}

    def add(self, item: CatalogItem) -> CatalogItem:
        if item.name in self._items:
            raise ValueError(f"catalog {self.name!r} already has item {item.name!r}")
        self._items[item.name] = item
        return item

    def get(self, name: str) -> CatalogItem:
        try:
            return self._items[name]
        except KeyError:
            raise KeyError(f"catalog {self.name!r} has no item {name!r}") from None

    def items(self) -> list[CatalogItem]:
        return sorted(self._items.values(), key=lambda item: item.name)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, name: str) -> bool:
        return name in self._items
