"""Placement: choosing hosts and datastores for new VMs."""

from __future__ import annotations

import random
import typing

from repro.datacenter.entities import Cluster, Datastore, Host


class PlacementError(Exception):
    """No host or datastore can satisfy the request."""


class PlacementEngine:
    """Host/datastore selection with pluggable policies.

    Policies:

    - ``least_loaded`` (default): fewest VMs per host, most free space per
      datastore — a DRS-like greedy heuristic.
    - ``round_robin``: cycles deterministically (reproducible spreads).
    - ``random``: uniform choice from the seeded stream.
    """

    POLICIES = ("least_loaded", "round_robin", "random")

    def __init__(self, policy: str = "least_loaded", rng: random.Random | None = None) -> None:
        if policy not in self.POLICIES:
            raise ValueError(f"unknown placement policy {policy!r}")
        self.policy = policy
        self.rng = rng or random.Random(0)
        self._host_cursor = 0
        self._ds_cursor = 0

    def choose_host(
        self,
        cluster: Cluster,
        memory_gb: float = 0.0,
        exclude_hosts: typing.Collection[str] = (),
    ) -> Host:
        """A usable host; with ``memory_gb``, one that can admit that guest.

        ``exclude_hosts`` (entity ids) removes known-bad candidates — the
        director passes hosts that already failed this VM's deploy so a
        retry re-places elsewhere.
        """
        candidates = cluster.usable_hosts
        if exclude_hosts:
            candidates = [
                host for host in candidates if host.entity_id not in exclude_hosts
            ]
        if not candidates:
            raise PlacementError(f"cluster {cluster.name!r} has no usable hosts")
        if memory_gb > 0.0:
            candidates = [host for host in candidates if host.can_admit(memory_gb)]
            if not candidates:
                raise PlacementError(
                    f"no host in {cluster.name!r} can admit {memory_gb:.0f} GB"
                )
        if self.policy == "round_robin":
            host = candidates[self._host_cursor % len(candidates)]
            self._host_cursor += 1
            return host
        if self.policy == "random":
            return self.rng.choice(candidates)
        return min(candidates, key=lambda host: (len(host.vms), host.entity_id))

    def choose_datastore(
        self,
        cluster: Cluster,
        required_gb: float,
        exclude_datastores: typing.Collection[str] = (),
    ) -> Datastore:
        """A shared datastore with room; ``exclude_datastores`` (entity
        ids) removes known-bad candidates, mirroring ``exclude_hosts`` —
        a datastore that just failed a copy would otherwise stay the
        most-free (it fills slower) and attract every retry."""
        shared = sorted(cluster.shared_datastores(), key=lambda ds: ds.entity_id)
        candidates = [ds for ds in shared if ds.free_gb >= required_gb]
        if exclude_datastores:
            filtered = [
                ds for ds in candidates if ds.entity_id not in exclude_datastores
            ]
            if filtered:
                candidates = filtered
        if not candidates:
            raise PlacementError(
                f"no shared datastore in {cluster.name!r} with {required_gb:.1f} GB free"
            )
        if self.policy == "round_robin":
            datastore = candidates[self._ds_cursor % len(candidates)]
            self._ds_cursor += 1
            return datastore
        if self.policy == "random":
            return self.rng.choice(candidates)
        return max(candidates, key=lambda ds: (ds.free_gb, ds.entity_id))

    def choose(
        self,
        cluster: Cluster,
        required_gb: float,
        memory_gb: float = 0.0,
        exclude_hosts: typing.Collection[str] = (),
        exclude_datastores: typing.Collection[str] = (),
    ) -> typing.Tuple[Host, Datastore]:
        """A (host, datastore) pair for one new VM."""
        return (
            self.choose_host(cluster, memory_gb=memory_gb, exclude_hosts=exclude_hosts),
            self.choose_datastore(
                cluster, required_gb, exclude_datastores=exclude_datastores
            ),
        )
