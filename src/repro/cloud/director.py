"""The cloud director: the self-service API over the control plane.

Each tenant deploy request fans out into per-VM DeployFromTemplate
operations; each delete into power-off + destroy pairs. The director is
where the paper's workload multiplier lives: one click, many management
operations.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.cloud.catalog import Catalog, CatalogItem
from repro.cloud.placement import PlacementEngine, PlacementError
from repro.cloud.tenancy import Organization, QuotaExceeded
from repro.cloud.vapp import VApp, VAppState
from repro.datacenter.entities import Cluster
from repro.datacenter.templates import TemplateLibrary
from repro.datacenter.vm import PowerState
from repro.operations.provisioning import DeployFromTemplate
from repro.operations.lifecycle import DestroyVM
from repro.operations.power import PowerOff
from repro.operations.base import OperationError
from repro.sim.events import AllOf
from repro.sim.stats import MetricsRegistry
from repro.controlplane.resilience import RetryPolicy
from repro.controlplane.server import ManagementServer
from repro.faults.errors import ServerCrashed, TransientError
from repro.storage.copy_engine import CopyFailed
from repro.tracing import PHASE_REQUEST, PHASE_RETRY


@dataclasses.dataclass
class DeployRequest:
    """A tenant's request: N instances of a catalog item as one vApp."""

    org: Organization
    item: CatalogItem
    vm_count: int
    vapp_name: str

    def __post_init__(self) -> None:
        if self.vm_count < 1:
            raise ValueError("vm_count must be >= 1")


class CloudDirector:
    """Self-service facade: deploy/delete vApps against one cluster."""

    def __init__(
        self,
        server: ManagementServer,
        cluster: Cluster,
        library: TemplateLibrary,
        catalog: Catalog,
        placement: PlacementEngine | None = None,
        retries_per_vm: int = 1,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        if retries_per_vm < 0:
            raise ValueError("retries_per_vm must be >= 0")
        self.server = server
        self.sim = server.sim
        self.cluster = cluster
        self.library = library
        self.catalog = catalog
        self.placement = placement or PlacementEngine()
        self.retries_per_vm = retries_per_vm
        # Explicit policy wins; otherwise one is derived from retries_per_vm
        # at deploy time (the attribute is mutable for ablations).
        self.retry_policy = retry_policy
        self._retry_rng = server.streams.stream(f"{server.name}:director-retry")
        self.metrics = MetricsRegistry(server.sim, prefix="director")
        self.vapps: list[VApp] = []
        # Gateway→director hop: on a mediated bus the director consumes
        # deploy requests from its topic (see ApiGateway.submit_deploy);
        # with direct calls the topic never exists.
        self._deploy_topic = None
        if server.bus.mediated:
            self.attach_bus(server.bus)
        # Telemetry handles from the server's hub (NULL_METRIC when disabled).
        telemetry = server.telemetry
        self._t_deploys = telemetry.counter("director_deploys_total")
        self._t_vm_failures = telemetry.counter("director_vm_failures_total")
        self._t_vm_retries = telemetry.counter("director_vm_retries_total")
        self._t_placement_failures = telemetry.counter(
            "director_placement_failures_total"
        )
        self._t_deploy_latency = telemetry.histogram("director_deploy_latency_s")

    def attach_bus(self, bus) -> None:
        """Subscribe the deploy topic and start the consumer (mediated)."""
        if self._deploy_topic is not None:
            raise RuntimeError("director already attached to a bus")
        self._deploy_topic = bus.subscribe(f"director.deploys:{self.server.name}")
        self.sim.spawn(self._serve_deploys(bus), name="director:bus-deploy-consumer")

    @property
    def deploy_topic_name(self) -> str:
        if self._deploy_topic is None:
            raise RuntimeError("director is not attached to a bus")
        return self._deploy_topic.name

    def _serve_deploys(self, bus) -> typing.Generator:
        """Drain deploy requests; duplicates are suppressed by key.

        The director is a separate tier from the management server, so
        handlers are *not* crash-interruptible — a server crash surfaces
        to the handler as a failed submit, which the per-VM retry loop
        already masks.
        """
        topic = self._deploy_topic
        while True:
            message = yield topic.get()
            if not bus.accept(message):
                continue
            request = message.payload
            handler = self.sim.spawn(
                self.deploy(request),
                name=f"director:deploy-handler:{request.vapp_name}",
            )
            bus.bridge(handler, message)

    def _tripped_hosts(self) -> set[str]:
        """Hosts whose agent circuit breaker is currently open."""
        out: set[str] = set()
        for host in self.cluster.hosts:
            try:
                agent = self.server.agent(host)
            except KeyError:
                continue
            if agent.breaker is not None and agent.breaker.engaged:
                out.add(host.entity_id)
        return out

    def _effective_policy(self) -> RetryPolicy:
        """The per-VM retry policy for this deploy.

        Deploy retries also cover :class:`OperationError`: a host flapping
        between placement and execution surfaces as a precondition failure,
        and re-placement elsewhere is exactly the right response.
        """
        if self.retry_policy is not None:
            return self.retry_policy
        return RetryPolicy(
            max_attempts=1 + self.retries_per_vm,
            base_backoff_s=2.0,
            backoff_multiplier=2.0,
            max_backoff_s=30.0,
            jitter=0.5,
            retry_on=(TransientError, OperationError),
        )

    # -- deploy ----------------------------------------------------------------

    def deploy(
        self, request: DeployRequest
    ) -> typing.Generator[typing.Any, typing.Any, VApp]:
        """Process-style: deploy a vApp; returns it (state settled).

        Quota and placement failures raise before any operation is issued;
        per-VM operation failures leave the vApp PARTIAL/FAILED.
        """
        template = self.library.get(request.item.template_name)
        storage_per_vm = (
            template.total_disk_gb if not request.item.linked else 1.0
        )
        request.org.charge(request.vm_count, storage_per_vm * request.vm_count)

        vapp = VApp(
            name=request.vapp_name,
            org=request.org,
            requested_vms=request.vm_count,
            requested_at=self.sim.now,
            state=VAppState.DEPLOYING,
            storage_charge_per_vm=storage_per_vm,
        )
        self.vapps.append(vapp)
        self.metrics.counter("deploy_requests").add()
        self.metrics.counter("vm_requests").add(request.vm_count)

        request_span = self.server.tracer.start_trace(
            f"deploy.{vapp.name}",
            phase=PHASE_REQUEST,
            tags={"org": request.org.name, "vms": request.vm_count},
        )
        workers = [
            self.sim.spawn(
                self._deploy_one(
                    request, template, vapp, index, storage_per_vm, request_span
                ),
                name=f"deploy:{vapp.name}:{index}",
            )
            for index in range(request.vm_count)
        ]
        yield AllOf(self.sim, workers)

        failures = 0
        for worker in workers:
            vm = worker.value
            if vm is None:
                failures += 1
            else:
                vapp.vms.append(vm)
        if failures:
            request.org.credit(failures, storage_per_vm * failures)
            self.metrics.counter("vm_failures").add(failures)
            self._t_vm_failures.add(failures)
        vapp.deployed_at = self.sim.now
        vapp.settle(failures)
        request_span.annotate("failures", failures)
        request_span.finish(error="DeployFailed" if failures else None)
        self.metrics.latency("deploy_latency").record(vapp.deploy_latency)
        self.metrics.counter(f"vapp_{vapp.state.value}").add()
        self._t_deploys.add()
        self._t_deploy_latency.observe(
            vapp.deploy_latency,
            trace_id=None if request_span.is_null else request_span.context.trace_id,
        )
        return vapp

    def _deploy_one(
        self,
        request: DeployRequest,
        template,
        vapp: VApp,
        index: int,
        storage_per_vm: float,
        request_span,
    ) -> typing.Generator[typing.Any, typing.Any, typing.Any]:
        """One member VM's deploy with policy-driven re-placement retries.

        Each retry backs off per the :class:`RetryPolicy` (no immediate
        re-submission hammering a saturated plane) and excludes hosts that
        already failed this VM, so re-placement actually moves — matching
        how self-service portals mask transient faults from tenants.
        Returns the VM, or None after exhausting retries.
        """
        vm_span = request_span.child(f"vm-{index}", phase=PHASE_REQUEST)
        try:
            result = yield from self._deploy_one_traced(
                request, template, vapp, index, storage_per_vm, vm_span
            )
        except BaseException as exc:
            vm_span.finish(error=type(exc).__name__)
            raise
        vm_span.finish(error=None if result is not None else "DeployFailed")
        return result

    def _deploy_one_traced(
        self,
        request: DeployRequest,
        template,
        vapp: VApp,
        index: int,
        storage_per_vm: float,
        vm_span,
    ) -> typing.Generator[typing.Any, typing.Any, typing.Any]:
        policy = self._effective_policy()
        excluded: set[str] = set()
        excluded_ds: set[str] = set()
        for attempt in range(policy.max_attempts):
            # Breaker-aware placement: a host whose agent breaker is open
            # would only fast-fail this attempt — steer around it up front
            # instead of discovering the outage one rejection at a time.
            tripped = self._tripped_hosts()
            if tripped - excluded:
                self.metrics.counter("breaker_avoidance").add()
            host = datastore = None
            tiers: list[set[str]] = []
            for tier in (excluded | tripped, excluded, set()):
                if tier not in tiers:
                    tiers.append(tier)
            for exclude in tiers:
                # Every candidate excluded is worse than retrying a
                # known-bad host: relax the exclusions tier by tier.
                try:
                    host, datastore = self.placement.choose(
                        self.cluster,
                        storage_per_vm,
                        memory_gb=template.memory_gb,
                        exclude_hosts=exclude,
                        exclude_datastores=excluded_ds,
                    )
                    break
                except PlacementError:
                    continue
            if host is None:
                self.metrics.counter("placement_failures").add()
                self._t_placement_failures.add()
                return None
            name = f"{vapp.name}-vm{index}"
            if attempt:
                name = f"{name}-r{attempt}"
                self.metrics.counter("vm_retries").add()
                self._t_vm_retries.add()
            operation = DeployFromTemplate(
                template, name, host, datastore, linked=request.item.linked
            )
            vm_span.annotate("host", host.name)
            vm_span.annotate("attempts", attempt + 1)
            try:
                # submit raises ServerCrashed synchronously while the
                # management server is down — same retry path as a task
                # that failed mid-flight.
                process = self.server.submit(operation, span=vm_span)
                task = yield process
            except Exception as error:
                # Attribute the failure to the resource that caused it:
                # a copy fault is pinned to the datastore, not the host;
                # a server crash indicts neither.
                if isinstance(error, CopyFailed):
                    excluded_ds.add(datastore.entity_id)
                elif not isinstance(error, ServerCrashed):
                    excluded.add(host.entity_id)
                if attempt + 1 >= policy.max_attempts or not policy.retryable(error):
                    return None
                delay = policy.backoff_s(attempt + 1, self._retry_rng)
                if delay > 0:
                    backoff_span = vm_span.child(
                        "replacement.backoff",
                        phase=PHASE_RETRY,
                        tags={"wait": True},
                    )
                    yield self.sim.timeout(delay)
                    backoff_span.finish()
                continue
            return task.result
        return None

    # -- delete -----------------------------------------------------------------

    def delete(self, vapp: VApp) -> typing.Generator[typing.Any, typing.Any, VApp]:
        """Process-style: power off and destroy every member VM.

        Idempotent under concurrency: a delete that races an in-flight
        delete of the same vApp is a no-op; deleting an already-deleted
        vApp is a caller error.
        """
        if vapp.state == VAppState.DELETED:
            raise ValueError(f"vApp {vapp.name!r} already deleted")
        if vapp.state == VAppState.DELETING:
            return vapp
        vapp.state = VAppState.DELETING
        for vm in vapp.vms:
            if vm.power_state == PowerState.ON:
                power_process = self.server.submit(PowerOff(vm))
                yield _swallow(self.sim, power_process)
            destroy_process = self.server.submit(DestroyVM(vm))
            yield _swallow(self.sim, destroy_process)
        vapp.org.credit(len(vapp.vms), vapp.storage_charge_per_vm * len(vapp.vms))
        vapp.state = VAppState.DELETED
        vapp.deleted_at = self.sim.now
        vapp.vms.clear()
        self.metrics.counter("deletes").add()
        return vapp

    # -- reporting ---------------------------------------------------------------

    def running_vapps(self) -> list[VApp]:
        return [v for v in self.vapps if v.state in (VAppState.RUNNING, VAppState.PARTIAL)]

    def deploy_latency_p(self, fraction: float) -> float:
        return self.metrics.latency("deploy_latency").percentile(fraction)


def _swallow(sim, process):
    """Wrap a process so a failure doesn't fail the AllOf (checked after)."""

    def guard():
        try:
            yield process
        except Exception:
            pass

    return sim.spawn(guard())
