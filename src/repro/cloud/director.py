"""The cloud director: the self-service API over the control plane.

Each tenant deploy request fans out into per-VM DeployFromTemplate
operations; each delete into power-off + destroy pairs. The director is
where the paper's workload multiplier lives: one click, many management
operations.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.cloud.catalog import Catalog, CatalogItem
from repro.cloud.placement import PlacementEngine, PlacementError
from repro.cloud.tenancy import Organization, QuotaExceeded
from repro.cloud.vapp import VApp, VAppState
from repro.datacenter.entities import Cluster
from repro.datacenter.templates import TemplateLibrary
from repro.datacenter.vm import PowerState
from repro.operations.provisioning import DeployFromTemplate
from repro.operations.lifecycle import DestroyVM
from repro.operations.power import PowerOff
from repro.sim.events import AllOf
from repro.sim.stats import MetricsRegistry
from repro.controlplane.server import ManagementServer


@dataclasses.dataclass
class DeployRequest:
    """A tenant's request: N instances of a catalog item as one vApp."""

    org: Organization
    item: CatalogItem
    vm_count: int
    vapp_name: str

    def __post_init__(self) -> None:
        if self.vm_count < 1:
            raise ValueError("vm_count must be >= 1")


class CloudDirector:
    """Self-service facade: deploy/delete vApps against one cluster."""

    def __init__(
        self,
        server: ManagementServer,
        cluster: Cluster,
        library: TemplateLibrary,
        catalog: Catalog,
        placement: PlacementEngine | None = None,
        retries_per_vm: int = 1,
    ) -> None:
        if retries_per_vm < 0:
            raise ValueError("retries_per_vm must be >= 0")
        self.server = server
        self.sim = server.sim
        self.cluster = cluster
        self.library = library
        self.catalog = catalog
        self.placement = placement or PlacementEngine()
        self.retries_per_vm = retries_per_vm
        self.metrics = MetricsRegistry(server.sim, prefix="director")
        self.vapps: list[VApp] = []

    # -- deploy ----------------------------------------------------------------

    def deploy(
        self, request: DeployRequest
    ) -> typing.Generator[typing.Any, typing.Any, VApp]:
        """Process-style: deploy a vApp; returns it (state settled).

        Quota and placement failures raise before any operation is issued;
        per-VM operation failures leave the vApp PARTIAL/FAILED.
        """
        template = self.library.get(request.item.template_name)
        storage_per_vm = (
            template.total_disk_gb if not request.item.linked else 1.0
        )
        request.org.charge(request.vm_count, storage_per_vm * request.vm_count)

        vapp = VApp(
            name=request.vapp_name,
            org=request.org,
            requested_vms=request.vm_count,
            requested_at=self.sim.now,
            state=VAppState.DEPLOYING,
            storage_charge_per_vm=storage_per_vm,
        )
        self.vapps.append(vapp)
        self.metrics.counter("deploy_requests").add()
        self.metrics.counter("vm_requests").add(request.vm_count)

        workers = [
            self.sim.spawn(
                self._deploy_one(request, template, vapp, index, storage_per_vm),
                name=f"deploy:{vapp.name}:{index}",
            )
            for index in range(request.vm_count)
        ]
        yield AllOf(self.sim, workers)

        failures = 0
        for worker in workers:
            vm = worker.value
            if vm is None:
                failures += 1
            else:
                vapp.vms.append(vm)
        if failures:
            request.org.credit(failures, storage_per_vm * failures)
            self.metrics.counter("vm_failures").add(failures)
        vapp.deployed_at = self.sim.now
        vapp.settle(failures)
        self.metrics.latency("deploy_latency").record(vapp.deploy_latency)
        self.metrics.counter(f"vapp_{vapp.state.value}").add()
        return vapp

    def _deploy_one(
        self,
        request: DeployRequest,
        template,
        vapp: VApp,
        index: int,
        storage_per_vm: float,
    ) -> typing.Generator[typing.Any, typing.Any, typing.Any]:
        """One member VM's deploy with re-placement retries.

        Each attempt re-runs placement (the failed host is typically
        avoided by the least-loaded policy once its ops fail fast) —
        matching how self-service portals mask transient faults from
        tenants. Returns the VM, or None after exhausting retries.
        """
        attempts = 1 + self.retries_per_vm
        for attempt in range(attempts):
            try:
                host, datastore = self.placement.choose(
                    self.cluster, storage_per_vm, memory_gb=template.memory_gb
                )
            except PlacementError:
                self.metrics.counter("placement_failures").add()
                return None
            name = f"{vapp.name}-vm{index}"
            if attempt:
                name = f"{name}-r{attempt}"
                self.metrics.counter("vm_retries").add()
            operation = DeployFromTemplate(
                template, name, host, datastore, linked=request.item.linked
            )
            process = self.server.submit(operation)
            try:
                task = yield process
            except Exception:
                continue
            return task.result
        return None

    # -- delete -----------------------------------------------------------------

    def delete(self, vapp: VApp) -> typing.Generator[typing.Any, typing.Any, VApp]:
        """Process-style: power off and destroy every member VM.

        Idempotent under concurrency: a delete that races an in-flight
        delete of the same vApp is a no-op; deleting an already-deleted
        vApp is a caller error.
        """
        if vapp.state == VAppState.DELETED:
            raise ValueError(f"vApp {vapp.name!r} already deleted")
        if vapp.state == VAppState.DELETING:
            return vapp
        vapp.state = VAppState.DELETING
        for vm in vapp.vms:
            if vm.power_state == PowerState.ON:
                power_process = self.server.submit(PowerOff(vm))
                yield _swallow(self.sim, power_process)
            destroy_process = self.server.submit(DestroyVM(vm))
            yield _swallow(self.sim, destroy_process)
        vapp.org.credit(len(vapp.vms), vapp.storage_charge_per_vm * len(vapp.vms))
        vapp.state = VAppState.DELETED
        vapp.deleted_at = self.sim.now
        vapp.vms.clear()
        self.metrics.counter("deletes").add()
        return vapp

    # -- reporting ---------------------------------------------------------------

    def running_vapps(self) -> list[VApp]:
        return [v for v in self.vapps if v.state in (VAppState.RUNNING, VAppState.PARTIAL)]

    def deploy_latency_p(self, fraction: float) -> float:
        return self.metrics.latency("deploy_latency").percentile(fraction)


def _swallow(sim, process):
    """Wrap a process so a failure doesn't fail the AllOf (checked after)."""

    def guard():
        try:
            yield process
        except Exception:
            pass

    return sim.spawn(guard())
