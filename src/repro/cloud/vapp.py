"""vApps: the unit of self-service deployment (a group of VMs)."""

from __future__ import annotations

import dataclasses
import enum
import typing

from repro.datacenter.vm import VirtualMachine

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.cloud.tenancy import Organization


class VAppState(enum.Enum):
    REQUESTED = "requested"
    DEPLOYING = "deploying"
    RUNNING = "running"
    PARTIAL = "partial"       # some member VMs failed to deploy
    STOPPED = "stopped"
    DELETING = "deleting"
    DELETED = "deleted"
    FAILED = "failed"


@dataclasses.dataclass
class VApp:
    """A tenant-visible application: one or more VMs deployed together."""

    name: str
    org: "Organization"
    requested_vms: int
    state: VAppState = VAppState.REQUESTED
    vms: list[VirtualMachine] = dataclasses.field(default_factory=list)
    requested_at: float = 0.0
    deployed_at: float | None = None
    deleted_at: float | None = None
    # Quota accounting: storage GB charged per member VM at deploy time.
    storage_charge_per_vm: float = 0.0

    @property
    def deploy_latency(self) -> float:
        """Request-to-running latency (the tenant-visible metric)."""
        if self.deployed_at is None:
            raise RuntimeError(f"vApp {self.name!r} not deployed")
        return self.deployed_at - self.requested_at

    @property
    def vm_count(self) -> int:
        return len(self.vms)

    def settle(self, failures: int) -> None:
        """Move to the terminal deploy state given the failure count."""
        if failures == 0:
            self.state = VAppState.RUNNING
        elif failures < self.requested_vms:
            self.state = VAppState.PARTIAL
        else:
            self.state = VAppState.FAILED
