"""Elasticity: capacity watchers that trigger infrastructure reconfiguration.

This closes the loop of the paper's claim 4: the faster tenants provision,
the faster these policies fire add-host / add-datastore / rescan
operations — turning "previously infrequent" reconfiguration into a
steady-state component of the management workload.
"""

from __future__ import annotations

import typing

from repro.datacenter.entities import Cluster, Datastore, Host
from repro.operations.reconfiguration import AddDatastore, AddHost
from repro.sim.stats import MetricsRegistry
from repro.controlplane.server import ManagementServer


class SparePool:
    """Standby capacity the elasticity policy can draw on."""

    def __init__(
        self,
        hosts: typing.Sequence[Host] = (),
        datastore_capacity_gb: float = 20_000.0,
    ) -> None:
        self._hosts = list(hosts)
        self.datastore_capacity_gb = datastore_capacity_gb
        self._datastore_count = 0

    @property
    def hosts_remaining(self) -> int:
        return len(self._hosts)

    def take_host(self) -> Host | None:
        return self._hosts.pop(0) if self._hosts else None

    def make_datastore(self) -> Datastore:
        self._datastore_count += 1
        return Datastore(
            entity_id=f"ds-spare-{self._datastore_count}",
            name=f"elastic-lun{self._datastore_count:02d}",
            capacity_gb=self.datastore_capacity_gb,
        )


class ElasticityPolicy:
    """Periodic watcher: grows the cluster when watermarks are crossed.

    - ``vms_per_host_high``: average VMs/host beyond which a spare host is
      added (rescanning every shared datastore on join).
    - ``datastore_free_fraction_low``: minimum free fraction across shared
      datastores below which a new datastore is provisioned and mounted on
      every host (a rescan per host).
    """

    def __init__(
        self,
        server: ManagementServer,
        cluster: Cluster,
        spares: SparePool,
        check_interval_s: float = 300.0,
        vms_per_host_high: float = 20.0,
        datastore_free_fraction_low: float = 0.15,
    ) -> None:
        if check_interval_s <= 0:
            raise ValueError("check_interval_s must be positive")
        self.server = server
        self.cluster = cluster
        self.spares = spares
        self.check_interval_s = check_interval_s
        self.vms_per_host_high = vms_per_host_high
        self.datastore_free_fraction_low = datastore_free_fraction_low
        self.metrics = MetricsRegistry(server.sim, prefix="elasticity")
        self.actions: list[tuple[float, str]] = []
        self._running = False
        self._until: float | None = None

    def start(self, until: float | None = None) -> None:
        """Spawn the periodic watcher process.

        ``until`` bounds the watcher in simulated time; without it the
        watcher runs for the life of the simulation (and an unbounded
        ``sim.run()`` drain would never return — pass a horizon when the
        caller drains that way).
        """
        if self._running:
            raise RuntimeError("elasticity policy already started")
        self._running = True
        self._until = until
        self.server.sim.spawn(self._watch(), name="elasticity")

    def stop(self) -> None:
        """Ask the watcher to exit at its next wake-up."""
        self._until = self.server.sim.now

    # -- decision logic (public so tests and benches can call it directly) ---

    def needs_host(self) -> bool:
        hosts = self.cluster.usable_hosts
        if not hosts:
            return False
        vms_per_host = sum(len(host.vms) for host in hosts) / len(hosts)
        return vms_per_host > self.vms_per_host_high

    def needs_datastore(self) -> bool:
        shared = self.cluster.shared_datastores()
        if not shared:
            return False
        worst = min(ds.free_gb / ds.capacity_gb for ds in shared)
        return worst < self.datastore_free_fraction_low

    def check_once(self) -> typing.Generator[typing.Any, typing.Any, list[str]]:
        """Process-style: evaluate watermarks, issue reconfig ops. Returns
        the action names taken this round."""
        taken: list[str] = []
        if self.needs_host():
            host = self.spares.take_host()
            if host is not None:
                shared = sorted(
                    self.cluster.shared_datastores(), key=lambda ds: ds.entity_id
                )
                process = self.server.submit(AddHost(host, self.cluster, shared))
                yield process
                taken.append("add_host")
                self.metrics.counter("add_host").add()
        if self.needs_datastore():
            datastore = self.spares.make_datastore()
            process = self.server.submit(
                AddDatastore(datastore, self.cluster.usable_hosts)
            )
            yield process
            taken.append("add_datastore")
            self.metrics.counter("add_datastore").add()
        for action in taken:
            self.actions.append((self.server.sim.now, action))
        return taken

    def _watch(self) -> typing.Generator:
        while True:
            yield self.server.sim.timeout(self.check_interval_s)
            if self._until is not None and self.server.sim.now >= self._until:
                return
            try:
                yield from self.check_once()
            except Exception:
                # A failed grow attempt (e.g. host handshake timeout) must
                # not kill the watcher; it retries next interval.
                self.metrics.counter("errors").add()
