"""Federated self-service cloud: full tenant workflows over shards.

R-F9 shows raw clone storms scale with shards; this module closes the
loop for *complete tenant workflows*: a :class:`FederatedCloud` runs one
CloudDirector per shard (each with its own cluster, templates, and
catalog) behind an org-affinity router, so entire deploy/delete requests
— placement, quota, customization, power — execute against an N-shard
design.

Bus-routed federation (``affinity_only=False``) federates the shards over
the PR 6 message bus instead of pinning every org's work to its home
shard:

- **Topics.** Each shard owns an exclusive ``fed.submit:{shard}`` topic
  (the locality-preferred path) and every shard joins one shared
  ``fed.shared`` topic (:meth:`MessageBus.subscribe_shared`) that acts as
  a pull-based work pool.
- **Locality-aware routing.** A tenant deploy publishes to its home
  shard's topic when the home is healthy and unsaturated; idle shards
  *steal* from the shared pool, so locality is a preference, not a pin.
- **Spillover.** When the home shard's task queue depth reaches
  ``spill_queue_depth`` (or its retry budget burns below
  ``spill_retry_tokens``), the submission spills to ``fed.shared`` where
  any healthy shard picks it up.
- **Failover.** When a ``shard_crash``/``server_crash`` window fires, new
  submissions for the crashed home are re-routed to ``fed.shared`` at
  publish time, and submissions already pending on the crashed shard's
  topic are *forwarded* there by its consumer
  (:meth:`MessageBus.forward`) — the idempotency key travels with the
  message, so a submission executes at most once no matter how many
  shards saw a copy. ``check_federation_exactly_once`` in
  :mod:`repro.faults.chaos` asserts no lost or duplicated terminal state
  across shard boundaries.

Compatibility switch: ``affinity_only=True`` (the default) leaves the
router exactly as it always was — no topics are created, no consumers
spawn, and the schedule is byte-identical to a bus-free federation (the
differential test ``tests/cloud/test_federation_neutrality.py``, the same
discipline as ``direct_calls`` on the bus itself).

Per-shard ``steals`` / ``spills`` / ``reroutes`` / ``remote_completions``
counters surface through telemetry probes (``federation_*{shard=...}``)
and a dedicated section in the ``repro-top`` dashboard; the ``hot_shard``
triage rule pattern-matches on them. R-X8 is the exhibit.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.cloud.catalog import Catalog, CatalogItem
from repro.cloud.director import CloudDirector, DeployRequest
from repro.cloud.placement import PlacementEngine
from repro.cloud.tenancy import Organization
from repro.cloud.vapp import VApp
from repro.controlplane.costs import ControlPlaneConfig, ControlPlaneCosts, DEFAULT_COSTS
from repro.controlplane.shard import ShardedControlPlane
from repro.datacenter.entities import Cluster, Datacenter, Datastore, Host, Network
from repro.datacenter.templates import DEFAULT_SPECS, TemplateLibrary
from repro.sim.kernel import Simulator
from repro.sim.random import RandomStreams
from repro.sim.stats import MetricsRegistry
from repro.telemetry import NULL_TELEMETRY

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.controlplane.bus import Message, MessageBus

#: The federation-wide shared submission topic (work-stealing pool).
SHARED_TOPIC = "fed.shared"


def local_topic_name(shard_name: str) -> str:
    """The locality-preferred submission topic for one shard."""
    return f"fed.submit:{shard_name}"


@dataclass
class FederationShardStats:
    """Per-shard federation routing counters.

    ``steals``: submissions this shard pulled from the shared pool whose
    home was another shard. ``spills``: submissions re-routed away from
    this shard because it was saturated. ``reroutes``: submissions
    re-routed away because this shard was inside a crash window (at
    publish time or forwarded off its pending queue). ``remote_completions``:
    stolen submissions this shard carried to completion.
    """

    steals: int = 0
    spills: int = 0
    reroutes: int = 0
    remote_completions: int = 0


@dataclass(frozen=True)
class _FedSubmission:
    """The bus payload for one tenant deploy: executable by any shard.

    Carries names rather than bound entities — the executing shard binds
    the request to its *own* catalog, library, and hosts, which is what
    makes cross-shard stealing semantically safe (a stolen deploy lands
    on survivor capacity instead of referencing a dead shard's
    inventory).
    """

    org: Organization
    item_name: str
    vm_count: int
    vapp_name: str
    home: int


class FederatedCloud:
    """N shard-local clouds behind a router with org affinity.

    Each org is pinned to one shard (health-aware, least-loaded at first
    sight): tenant state stays shard-local, which is how real federations
    avoid cross-shard transactions. With ``affinity_only=False`` and a
    mediated bus, deploys ride federation topics with work-stealing,
    spillover, and shard-crash failover (see the module docstring).
    """

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        shard_count: int,
        hosts_per_shard: int = 8,
        datastores_per_shard: int = 2,
        datastore_capacity_gb: float = 50_000.0,
        costs: ControlPlaneCosts = DEFAULT_COSTS,
        config: ControlPlaneConfig | None = None,
        bus: "MessageBus | None" = None,
        affinity_only: bool = True,
        journal: bool = False,
        telemetry=None,
        spill_queue_depth: int = 6,
        spill_retry_tokens: float | None = 2.0,
        steal_poll_s: float = 1.0,
    ) -> None:
        if shard_count < 1 or hosts_per_shard < 1 or datastores_per_shard < 1:
            raise ValueError("shard/host/datastore counts must be >= 1")
        if spill_queue_depth < 1:
            raise ValueError("spill_queue_depth must be >= 1")
        self.sim = sim
        self.plane = ShardedControlPlane(
            sim, streams, shard_count=shard_count, costs=costs, config=config,
            journal=journal,
        )
        self.metrics = MetricsRegistry(sim, prefix="federation")
        self.bus = bus
        self.affinity_only = affinity_only
        self.spill_queue_depth = spill_queue_depth
        self.spill_retry_tokens = spill_retry_tokens
        self.steal_poll_s = steal_poll_s
        self.directors: list[CloudDirector] = []
        self.shard_stats = [FederationShardStats() for _ in range(shard_count)]
        self._org_to_director: dict[str, CloudDirector] = {}
        self._org_home: dict[str, int] = {}
        self._next_director = 0
        self._vapp_director: dict[int, CloudDirector] = {}
        self._submissions: list[tuple[str, typing.Any]] = []
        self._submit_seq = 0

        host_index = 0
        for shard in self.plane.shards:
            inventory = shard.inventory
            datacenter = inventory.create(Datacenter, name=f"dc-{shard.name}")
            cluster = inventory.create(Cluster, name=f"cluster-{shard.name}")
            datacenter.add_cluster(cluster)
            network = inventory.create(Network, name=f"net-{shard.name}")
            datastores = [
                inventory.create(
                    Datastore,
                    name=f"lun-{shard.name}-{i}",
                    capacity_gb=datastore_capacity_gb,
                )
                for i in range(datastores_per_shard)
            ]
            for _ in range(hosts_per_shard):
                host = Host(entity_id=f"host-{host_index}", name=f"esx{host_index:03d}")
                host_index += 1
                inventory.register(host)
                cluster.add_host(host)
                for datastore in datastores:
                    host.mount(datastore)
                host.attach_network(network)
                shard.adopt_host(host)
                self.plane.register_routing(host, shard)
            library = TemplateLibrary(inventory)
            catalog = Catalog(f"catalog-{shard.name}")
            for spec in DEFAULT_SPECS[:2]:
                library.publish(spec, datastores[0])
                catalog.add(CatalogItem(f"{spec.name}-linked", spec.name, linked=True))
            self.directors.append(
                CloudDirector(
                    shard,
                    cluster,
                    library,
                    catalog,
                    placement=PlacementEngine(policy="least_loaded"),
                )
            )

        t = telemetry if telemetry is not None else NULL_TELEMETRY
        for index, shard in enumerate(self.plane.shards):
            stats = self.shard_stats[index]
            for field, help_text in (
                ("steals", "submissions pulled from the shared pool for another home"),
                ("spills", "submissions spilled off this shard by saturation"),
                ("reroutes", "submissions re-routed off this shard by a crash window"),
                ("remote_completions", "stolen submissions carried to completion here"),
            ):
                t.probe(
                    f"federation_{field}",
                    lambda s=stats, f=field: float(getattr(s, f)),
                    help=help_text,
                    shard=shard.name,
                )

        self._local_topics: list = []
        self._shared_topic = None
        if not affinity_only:
            if bus is None or not bus.mediated:
                raise ValueError(
                    "bus-routed federation needs a mediated MessageBus "
                    "(direct_calls=False); pass one or keep affinity_only=True"
                )
            self._shared_topic = bus.subscribe_shared(SHARED_TOPIC)
            for index, shard in enumerate(self.plane.shards):
                self._local_topics.append(bus.subscribe(local_topic_name(shard.name)))
            for index, shard in enumerate(self.plane.shards):
                sim.spawn(self._serve_local(index), name=f"fed-local:{shard.name}")
                sim.spawn(self._serve_shared(index), name=f"fed-shared:{shard.name}")

    # -- routing ------------------------------------------------------------

    def director_for(self, org: Organization) -> CloudDirector:
        """The org's home shard (health-aware, least-loaded on first use).

        Homing skips shards inside a crash window and prefers the least
        loaded of the rest, breaking ties in rotation order — with every
        shard healthy and equally loaded this reduces exactly to the
        original round-robin, so all-healthy schedules are unchanged. If
        *every* shard is down, the rotation pick stands (the deploy will
        fail or be re-routed downstream, but homing stays deterministic).
        """
        if org.name not in self._org_to_director:
            index = self._home_index_for_new_org()
            self._next_director = index + 1
            self._org_to_director[org.name] = self.directors[index]
            self._org_home[org.name] = index
            self.metrics.counter("orgs_homed").add()
        return self._org_to_director[org.name]

    def _home_index_for_new_org(self) -> int:
        count = len(self.directors)
        best: tuple[int, int] | None = None
        for offset in range(count):
            index = (self._next_director + offset) % count
            shard = self.plane.shards[index]
            if self.plane.is_down(shard):
                continue
            load = self.plane.load_of(shard)
            if best is None or load < best[0]:
                best = (load, index)
        if best is None:
            return self._next_director % count
        return best[1]

    def home_of(self, org: Organization) -> int | None:
        """The shard index ``org`` is homed on (None before first use)."""
        return self._org_home.get(org.name)

    def _saturated(self, index: int) -> bool:
        shard = self.plane.shards[index]
        if shard.tasks.queue_depth >= self.spill_queue_depth:
            return True
        budget = shard.retry_budget
        return (
            budget is not None
            and self.spill_retry_tokens is not None
            and budget.tokens < self.spill_retry_tokens
        )

    def _route(self, home: int) -> str:
        """Pick the submission topic for a deploy homed on ``home``."""
        shard = self.plane.shards[home]
        if self.plane.is_down(shard):
            self.shard_stats[home].reroutes += 1
            return SHARED_TOPIC
        if self._saturated(home):
            self.shard_stats[home].spills += 1
            return SHARED_TOPIC
        return local_topic_name(shard.name)

    def deploy(
        self, org: Organization, item_name: str, vm_count: int, vapp_name: str
    ) -> typing.Generator[typing.Any, typing.Any, VApp]:
        """Process-style: route and execute one tenant deploy."""
        director = self.director_for(org)
        if self.affinity_only:
            request = DeployRequest(
                org=org,
                item=director.catalog.get(item_name),
                vm_count=vm_count,
                vapp_name=vapp_name,
            )
            vapp = yield from director.deploy(request)
            self._vapp_director[id(vapp)] = director
            self.metrics.latency("deploy_latency").record(vapp.deploy_latency)
            return vapp
        home = self._org_home[org.name]
        started = self.sim.now
        topic_name = self._route(home)
        self._submit_seq += 1
        key = f"fed-submit:{self._submit_seq}:{vapp_name}"
        reply = self.sim.event(name=f"fed-reply:{key}")
        self._submissions.append((key, reply))
        submission = _FedSubmission(
            org=org, item_name=item_name, vm_count=vm_count,
            vapp_name=vapp_name, home=home,
        )
        yield from self.bus.publish(topic_name, submission, key=key, reply=reply)
        vapp = yield reply
        # Tenant-perceived latency: publish through completion, bus queue
        # wait included (the affinity path's vapp.deploy_latency starts at
        # director admission, which is the same instant there).
        self.metrics.latency("deploy_latency").record(self.sim.now - started)
        return vapp

    # -- federation consumers ------------------------------------------------

    def _serve_local(self, index: int):
        """Consumer for one shard's locality-preferred topic.

        While the shard is inside a crash window, pending submissions are
        forwarded to the shared pool instead of accepted — the failover
        hop. The idempotency key rides along, so survivors execute each
        forwarded submission at most once.
        """
        topic = self._local_topics[index]
        while True:
            message = yield topic.get()
            if self.plane.is_down(self.plane.shards[index]):
                self.shard_stats[index].reroutes += 1
                self.bus.forward(message, SHARED_TOPIC)
                continue
            if not self.bus.accept(message):
                continue
            self._start_execution(index, message)

    def _serve_shared(self, index: int):
        """Consumer for the shared work-stealing pool.

        A shard only pulls from the pool while healthy and unsaturated —
        stealing is how idle capacity absorbs a hot or crashed sibling's
        load, not a way to overload itself. A message that lands while
        the shard is crashing back-offs one poll interval and returns to
        the pool for a healthier sibling.
        """
        topic = self._shared_topic
        while True:
            while (
                self.plane.is_down(self.plane.shards[index])
                or self._saturated(index)
            ):
                yield self.sim.timeout(self.steal_poll_s)
            message = yield topic.get()
            if self.plane.is_down(self.plane.shards[index]):
                yield self.sim.timeout(self.steal_poll_s)
                self.bus.forward(message, SHARED_TOPIC)
                continue
            if not self.bus.accept(message):
                continue
            if message.payload.home != index:
                self.shard_stats[index].steals += 1
            self._start_execution(index, message)

    def _start_execution(self, index: int, message: "Message") -> None:
        submission = message.payload
        process = self.sim.spawn(
            self._execute(index, submission),
            name=f"fed-exec:{self.plane.shards[index].name}:{submission.vapp_name}",
        )
        self.bus.bridge(process, message)

    def _execute(self, index: int, submission: _FedSubmission):
        """Run one federated deploy against the executing shard's own cloud."""
        director = self.directors[index]
        request = DeployRequest(
            org=submission.org,
            item=director.catalog.get(submission.item_name),
            vm_count=submission.vm_count,
            vapp_name=submission.vapp_name,
        )
        vapp = yield from director.deploy(request)
        self._vapp_director[id(vapp)] = director
        if submission.home != index:
            self.shard_stats[index].remote_completions += 1
        return vapp

    def delete(self, vapp: VApp) -> typing.Generator[typing.Any, typing.Any, VApp]:
        # Deletes go straight to the director that actually deployed the
        # vApp (its VMs live on that shard's hosts); the home director is
        # only a fallback for vApps this cloud never saw deploy.
        director = self._vapp_director.get(id(vapp)) or self.director_for(vapp.org)
        return (yield from director.delete(vapp))

    # -- reporting -------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self.directors)

    def deploy_latency_p(self, fraction: float) -> float:
        return self.metrics.latency("deploy_latency").percentile(fraction)

    def completed_tasks(self) -> int:
        return self.plane.completed_tasks()

    def utilization_snapshot(self, since: float = 0.0) -> dict[str, float]:
        return self.plane.utilization_snapshot(since)

    def unresolved_submissions(self) -> list[str]:
        """Keys of bus-routed submissions whose reply never settled."""
        return [key for key, reply in self._submissions if not reply.triggered]

    def federation_totals(self) -> dict[str, int]:
        """Summed per-shard routing counters."""
        return {
            field: sum(getattr(stats, field) for stats in self.shard_stats)
            for field in ("steals", "spills", "reroutes", "remote_completions")
        }
