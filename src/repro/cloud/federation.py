"""Federated self-service cloud: full tenant workflows over shards.

R-F9 shows raw clone storms scale with shards; this module closes the
loop for *complete tenant workflows*: a :class:`FederatedCloud` runs one
CloudDirector per shard (each with its own cluster, templates, and
catalog) behind an org-affinity router, so entire deploy/delete requests
— placement, quota, customization, power — execute against an N-shard
design.
"""

from __future__ import annotations

import typing

from repro.cloud.catalog import Catalog, CatalogItem
from repro.cloud.director import CloudDirector, DeployRequest
from repro.cloud.placement import PlacementEngine
from repro.cloud.tenancy import Organization
from repro.cloud.vapp import VApp
from repro.controlplane.costs import ControlPlaneConfig, ControlPlaneCosts, DEFAULT_COSTS
from repro.controlplane.shard import ShardedControlPlane
from repro.datacenter.entities import Cluster, Datacenter, Datastore, Host, Network
from repro.datacenter.templates import DEFAULT_SPECS, TemplateLibrary
from repro.sim.kernel import Simulator
from repro.sim.random import RandomStreams
from repro.sim.stats import MetricsRegistry


class FederatedCloud:
    """N shard-local clouds behind a router with org affinity.

    Each org is pinned to one shard (round-robin at first sight): tenant
    state stays shard-local, which is how real federations avoid
    cross-shard transactions.
    """

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        shard_count: int,
        hosts_per_shard: int = 8,
        datastores_per_shard: int = 2,
        datastore_capacity_gb: float = 50_000.0,
        costs: ControlPlaneCosts = DEFAULT_COSTS,
        config: ControlPlaneConfig | None = None,
    ) -> None:
        if shard_count < 1 or hosts_per_shard < 1 or datastores_per_shard < 1:
            raise ValueError("shard/host/datastore counts must be >= 1")
        self.sim = sim
        self.plane = ShardedControlPlane(
            sim, streams, shard_count=shard_count, costs=costs, config=config
        )
        self.metrics = MetricsRegistry(sim, prefix="federation")
        self.directors: list[CloudDirector] = []
        self._org_to_director: dict[str, CloudDirector] = {}
        self._next_director = 0

        host_index = 0
        for shard in self.plane.shards:
            inventory = shard.inventory
            datacenter = inventory.create(Datacenter, name=f"dc-{shard.name}")
            cluster = inventory.create(Cluster, name=f"cluster-{shard.name}")
            datacenter.add_cluster(cluster)
            network = inventory.create(Network, name=f"net-{shard.name}")
            datastores = [
                inventory.create(
                    Datastore,
                    name=f"lun-{shard.name}-{i}",
                    capacity_gb=datastore_capacity_gb,
                )
                for i in range(datastores_per_shard)
            ]
            for _ in range(hosts_per_shard):
                host = Host(entity_id=f"host-{host_index}", name=f"esx{host_index:03d}")
                host_index += 1
                inventory.register(host)
                cluster.add_host(host)
                for datastore in datastores:
                    host.mount(datastore)
                host.attach_network(network)
                shard.adopt_host(host)
                self.plane.register_routing(host, shard)
            library = TemplateLibrary(inventory)
            catalog = Catalog(f"catalog-{shard.name}")
            for spec in DEFAULT_SPECS[:2]:
                library.publish(spec, datastores[0])
                catalog.add(CatalogItem(f"{spec.name}-linked", spec.name, linked=True))
            self.directors.append(
                CloudDirector(
                    shard,
                    cluster,
                    library,
                    catalog,
                    placement=PlacementEngine(policy="least_loaded"),
                )
            )

    # -- routing ------------------------------------------------------------

    def director_for(self, org: Organization) -> CloudDirector:
        """The org's home shard (assigned round-robin on first use)."""
        if org.name not in self._org_to_director:
            director = self.directors[self._next_director % len(self.directors)]
            self._next_director += 1
            self._org_to_director[org.name] = director
            self.metrics.counter("orgs_homed").add()
        return self._org_to_director[org.name]

    def deploy(
        self, org: Organization, item_name: str, vm_count: int, vapp_name: str
    ) -> typing.Generator[typing.Any, typing.Any, VApp]:
        """Process-style: route and execute one tenant deploy."""
        director = self.director_for(org)
        request = DeployRequest(
            org=org,
            item=director.catalog.get(item_name),
            vm_count=vm_count,
            vapp_name=vapp_name,
        )
        vapp = yield from director.deploy(request)
        self.metrics.latency("deploy_latency").record(vapp.deploy_latency)
        return vapp

    def delete(self, vapp: VApp) -> typing.Generator[typing.Any, typing.Any, VApp]:
        director = self.director_for(vapp.org)
        return (yield from director.delete(vapp))

    # -- reporting -------------------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self.directors)

    def deploy_latency_p(self, fraction: float) -> float:
        return self.metrics.latency("deploy_latency").percentile(fraction)

    def completed_tasks(self) -> int:
        return self.plane.completed_tasks()

    def utilization_snapshot(self, since: float = 0.0) -> dict[str, float]:
        return self.plane.utilization_snapshot(since)
