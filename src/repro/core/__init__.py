"""Public API: scenarios, the profiler, and the experiment registry.

Start here::

    from repro import CloudManagementProfiler, profiles

    profiler = CloudManagementProfiler(profiles.CLOUD_A, seed=7)
    result = profiler.run(duration=6 * 3600.0)
    print(result.report())
"""

from repro.core.experiments import (
    EXPERIMENTS,
    PARALLEL_EXPERIMENTS,
    ExperimentResult,
    run_experiment,
)
from repro.core.parallel import derive_seed, resolve_parallelism, run_cells
from repro.core.profiler import CloudManagementProfiler, ProfileResult
from repro.core.scenario import Scenario, ScenarioResult
from repro.core.sensitivity import sweep

__all__ = [
    "CloudManagementProfiler",
    "EXPERIMENTS",
    "ExperimentResult",
    "PARALLEL_EXPERIMENTS",
    "ProfileResult",
    "Scenario",
    "ScenarioResult",
    "derive_seed",
    "resolve_parallelism",
    "run_cells",
    "run_experiment",
    "sweep",
]
