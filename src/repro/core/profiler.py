"""The headline API: profile the management workload of a cloud setup.

This is the reproduction of what the paper *is*: a characterization
harness. Point it at a cloud profile, run a measurement window, and it
returns the analyses the paper reports — operation mix, latency
distributions, arrival dynamics, and control-vs-data plane attribution.
"""

from __future__ import annotations

import typing

from repro.analysis.report import render_series, render_table
from repro.controlplane.costs import ControlPlaneConfig, ControlPlaneCosts, DEFAULT_COSTS
from repro.core.scenario import Scenario, ScenarioResult
from repro.workloads.profiles import CloudProfile


class ProfileResult(ScenarioResult):
    """ScenarioResult plus a formatted characterization report."""

    def report(self) -> str:
        """The full text characterization, section per analysis."""
        sections = [
            f"=== Management-workload profile: {self.scenario.profile.name} ===",
            f"window: {self.scenario.duration_s:.0f}s  seed: {self.scenario.seed}  "
            f"operations: {len(self.trace)}  failure rate: {self.failure_rate():.1%}",
            "",
        ]
        mix_rows = sorted(
            self.operation_mix().items(), key=lambda item: -item[1]
        )
        sections.append(
            render_table(
                ["operation", "share (%)", "count"],
                [
                    [op, f"{fraction * 100:.1f}", self.operation_counts()[op]]
                    for op, fraction in mix_rows
                ],
                title="Operation mix",
            )
        )
        sections.append("")
        latency_rows = [
            [op, f"{s['p50']:.2f}", f"{s['p95']:.2f}", f"{s['p99']:.2f}", s["count"]]
            for op, s in self.latency_by_type().items()
        ]
        sections.append(
            render_table(
                ["operation", "p50 (s)", "p95 (s)", "p99 (s)", "n"],
                latency_rows,
                title="Operation latency",
            )
        )
        sections.append("")
        breakdown = self.plane_breakdown()
        sections.append(
            render_table(
                ["plane", "share of wall time (%)"],
                [[plane, f"{fraction * 100:.1f}"] for plane, fraction in breakdown.items()],
                title="Plane attribution",
            )
        )
        sections.append("")
        utilization = self.utilization()
        sections.append(
            render_table(
                ["resource", "value"],
                [[key, f"{value:.3f}"] for key, value in utilization.items()],
                title="Control-plane utilization",
            )
        )
        series = self.arrival_series()
        if series:
            sections.append("")
            sections.append(
                render_series(
                    "Arrival rate", series, x_name="t (s)", y_name="ops/s"
                )
            )
        return "\n".join(sections)


class CloudManagementProfiler:
    """Characterize the management workload a cloud profile induces."""

    def __init__(
        self,
        profile: CloudProfile,
        seed: int = 0,
        costs: ControlPlaneCosts = DEFAULT_COSTS,
        config: ControlPlaneConfig | None = None,
    ) -> None:
        self.profile = profile
        self.seed = seed
        self.costs = costs
        self.config = config

    def run(self, duration: float = 4 * 3600.0) -> ProfileResult:
        """Run one measurement window and return its analyses."""
        scenario = Scenario(
            profile=self.profile,
            duration_s=duration,
            seed=self.seed,
            costs=self.costs,
            config=self.config,
        )
        result = scenario.run()
        return ProfileResult(scenario=scenario, driver=result.driver)
