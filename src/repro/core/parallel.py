"""Parallel sweep runner: independent experiment cells across processes.

Every multi-cell exhibit (R-F3, R-F5, R-F6, R-F-phase, R-F9, R-T3) is a
sweep whose cells are *embarrassingly parallel*: each cell builds its own
:class:`~repro.sim.kernel.Simulator` and its own seeded
:class:`~repro.sim.random.RandomStreams`, runs to completion, and reports
plain numbers. Nothing is shared, so the cells can run on as many cores as
the machine has without touching the determinism story — a cell's result is
a pure function of its (picklable) descriptor.

The contract:

- ``run_cells(worker, cells)`` returns results **in cell order** (ordered
  deterministic merge), regardless of which worker finished first.
- With parallelism off (the default), the cells run serially in-process —
  the exact code path the committed exhibits were generated with.
- With parallelism on, each cell runs in a ``ProcessPoolExecutor`` worker;
  results are value-identical because the cell already owned its simulator
  and seed.

Parallelism is requested either programmatically (``parallel=N``), via the
CLI (``--parallel N``), or via the ``REPRO_BENCH_PARALLEL`` environment
variable; ``0`` means "one worker per CPU".
"""

from __future__ import annotations

import os
import typing

#: Environment switch honoured when no explicit parallelism is requested.
ENV_VAR = "REPRO_BENCH_PARALLEL"

_MASK64 = (1 << 64) - 1

Cell = typing.TypeVar("Cell")
Result = typing.TypeVar("Result")


def resolve_parallelism(requested: int | None = None) -> int:
    """Number of workers to use: explicit request, else ``REPRO_BENCH_PARALLEL``.

    Returns 1 (serial, in-process) when neither is set. ``0`` expands to the
    CPU count; negative values are rejected.
    """
    if requested is None:
        raw = os.environ.get(ENV_VAR, "").strip()
        if not raw:
            return 1
        try:
            requested = int(raw)
        except ValueError:
            raise ValueError(f"{ENV_VAR}={raw!r} is not an integer") from None
    if requested < 0:
        raise ValueError(f"parallelism must be >= 0, got {requested}")
    if requested == 0:
        requested = os.cpu_count() or 1
    return requested


def derive_seed(base: int, index: int) -> int:
    """A stable, well-mixed per-cell seed (splitmix64 over base and index).

    Cells that need *distinct* random streams (rather than a shared base
    seed) derive them here so the mapping is reproducible across runs,
    machines, and worker counts — never from worker identity or wall time.
    """
    z = ((base & _MASK64) + (0x9E3779B97F4A7C15 * (index + 1))) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def run_cells(
    worker: typing.Callable[[Cell], Result],
    cells: typing.Sequence[Cell],
    parallel: int | None = None,
) -> list[Result]:
    """Run ``worker`` over every cell; results come back in cell order.

    ``worker`` must be a module-level callable and each cell descriptor
    picklable (they cross a process boundary when parallelism is on). With
    one worker — or one cell — this is a plain serial loop, bit-identical
    to the pre-parallel code path.
    """
    cells = list(cells)
    workers = resolve_parallelism(parallel)
    if workers <= 1 or len(cells) <= 1:
        return [worker(cell) for cell in cells]
    from concurrent.futures import ProcessPoolExecutor

    workers = min(workers, len(cells))
    with ProcessPoolExecutor(max_workers=workers) as pool:
        return list(pool.map(worker, cells))
