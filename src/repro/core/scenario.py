"""Scenarios: one reproducible run of a profile, with analysis attached."""

from __future__ import annotations

import dataclasses
import typing

from repro.analysis.bottleneck import plane_breakdown, plane_breakdown_by_type
from repro.analysis.latency import latency_by_type, latency_cdf, latency_stats
from repro.analysis.mix import operation_counts, operation_mix
from repro.analysis.timeseries import arrival_rate_series, completion_rate_series
from repro.controlplane.costs import ControlPlaneConfig, ControlPlaneCosts, DEFAULT_COSTS
from repro.sim.kernel import Simulator
from repro.sim.random import RandomStreams
from repro.traces.records import TraceRecord
from repro.workloads.driver import WorkloadDriver
from repro.workloads.profiles import CloudProfile


@dataclasses.dataclass
class Scenario:
    """A fully-specified run: profile + duration + seed + knobs.

    ``stats_interval_s``/``stats_level`` optionally run the always-on
    statistics-collection load alongside the workload (off by default so
    headline exhibits isolate the operation stream; R-X2 studies the
    interaction explicitly).
    """

    profile: CloudProfile
    duration_s: float = 4 * 3600.0
    seed: int = 0
    costs: ControlPlaneCosts = DEFAULT_COSTS
    config: ControlPlaneConfig | None = None
    stats_interval_s: float | None = None
    stats_level: int = 1

    def run(self) -> "ScenarioResult":
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        sim = Simulator()
        driver = WorkloadDriver(
            sim,
            RandomStreams(self.seed),
            self.profile,
            costs=self.costs,
            config=self.config,
        )
        if self.stats_interval_s is not None:
            from repro.controlplane.stats_sync import StatsCollector

            collector = StatsCollector(
                driver.server,
                interval_s=self.stats_interval_s,
                level=self.stats_level,
            )
            collector.start(until=self.duration_s)
        driver.run(self.duration_s)
        return ScenarioResult(scenario=self, driver=driver)


class ScenarioResult:
    """The outcome of one scenario run: trace plus analysis accessors."""

    def __init__(self, scenario: Scenario, driver: WorkloadDriver) -> None:
        self.scenario = scenario
        self.driver = driver
        self.server = driver.server
        self._trace: list[TraceRecord] | None = None

    @property
    def trace(self) -> list[TraceRecord]:
        if self._trace is None:
            self._trace = self.driver.trace()
        return self._trace

    # -- analysis shortcuts ---------------------------------------------------

    def operation_mix(self) -> dict[str, float]:
        return operation_mix(self.trace)

    def operation_counts(self) -> dict[str, int]:
        return operation_counts(self.trace)

    def latency_stats(self) -> dict[str, float]:
        return latency_stats(self.trace)

    def latency_by_type(self) -> dict[str, dict[str, float]]:
        return latency_by_type(self.trace)

    def latency_cdf(self, op_type: str | None = None, points: int = 50):
        records = self.trace
        if op_type is not None:
            records = [r for r in records if r.op_type == op_type]
        return latency_cdf(records, points=points)

    def plane_breakdown(self) -> dict[str, float]:
        return plane_breakdown(self.trace)

    def plane_breakdown_by_type(self) -> dict[str, dict[str, float]]:
        return plane_breakdown_by_type(self.trace)

    def arrival_series(self, bin_s: float = 300.0):
        return arrival_rate_series(self.trace, bin_s=bin_s)

    def completion_series(self, bin_s: float = 300.0):
        return completion_rate_series(self.trace, bin_s=bin_s)

    def utilization(self) -> dict[str, float]:
        return self.server.utilization_snapshot()

    def queue_depth_series(self) -> list[tuple[float, float]]:
        return self.server.tasks.queue_depth_series()

    def failure_rate(self) -> float:
        if not self.trace:
            return 0.0
        return sum(1 for record in self.trace if not record.success) / len(self.trace)

    def throughput(self) -> float:
        """Completed operations per second over the full run."""
        if self.server.sim.now <= 0:
            return 0.0
        return len(self.trace) / self.server.sim.now
