"""The experiment registry: one entry per reconstructed table/figure.

Each experiment function builds its workload, runs the simulation, and
returns an :class:`ExperimentResult` whose rows/series are what the
paper's corresponding exhibit reports. ``benchmarks/`` wraps these;
EXPERIMENTS.md records the expected shapes.

Every experiment accepts ``seed`` (reproducibility) and ``quick``
(shrunken sizes for CI; benches run the full sizes).
"""

from __future__ import annotations

import dataclasses
import typing

from repro.analysis.bottleneck import phase_breakdown, plane_breakdown
from repro.analysis.latency import latency_by_type
from repro.analysis.mix import mix_comparison
from repro.analysis.report import render_series, render_table
from repro.analysis.timeseries import arrival_rate_series, peak_to_trough
from repro.controlplane.costs import ControlPlaneConfig, ControlPlaneCosts, DEFAULT_COSTS
from repro.controlplane.bus import MessageBus
from repro.controlplane.recovery import NULL_JOURNAL, TaskJournal
from repro.controlplane.server import ManagementServer
from repro.controlplane.shard import ShardedControlPlane
from repro.core.parallel import run_cells
from repro.core.scenario import Scenario
from repro.datacenter.entities import Cluster, Datacenter, Datastore, Host, Network
from repro.datacenter.templates import DEFAULT_SPECS, MEDIUM_LINUX, TemplateLibrary
from repro.operations.provisioning import CloneVM, DeployFromTemplate
from repro.operations.reconfiguration import AddHost, RescanDatastore
from repro.sim.kernel import Simulator
from repro.sim.random import RandomStreams
from repro.telemetry.metrics import NULL_TELEMETRY, Telemetry
from repro.telemetry.recorder import NULL_RECORDER, FlightRecorder
from repro.tracing import NULL_TRACER, RetentionPolicy, SampledTracer, Tracer
from repro.triage.engine import NULL_TRIAGE, TriageEngine
from repro.workloads.arrivals import MMPPBurst, Poisson
from repro.workloads.lifetimes import CLASSIC_DC_LIFETIME, CLOUD_A_LIFETIME
from repro.workloads.profiles import CLASSIC_DC, CLOUD_A, CLOUD_B


@dataclasses.dataclass
class ExperimentResult:
    """Rows (table) and/or series (figure) for one exhibit."""

    exp_id: str
    title: str
    headers: list[str]
    rows: list[list[typing.Any]]
    series: dict[str, list[tuple[float, float]]] = dataclasses.field(default_factory=dict)
    notes: str = ""

    def render(self) -> str:
        parts = [render_table(self.headers, self.rows, title=f"{self.exp_id}: {self.title}")]
        for label, pairs in self.series.items():
            parts.append("")
            parts.append(render_series(label, pairs))
        if self.notes:
            parts.append("")
            parts.append(f"note: {self.notes}")
        return "\n".join(parts)


# --------------------------------------------------------------------------
# Shared rig: a managed cluster for storm experiments.
# --------------------------------------------------------------------------


class StormRig:
    """A cluster + template ready for provisioning storms."""

    def __init__(
        self,
        seed: int = 0,
        hosts: int = 16,
        datastores: int = 4,
        datastore_capacity_gb: float = 100_000.0,
        host_memory_gb: float = 128.0,
        costs: ControlPlaneCosts = DEFAULT_COSTS,
        config: ControlPlaneConfig | None = None,
        traced: bool = False,
        telemetry: bool = False,
        scrape_interval_s: float = 5.0,
        journal: bool = False,
        bus: bool = False,
        direct_calls: bool = True,
        triage: bool = False,
        queue: str | None = None,
        sample_budget: int | None = None,
        recorder: bool = False,
    ) -> None:
        self.sim = Simulator(queue=queue)
        self.streams = RandomStreams(seed)
        # sample_budget switches traced runs onto tail-based retention:
        # full span trees inside a fixed budget instead of keep-everything.
        if traced and sample_budget is not None:
            self.tracer = SampledTracer(
                self.sim, RetentionPolicy(span_budget=sample_budget)
            )
        else:
            self.tracer = Tracer(self.sim) if traced else NULL_TRACER
        self.telemetry = (
            Telemetry(self.sim, scrape_interval_s=scrape_interval_s)
            if telemetry
            else NULL_TELEMETRY
        )
        self.journal = TaskJournal() if journal else NULL_JOURNAL
        # bus=True attaches a MessageBus; direct_calls=True keeps it inert
        # (byte-identical schedules), False routes the control-plane hops
        # through bus topics with at-least-once delivery.
        self.bus = (
            MessageBus(
                self.sim,
                rng=self.streams.stream("bus"),
                telemetry=self.telemetry,
                direct_calls=direct_calls,
            )
            if bus
            else None
        )
        self.server = ManagementServer(
            self.sim,
            self.streams.spawn("server"),
            costs=costs,
            config=config,
            tracer=self.tracer,
            telemetry=self.telemetry,
            journal=self.journal,
            bus=self.bus,
        )
        # triage=True subscribes the incident-triage engine to the SLO
        # monitor's fire hook; it reads roll-ups/spans only, so schedules
        # stay byte-identical with it attached.
        self.triage = (
            TriageEngine(self.telemetry, tracer=self.tracer).attach()
            if triage and telemetry
            else NULL_TRIAGE
        )
        # recorder=True attaches the incident flight recorder *after*
        # triage (listener order is call order, and a bundle wants the
        # verdict that triggered it). Read-only like triage, so schedules
        # stay byte-identical with it attached.
        self.recorder = (
            FlightRecorder(
                self.telemetry,
                tracer=self.tracer,
                bus=self.bus,
                triage=self.triage if triage else None,
            ).attach(server=self.server)
            if recorder and telemetry
            else NULL_RECORDER
        )
        inventory = self.server.inventory
        self.datacenter = inventory.create(Datacenter, name="dc")
        self.cluster = inventory.create(Cluster, name="cluster")
        self.datacenter.add_cluster(self.cluster)
        self.network = inventory.create(Network, name="net")
        self.datastores = [
            inventory.create(
                Datastore, name=f"lun{i:02d}", capacity_gb=datastore_capacity_gb
            )
            for i in range(datastores)
        ]
        self.hosts = []
        for index in range(hosts):
            host = inventory.create(
                Host, name=f"esx{index:02d}", memory_gb=host_memory_gb
            )
            self.cluster.add_host(host)
            for datastore in self.datastores:
                host.mount(datastore)
            self.server.adopt_host(host)
            self.hosts.append(host)
        self.library = TemplateLibrary(inventory)
        self.template = self.library.publish(MEDIUM_LINUX, self.datastores[0])

    def clone_op(self, index: int, linked: bool) -> CloneVM:
        return CloneVM(
            self.template,
            f"storm-{index}",
            self.hosts[index % len(self.hosts)],
            self.datastores[index % len(self.datastores)],
            linked=linked,
        )

    def closed_loop_storm(
        self, total: int, concurrency: int, linked: bool
    ) -> dict[str, float]:
        """Keep ``concurrency`` clones in flight until ``total`` complete.

        Returns makespan, throughput (clones/hour), and latency stats.
        """
        if total < 1 or concurrency < 1:
            raise ValueError("total and concurrency must be >= 1")
        start = self.sim.now
        queue = list(range(total))

        def worker() -> typing.Generator:
            while queue:
                index = queue.pop(0)
                process = self.server.submit(self.clone_op(index, linked))
                try:
                    yield process
                except Exception:
                    pass

        workers = [
            self.sim.spawn(worker(), name=f"worker-{w}")
            for w in range(min(concurrency, total))
        ]
        # Wait for the workers specifically (not quiescence): background
        # processes like stats collectors may outlive the storm.
        from repro.sim.events import AllOf

        self.sim.run(until=AllOf(self.sim, workers))
        # Hard accounting invariant: every submitted clone reached a
        # terminal state — a stranded task fails the exhibit loudly
        # instead of silently shrinking goodput.
        self.server.tasks.assert_accounted()
        makespan = self.sim.now - start
        done = self.server.tasks.succeeded()
        latencies = sorted(task.latency for task in done)
        return {
            "makespan_s": makespan,
            "completed": len(done),
            "throughput_per_hour": len(done) / makespan * 3600.0 if makespan > 0 else 0.0,
            "latency_p50": latencies[len(latencies) // 2] if latencies else 0.0,
            "bytes_written_gb": self.server.copy_engine.total_bytes_written / 1024**3,
        }


def _quick_profile(profile, quick: bool):
    if not quick:
        return profile
    return dataclasses.replace(
        profile,
        hosts=max(4, profile.hosts // 4),
        datastores=max(2, profile.datastores // 2),
        initial_vms_per_host=2,
    )


# --------------------------------------------------------------------------
# R-T1 — setup characteristics.
# --------------------------------------------------------------------------


def experiment_t1_setups(seed: int = 0, quick: bool = False) -> ExperimentResult:
    """R-T1: the two clouds' (and baseline's) infrastructure shapes."""
    rows = []
    for profile in (CLOUD_A, CLOUD_B, CLASSIC_DC):
        rows.append(
            [
                profile.name,
                profile.hosts,
                profile.datastores,
                f"{profile.datastore_capacity_gb:.0f}",
                profile.orgs,
                profile.hosts * profile.initial_vms_per_host,
                f"{profile.linked_clone_fraction:.0%}",
                f"{profile.mix.provisioning_fraction():.0%}",
            ]
        )
    return ExperimentResult(
        exp_id="R-T1",
        title="Cloud setup characteristics",
        headers=[
            "setup",
            "hosts",
            "datastores",
            "ds GB",
            "orgs",
            "initial VMs",
            "linked %",
            "provisioning mix %",
        ],
        rows=rows,
        notes="Profile parameters; see workloads/profiles.py for rationale.",
    )


# --------------------------------------------------------------------------
# R-T2 — operation mix comparison.
# --------------------------------------------------------------------------


def experiment_t2_opmix(seed: int = 0, quick: bool = False) -> ExperimentResult:
    """R-T2: management-operation mix, clouds vs classic datacenter."""
    duration = 2 * 3600.0 if quick else 12 * 3600.0
    traces = {}
    for profile in (CLOUD_A, CLOUD_B, CLASSIC_DC):
        result = Scenario(
            profile=_quick_profile(profile, quick), duration_s=duration, seed=seed
        ).run()
        traces[profile.name] = result.trace
    headers, rows = mix_comparison(traces)
    provisioning = {
        label: sum(
            record.latency >= 0 and record.op_type in
            ("deploy", "destroy", "clone_full", "clone_linked")
            for record in trace
        ) / max(1, len(trace))
        for label, trace in traces.items()
    }
    notes = "provisioning share: " + ", ".join(
        f"{label}={share:.0%}" for label, share in provisioning.items()
    )
    return ExperimentResult(
        exp_id="R-T2",
        title="Operation mix by setup",
        headers=headers,
        rows=rows,
        notes=notes,
    )


# --------------------------------------------------------------------------
# R-F1 — diurnal arrival pattern.
# --------------------------------------------------------------------------


def experiment_f1_arrivals(seed: int = 0, quick: bool = False) -> ExperimentResult:
    """R-F1: operation arrival rate over one day (Cloud A, diurnal)."""
    duration = 6 * 3600.0 if quick else 24 * 3600.0
    result = Scenario(
        profile=_quick_profile(CLOUD_A, quick), duration_s=duration, seed=seed
    ).run()
    series = result.arrival_series(bin_s=1800.0)
    ratio = peak_to_trough(series)
    return ExperimentResult(
        exp_id="R-F1",
        title="Arrival rate over the day (Cloud A)",
        headers=["metric", "value"],
        rows=[
            ["operations", len(result.trace)],
            ["peak/trough rate ratio", f"{ratio:.1f}"],
            ["mean ops/s", f"{len(result.trace) / duration:.4f}"],
        ],
        series={"arrival rate (ops/s)": series},
        notes="Expect a pronounced diurnal envelope (ratio >> 1).",
    )


# --------------------------------------------------------------------------
# R-F2 — latency CDFs per operation type.
# --------------------------------------------------------------------------


def experiment_f2_latency_cdf(seed: int = 0, quick: bool = False) -> ExperimentResult:
    """R-F2: per-operation latency distributions under cloud load."""
    duration = 2 * 3600.0 if quick else 8 * 3600.0
    result = Scenario(
        profile=_quick_profile(CLOUD_B, quick), duration_s=duration, seed=seed
    ).run()
    stats = latency_by_type(result.trace)
    rows = [
        [op, s["count"], f"{s['p50']:.2f}", f"{s['p95']:.2f}", f"{s['p99']:.2f}"]
        for op, s in stats.items()
        if s["count"] >= 3
    ]
    series = {}
    for op in ("deploy", "power_on", "rescan_datastore"):
        cdf = result.latency_cdf(op_type=op)
        if cdf:
            series[f"{op} latency CDF"] = cdf
    return ExperimentResult(
        exp_id="R-F2",
        title="Operation latency distributions (Cloud B)",
        headers=["operation", "n", "p50 (s)", "p95 (s)", "p99 (s)"],
        rows=rows,
        series=series,
        notes="Heavy-tailed bodies; reconfiguration ops sit far right.",
    )


# --------------------------------------------------------------------------
# R-F3 — provisioning throughput vs concurrency, full vs linked.
# --------------------------------------------------------------------------


def _f3_cell(cell: tuple[int, int, int, bool]) -> dict[str, float]:
    """One R-F3 sweep cell: its own rig, seed, and storm."""
    seed, total, concurrency, linked = cell
    rig = StormRig(seed=seed, hosts=16, datastores=4)
    return rig.closed_loop_storm(total, concurrency, linked)


def experiment_f3_throughput(
    seed: int = 0, quick: bool = False, parallel: int | None = None
) -> ExperimentResult:
    """R-F3 (headline): clone throughput vs offered concurrency."""
    concurrencies = (1, 4, 16, 64) if quick else (1, 2, 4, 8, 16, 32, 64, 128)
    total = 48 if quick else 128
    cells = [
        (seed, total, concurrency, linked)
        for linked in (True, False)
        for concurrency in concurrencies
    ]
    outcomes = run_cells(_f3_cell, cells, parallel=parallel)
    rows = []
    series: dict[str, list[tuple[float, float]]] = {"linked": [], "full": []}
    for (cell_seed, cell_total, concurrency, linked), outcome in zip(cells, outcomes):
        label = "linked" if linked else "full"
        rows.append(
            [
                label,
                concurrency,
                f"{outcome['throughput_per_hour']:.0f}",
                f"{outcome['latency_p50']:.1f}",
                f"{outcome['bytes_written_gb']:.0f}",
            ]
        )
        series[label].append((concurrency, outcome["throughput_per_hour"]))
    return ExperimentResult(
        exp_id="R-F3",
        title="Provisioning throughput vs concurrency",
        headers=["mode", "concurrency", "clones/hour", "p50 latency (s)", "GB written"],
        rows=rows,
        series={f"{k} clones/hour": v for k, v in series.items()},
        notes=(
            "Linked wins at every point and saturates at the control plane; "
            "full saturates earlier, at the storage plane."
        ),
    )


# --------------------------------------------------------------------------
# R-F4 — data moved per provisioned VM.
# --------------------------------------------------------------------------


def experiment_f4_bandwidth(seed: int = 0, quick: bool = False) -> ExperimentResult:
    """R-F4: data-plane bytes per provision, full vs linked."""
    total = 24 if quick else 64
    rows = []
    for linked in (False, True):
        rig = StormRig(seed=seed, hosts=8, datastores=4)
        outcome = rig.closed_loop_storm(total, concurrency=8, linked=linked)
        per_vm_gb = outcome["bytes_written_gb"] / max(1, outcome["completed"])
        rows.append(
            [
                "linked" if linked else "full",
                outcome["completed"],
                f"{outcome['bytes_written_gb']:.1f}",
                f"{per_vm_gb:.3f}",
            ]
        )
    full_gb = float(rows[0][3])
    linked_gb = float(rows[1][3])
    reduction = full_gb / linked_gb if linked_gb > 0 else float("inf")
    return ExperimentResult(
        exp_id="R-F4",
        title="Data moved per provisioned VM",
        headers=["mode", "VMs", "total GB", "GB per VM"],
        rows=rows,
        notes=f"Linked clones reduce data-plane bytes by {reduction:.0f}x "
        "(inf means zero bytes moved).",
    )


# --------------------------------------------------------------------------
# R-F5 — control-plane utilization vs provisioning rate.
# --------------------------------------------------------------------------


def _f5_cell(cell: tuple[int, float, float]) -> dict[str, typing.Any]:
    """One R-F5 sweep cell: an open-loop storm at one arrival rate."""
    seed, rate, duration = cell
    rig = StormRig(seed=seed, hosts=16, datastores=4)
    arrivals = Poisson(rate=rate)
    rng = rig.streams.stream("arrivals")

    def open_loop() -> typing.Generator:
        index = 0
        while rig.sim.now < duration:
            next_time = arrivals.next_arrival(rig.sim.now, rng)
            if next_time >= duration:
                return
            yield rig.sim.timeout(next_time - rig.sim.now)
            rig.server.submit(rig.clone_op(index, linked=True))
            index += 1

    rig.sim.spawn(open_loop(), name="open-loop")
    rig.sim.run(until=duration)
    rig.sim.run()  # drain
    snapshot = rig.server.utilization_snapshot()
    done = rig.server.tasks.succeeded()
    latencies = sorted(task.latency for task in done) or [0.0]
    return {
        "done": len(done),
        "cpu": snapshot["cpu"],
        "db": snapshot["db"],
        "hostd_mean": snapshot["hostd_mean"],
        "p50": latencies[len(latencies) // 2],
        "bottleneck": rig.server.bottleneck(),
    }


def experiment_f5_cp_load(
    seed: int = 0, quick: bool = False, parallel: int | None = None
) -> ExperimentResult:
    """R-F5: which resource saturates as linked-clone deploy rate rises."""
    rates = (0.25, 1.0, 4.0) if quick else (0.25, 0.5, 1.0, 2.0, 3.0, 4.0)
    duration = 1200.0 if quick else 1800.0
    rows = []
    series = {"cpu": [], "db": [], "hostd": []}
    outcomes = run_cells(
        _f5_cell, [(seed, rate, duration) for rate in rates], parallel=parallel
    )
    for rate, outcome in zip(rates, outcomes):
        rows.append(
            [
                f"{rate:.2f}",
                outcome["done"],
                f"{outcome['cpu']:.2f}",
                f"{outcome['db']:.2f}",
                f"{outcome['hostd_mean']:.2f}",
                f"{outcome['p50']:.1f}",
                outcome["bottleneck"],
            ]
        )
        series["cpu"].append((rate, outcome["cpu"]))
        series["db"].append((rate, outcome["db"]))
        series["hostd"].append((rate, outcome["hostd_mean"]))
    return ExperimentResult(
        exp_id="R-F5",
        title="Control-plane utilization vs linked-clone deploy rate",
        headers=["rate (ops/s)", "done", "cpu", "db", "hostd", "p50 (s)", "bottleneck"],
        rows=rows,
        series={f"{k} utilization": v for k, v in series.items()},
        notes="With zero data-plane bytes, a control-plane resource saturates first.",
    )


# --------------------------------------------------------------------------
# R-F6 — reconfiguration cost vs inventory scale.
# --------------------------------------------------------------------------


def _f6_cell(cell: tuple[int, int, int]) -> tuple[float, float]:
    """One R-F6 sweep cell: rescan + add-host latency at one inventory size."""
    seed, host_count, datastore_count = cell
    rig = StormRig(seed=seed, hosts=host_count, datastores=datastore_count)
    process = rig.server.submit(RescanDatastore(rig.datastores[0]))
    rescan_task = rig.sim.run(until=process)
    new_host = Host(entity_id="host-new", name="esx-new")
    process = rig.server.submit(
        AddHost(new_host, rig.cluster, rig.datastores, networks=[rig.network])
    )
    addhost_task = rig.sim.run(until=process)
    return rescan_task.latency, addhost_task.latency


def experiment_f6_reconfig_scale(
    seed: int = 0, quick: bool = False, parallel: int | None = None
) -> ExperimentResult:
    """R-F6: rescan and add-host latency as the inventory grows."""
    host_counts = (8, 32) if quick else (8, 16, 32, 64, 128)
    datastore_count = 8
    rows = []
    rescan_series = []
    addhost_series = []
    outcomes = run_cells(
        _f6_cell,
        [(seed, host_count, datastore_count) for host_count in host_counts],
        parallel=parallel,
    )
    for host_count, (rescan_latency, addhost_latency) in zip(host_counts, outcomes):
        rows.append(
            [
                host_count,
                datastore_count,
                f"{rescan_latency:.1f}",
                f"{addhost_latency:.1f}",
            ]
        )
        rescan_series.append((host_count, rescan_latency))
        addhost_series.append((host_count, addhost_latency))
    return ExperimentResult(
        exp_id="R-F6",
        title="Reconfiguration cost vs inventory scale",
        headers=["hosts", "datastores", "rescan (s)", "add host (s)"],
        rows=rows,
        series={
            "rescan latency (s)": rescan_series,
            "add-host latency (s)": addhost_series,
        },
        notes="Rescan grows with mounting hosts; add-host with datastore count.",
    )


# --------------------------------------------------------------------------
# R-F7 — task-queue depth during a burst.
# --------------------------------------------------------------------------


def experiment_f7_queue_depth(seed: int = 0, quick: bool = False) -> ExperimentResult:
    """R-F7: management task queue during an MMPP provisioning burst."""
    duration = 1800.0 if quick else 7200.0
    config = ControlPlaneConfig(max_inflight_tasks=24)
    rig = StormRig(seed=seed, hosts=16, datastores=4, config=config)
    # Burst rate is far above the control plane's ~3 ops/s service ceiling,
    # so every burst builds a backlog that drains through the calm phase.
    arrivals = MMPPBurst(
        calm_rate=0.02, burst_rate=6.0, mean_calm_s=900.0, mean_burst_s=150.0
    )
    rng = rig.streams.stream("arrivals")

    def open_loop() -> typing.Generator:
        index = 0
        while True:
            next_time = arrivals.next_arrival(rig.sim.now, rng)
            if next_time >= duration:
                return
            yield rig.sim.timeout(next_time - rig.sim.now)
            rig.server.submit(rig.clone_op(index, linked=True))
            index += 1

    rig.sim.spawn(open_loop(), name="burst-loop")
    rig.sim.run(until=duration)
    rig.sim.run()
    depth_series = rig.server.tasks.queue_depth_series()
    max_depth = max((depth for _, depth in depth_series), default=0.0)
    mean_depth = rig.server.tasks.metrics.gauge("queue_depth").time_average()
    return ExperimentResult(
        exp_id="R-F7",
        title="Task-queue depth under bursty provisioning",
        headers=["metric", "value"],
        rows=[
            ["clones completed", len(rig.server.tasks.succeeded())],
            ["max queue depth", f"{max_depth:.0f}"],
            ["time-mean queue depth", f"{mean_depth:.2f}"],
        ],
        series={"queue depth": [(t, d) for t, d in depth_series]},
        notes="Bursts overwhelm the dispatch limit; depth spikes then drains.",
    )


# --------------------------------------------------------------------------
# R-F8 — end-to-end deploy latency breakdown.
# --------------------------------------------------------------------------


def experiment_f8_breakdown(seed: int = 0, quick: bool = False) -> ExperimentResult:
    """R-F8: where deploy time goes — control vs data plane, full vs linked."""
    total = 16 if quick else 48
    rows = []
    for linked in (False, True):
        rig = StormRig(seed=seed, hosts=8, datastores=4)
        processes = [
            rig.server.submit(
                DeployFromTemplate(
                    rig.template,
                    f"deploy-{index}",
                    rig.hosts[index % len(rig.hosts)],
                    rig.datastores[index % len(rig.datastores)],
                    linked=linked,
                )
            )
            for index in range(total)
        ]
        rig.sim.run()
        tasks = rig.server.tasks.succeeded()
        from repro.traces.records import TraceRecord

        records = [TraceRecord.from_task(task) for task in tasks]
        breakdown = plane_breakdown(records)
        top_phases = phase_breakdown(tasks)[:3]
        rows.append(
            [
                "linked" if linked else "full",
                f"{breakdown['control'] * 100:.0f}",
                f"{breakdown['data'] * 100:.0f}",
                f"{breakdown['unattributed'] * 100:.0f}",
                ", ".join(f"{name}({plane[0]})" for name, plane, _ in top_phases),
            ]
        )
    return ExperimentResult(
        exp_id="R-F8",
        title="Deploy latency breakdown by plane",
        headers=["mode", "control %", "data %", "queued %", "top phases"],
        rows=rows,
        notes="Full deploys are data-dominated; linked deploys are 100% control.",
    )


# --------------------------------------------------------------------------
# R-T3 — design ablations.
# --------------------------------------------------------------------------


def _t3_cell(
    cell: tuple[int, int, int, ControlPlaneConfig]
) -> dict[str, float]:
    """One R-T3 ablation cell: a storm under one config variant."""
    seed, total, concurrency, config = cell
    rig = StormRig(seed=seed, hosts=16, datastores=4, config=config)
    return rig.closed_loop_storm(total, concurrency, linked=True)


def experiment_t3_ablations(
    seed: int = 0, quick: bool = False, parallel: int | None = None
) -> ExperimentResult:
    """R-T3: which control-plane design knobs actually buy throughput."""
    total = 48 if quick else 128
    concurrency = 32
    variants: list[tuple[str, ControlPlaneConfig]] = [
        ("baseline", ControlPlaneConfig()),
        ("db batching", ControlPlaneConfig(db_batching=True)),
        ("2x cpu workers", ControlPlaneConfig(cpu_workers=16)),
        ("2x db connections", ControlPlaneConfig(db_connections=32)),
        ("2x host op slots", ControlPlaneConfig(per_host_op_slots=16)),
        ("2x copy slots", ControlPlaneConfig(copy_slots_per_datastore=8)),
        ("coarse locks", ControlPlaneConfig(lock_granularity="coarse")),
    ]
    outcomes = run_cells(
        _t3_cell,
        [(seed, total, concurrency, config) for _label, config in variants],
        parallel=parallel,
    )
    rows = []
    baseline_tph = None
    for (label, _config), outcome in zip(variants, outcomes):
        tph = outcome["throughput_per_hour"]
        if baseline_tph is None:
            baseline_tph = tph
        rows.append(
            [
                label,
                f"{tph:.0f}",
                f"{tph / baseline_tph:.2f}x",
                f"{outcome['latency_p50']:.1f}",
            ]
        )
    return ExperimentResult(
        exp_id="R-T3",
        title="Linked-clone storm throughput under design ablations",
        headers=["variant", "clones/hour", "vs baseline", "p50 latency (s)"],
        rows=rows,
        notes=(
            "Knobs on the actual bottleneck help; data-plane knobs (copy "
            "slots) do nothing for linked clones; coarse locking collapses."
        ),
    )


# --------------------------------------------------------------------------
# R-F9 — scale-out shards.
# --------------------------------------------------------------------------


def _f9_cell(cell: tuple[int, int, int, int]) -> tuple[int, float]:
    """One R-F9 sweep cell: a clone storm at one shard count."""
    seed, shard_count, total_hosts, clones = cell
    sim = Simulator()
    plane = ShardedControlPlane(sim, RandomStreams(seed), shard_count=shard_count)
    hosts = []
    shard_assets: dict[str, tuple] = {}
    for index in range(total_hosts):
        host = Host(entity_id=f"host-{index}", name=f"esx{index:02d}")
        shard = plane.adopt_host(host)
        hosts.append(host)
        if shard.name not in shard_assets:
            datastore = shard.inventory.create(
                Datastore, name=f"lun-{shard.name}", capacity_gb=200_000.0
            )
            library = TemplateLibrary(shard.inventory)
            template = library.publish(MEDIUM_LINUX, datastore)
            shard_assets[shard.name] = (template, datastore)
        host.mount(shard_assets[plane.shard_for_host(host).name][1])
    start = sim.now
    for index in range(clones):
        host = hosts[index % len(hosts)]
        shard = plane.shard_for_host(host)
        template, datastore = shard_assets[shard.name]
        plane.submit_on(
            host, CloneVM(template, f"vm-{index}", host, datastore, linked=True)
        )
    sim.run()
    makespan = sim.now - start
    throughput = plane.completed_tasks() / makespan * 3600.0 if makespan else 0.0
    return plane.completed_tasks(), throughput


def experiment_f9_shards(
    seed: int = 0, quick: bool = False, parallel: int | None = None
) -> ExperimentResult:
    """R-F9: provisioning throughput vs management-server shard count."""
    shard_counts = (1, 2, 4) if quick else (1, 2, 4, 8)
    total_hosts = 16
    clones = 64 if quick else 192
    rows = []
    series = []
    outcomes = run_cells(
        _f9_cell,
        [(seed, shard_count, total_hosts, clones) for shard_count in shard_counts],
        parallel=parallel,
    )
    for shard_count, (completed, throughput) in zip(shard_counts, outcomes):
        rows.append([shard_count, completed, f"{throughput:.0f}"])
        series.append((shard_count, throughput))
    return ExperimentResult(
        exp_id="R-F9",
        title="Throughput vs management-plane shard count",
        headers=["shards", "clones done", "clones/hour"],
        rows=rows,
        series={"clones/hour": series},
        notes="Near-linear until per-host agent slots dominate.",
    )


# --------------------------------------------------------------------------
# R-F10 — VM lifetime distributions.
# --------------------------------------------------------------------------


def experiment_f10_lifetimes(seed: int = 0, quick: bool = False) -> ExperimentResult:
    """R-F10: VM lifetime CDFs, cloud vs classic datacenter."""
    samples = 2000 if quick else 20000
    streams = RandomStreams(seed)
    series = {}
    rows = []
    for label, model in (("cloud_a", CLOUD_A_LIFETIME), ("classic_dc", CLASSIC_DC_LIFETIME)):
        rng = streams.stream(f"life:{label}")
        drawn = sorted(model.sample(rng) for _ in range(samples))
        cdf = [
            (drawn[int(fraction * (samples - 1))] / 3600.0, fraction)
            for fraction in (0.1, 0.25, 0.5, 0.75, 0.9, 0.99)
        ]
        series[f"{label} lifetime CDF (hours)"] = cdf
        rows.append(
            [
                label,
                f"{drawn[samples // 2] / 3600.0:.1f}",
                f"{drawn[int(samples * 0.9)] / 3600.0:.1f}",
                f"{drawn[int(samples * 0.99)] / 86400.0:.1f}",
            ]
        )
    return ExperimentResult(
        exp_id="R-F10",
        title="VM lifetime distribution: cloud vs classic",
        headers=["setup", "p50 (h)", "p90 (h)", "p99 (days)"],
        rows=rows,
        series=series,
        notes="Cloud VMs live hours; classic VMs live months (claim 2 churn).",
    )


# --------------------------------------------------------------------------
# Extensions beyond the paper's exhibits (labeled R-X*): the same
# control-plane lens applied to availability and monitoring load.
# --------------------------------------------------------------------------


def experiment_x1_restart_storm(seed: int = 0, quick: bool = False) -> ExperimentResult:
    """R-X1 (extension): HA restart storm cost vs VMs per failed host.

    When a host dies, its VMs restart elsewhere — a placement + power-on
    burst through the control plane. Time-to-recovery scales with the VM
    density clouds run at.
    """
    from repro.cloud.ha import HAManager
    from repro.datacenter.vm import PowerState, VirtualDisk, VirtualMachine
    from repro.storage.linked_clone import create_linked_backing

    densities = (4, 16) if quick else (4, 8, 16, 32, 64)
    rows = []
    series = []
    for density in densities:
        rig = StormRig(seed=seed, hosts=8, datastores=4)
        anchor = rig.template.disks[0].backing
        victim = rig.hosts[0]
        for index in range(density):
            # Seeded directly: the experiment measures recovery, not
            # provisioning.
            vm = rig.server.inventory.create(
                VirtualMachine,
                name=f"resident-{index}",
                power_state=PowerState.ON,
            )
            backing = create_linked_backing(anchor, rig.datastores[index % 4])
            vm.attach_disk(
                VirtualDisk(label="disk-0", backing=backing, provisioned_gb=40.0)
            )
            vm.place_on(victim)
        ha = HAManager(rig.server, rig.cluster)
        outcome = {}

        def recover():
            outcome.update((yield from ha.fail_host(victim)))

        start = rig.sim.now
        process = rig.sim.spawn(recover())
        rig.sim.run(until=process)
        recovery_s = rig.sim.now - start
        p95 = ha.metrics.latency("restart_latency").percentile(0.95)
        rows.append(
            [density, outcome["restarted"], f"{recovery_s:.1f}", f"{p95:.1f}"]
        )
        series.append((density, recovery_s))
    return ExperimentResult(
        exp_id="R-X1",
        title="HA restart storm: recovery time vs VM density (extension)",
        headers=["VMs on host", "restarted", "full recovery (s)", "p95 restart (s)"],
        rows=rows,
        series={"recovery time (s)": series},
        notes="Restarts are pure control-plane work; recovery scales with density.",
    )


def experiment_x2_stats_tax(seed: int = 0, quick: bool = False) -> ExperimentResult:
    """R-X2 (extension): the statistics-collection tax on provisioning.

    Periodic per-host stats collection is the control plane's always-on
    load. Sweeping the stats level under a fixed linked-clone storm shows
    monitoring fidelity competing directly with provisioning throughput.

    The modeled stats load itself is read back through the telemetry
    scraper: the collector's ``rows`` counter is watched, scraped into
    roll-up windows, and the reported rows/s comes from the roll-up sums
    — the same windowing the modeled vCenter hierarchy applies, one
    implementation serving both the model and its observation.
    """
    from repro.controlplane.stats_sync import StatsCollector

    levels = (0, 4) if quick else (0, 1, 2, 3, 4)
    total = 48 if quick else 96
    rows = []
    series = []
    baseline = None
    for level in levels:
        rig = StormRig(
            seed=seed,
            hosts=16,
            datastores=4,
            config=ControlPlaneConfig(db_connections=4),
            telemetry=True,
        )
        rig.telemetry.start()
        if level > 0:
            collector = StatsCollector(rig.server, interval_s=5.0, level=level)
            collector.start(until=36_000.0)
        outcome = rig.closed_loop_storm(total, concurrency=32, linked=True)
        tph = outcome["throughput_per_hour"]
        if baseline is None:
            baseline = tph
        elapsed = rig.sim.now
        rows_series = rig.telemetry.rollups.get(
            f'{rig.server.name}.stats.rows{{component="statsd"}}'
        )
        scraped_rows = (
            rows_series.trailing(elapsed, elapsed).sum if rows_series else 0.0
        )
        rows.append(
            [
                level,
                f"{tph:.0f}",
                f"{tph / baseline:.2f}x",
                f"{rig.server.database.utilization():.2f}",
                f"{scraped_rows / elapsed if elapsed else 0.0:.1f}",
            ]
        )
        series.append((level, tph))
    return ExperimentResult(
        exp_id="R-X2",
        title="Provisioning throughput vs stats-collection level (extension)",
        headers=[
            "stats level",
            "clones/hour",
            "vs no stats",
            "db utilization",
            "stats rows/s (scraped)",
        ],
        rows=rows,
        series={"clones/hour": series},
        notes="Richer monitoring (level 4 = 27x rows) erodes provisioning "
        "headroom. The rows/s column is read from the telemetry scraper's "
        "roll-ups, not the raw counter.",
    )


def experiment_x3_fault_goodput(seed: int = 0, quick: bool = False) -> ExperimentResult:
    """R-X3 (extension): provisioning goodput under faults vs resilience.

    An open-loop CLOUD_A-style deploy storm runs against a cluster while a
    standard fault schedule flaps hosts, degrades host agents (latency +
    drops), and slows the database. Three resilience postures are ablated:

    - ``none``: first failure is final (the pre-resilience plane);
    - ``retries``: the director re-places failed VMs with backoff;
    - ``full``: retries plus per-agent circuit breakers (fail fast instead
      of burning the call timeout), task deadlines, task-level retries for
      non-host-pinned transients under a retry budget, and admission
      shedding at the API gateway.

    Goodput counts successfully deployed VMs over the arrival window.
    Acceptance: goodput(none) < goodput(retries) < goodput(full); zero
    dead letters and zero unaccounted tasks with full resilience.
    """
    from repro.cloud.api import AdmissionShed, ApiGateway
    from repro.cloud.catalog import Catalog, CatalogItem
    from repro.cloud.director import CloudDirector, DeployRequest
    from repro.cloud.tenancy import Organization, User
    from repro.controlplane.resilience import (
        BreakerPolicy,
        NO_RETRY,
        RetryPolicy,
        TaskDeadlineExceeded,
    )
    from repro.faults import FaultInjector, FaultTargets, standard_fault_schedule
    from repro.faults.errors import InjectedFault, ShardUnavailable, TransientError
    from repro.operations.base import OperationError
    from repro.sim.events import AllOf
    from repro.storage.copy_engine import CopyFailed

    duration_s = 600.0 if quick else 1500.0
    arrival_rate = 1.6  # deploys/s — moderate load (~0.65 of fault-free capacity)
    fault_scale = 1.5
    # Failure detection compressed to match the storm timescale: a 120s
    # call timeout against 1500s of faults would spend the run detecting.
    costs = dataclasses.replace(DEFAULT_COSTS, host_call_timeout_s=20.0)

    # Director-level re-placement: the resilience the *cloud layer* adds.
    replace_policy = RetryPolicy(
        max_attempts=6,
        base_backoff_s=2.0,
        backoff_multiplier=2.0,
        max_backoff_s=30.0,
        jitter=0.5,
        retry_on=(TransientError, OperationError, TaskDeadlineExceeded),
    )
    # Task-level in-place retries: only faults that are not pinned to the
    # placement decision (DB/shard transients). Host- and datastore-pinned
    # failures (agent faults, copy faults) must fail fast so the director
    # re-places them on different resources.
    in_place_policy = RetryPolicy(
        max_attempts=3,
        base_backoff_s=1.0,
        backoff_multiplier=2.0,
        max_backoff_s=15.0,
        jitter=0.5,
        retry_on=(InjectedFault, ShardUnavailable),
    )
    variants: list[tuple[str, ControlPlaneConfig, RetryPolicy, float | None]] = [
        ("none", ControlPlaneConfig(), NO_RETRY, None),
        ("retries", ControlPlaneConfig(), replace_policy, None),
        (
            "full",
            ControlPlaneConfig(
                retry_policy=in_place_policy,
                retry_budget_ratio=0.2,
                task_deadline_s=240.0,
                breaker=BreakerPolicy(
                    failure_threshold=3, cooldown_s=45.0, half_open_probes=1
                ),
            ),
            replace_policy,
            128.0,  # shed watermark on the dispatch backlog
        ),
    ]

    rows = []
    goodputs: dict[str, float] = {}
    for label, config, director_policy, shed_watermark in variants:
        rig = StormRig(
            seed=seed,
            hosts=16,
            datastores=4,
            host_memory_gb=512.0,
            costs=costs,
            config=config,
        )
        server = rig.server
        catalog = Catalog("cloud-a")
        item = catalog.add(CatalogItem(name="web", template_name=MEDIUM_LINUX.name))
        org = Organization("acme", quota_vms=100_000, quota_storage_gb=1e9)
        director = CloudDirector(
            server, rig.cluster, rig.library, catalog, retry_policy=director_policy
        )
        gateway = ApiGateway(rig.sim, requests_per_minute=600.0, burst=50.0)
        if shed_watermark is not None:
            gateway.enable_shedding(
                lambda srv=server: srv.tasks.queue_depth, shed_watermark
            )
        session = gateway.login(User("tenant", org))

        injector = FaultInjector(
            rig.sim,
            FaultTargets.for_server(server),
            standard_fault_schedule(duration_s, scale=fault_scale),
            rng=rig.streams.stream("fault-injector"),
        ).start()

        shed = {"count": 0}
        requests: list = []

        def one_request(index: int) -> typing.Generator:
            try:
                yield from gateway.admit(session)
            except AdmissionShed:
                shed["count"] += 1
                return
            yield from director.deploy(
                DeployRequest(org=org, item=item, vm_count=1, vapp_name=f"req{index}")
            )

        def arrivals() -> typing.Generator:
            rng = rig.streams.stream("arrivals")
            index = 0
            while rig.sim.now < duration_s:
                yield rig.sim.timeout(rng.expovariate(arrival_rate))
                if rig.sim.now >= duration_s:
                    break
                requests.append(
                    rig.sim.spawn(one_request(index), name=f"req-{index}")
                )
                index += 1

        source = rig.sim.spawn(arrivals(), name="arrivals")
        rig.sim.run(until=source)
        if requests:
            rig.sim.run(until=AllOf(rig.sim, requests))
        drain = rig.sim.spawn(injector.drain(), name="fault-drain")
        rig.sim.run(until=drain)
        server.tasks.assert_accounted()

        offered = len(requests)  # shed requests are in the list too
        succeeded = sum(len(vapp.vms) for vapp in director.vapps)
        # Goodput counts deploys that finished inside the arrival window;
        # a VM delivered long after the backlog drains helped nobody.
        timely = sum(
            len(vapp.vms)
            for vapp in director.vapps
            if vapp.deployed_at is not None and vapp.deployed_at <= duration_s
        )
        goodput = timely * 3600.0 / duration_s
        goodputs[label] = goodput
        p99 = director.deploy_latency_p(0.99)
        dead = len(server.tasks.dead_letters)
        unaccounted = len(server.tasks.unaccounted())
        breaker_opens = sum(
            server.agent(host).metrics.counter("breaker_opens").value
            for host in rig.hosts
        )
        rows.append(
            [
                label,
                offered,
                f"{succeeded} ({timely})",
                f"{goodput:.0f}",
                f"{p99:.1f}",
                int(director.metrics.counter("vm_retries").value),
                int(server.tasks.metrics.counter("retries").value),
                int(breaker_opens),
                shed["count"],
                dead,
                unaccounted,
            ]
        )
    series = {
        "goodput (VMs/hour)": [
            (float(index), goodputs[label])
            for index, (label, *_rest) in enumerate(variants)
        ]
    }
    return ExperimentResult(
        exp_id="R-X3",
        title="Deploy goodput under a standard fault schedule (extension)",
        headers=[
            "resilience",
            "offered",
            "succeeded (timely)",
            "goodput/h",
            "p99 (s)",
            "re-places",
            "task retries",
            "breaker opens",
            "shed",
            "dead letters",
            "unaccounted",
        ],
        rows=rows,
        series=series,
        notes=(
            "Same arrivals and fault windows per variant. Re-placement "
            "recovers most faulted VMs; breakers + shedding + deadlines "
            "keep timeout storms from eating the window (goodput "
            f"{goodputs['none']:.0f} < {goodputs['retries']:.0f} < "
            f"{goodputs['full']:.0f} VMs/h)."
        ),
    )


def experiment_x4_crash_mttr(seed: int = 0, quick: bool = False) -> ExperimentResult:
    """R-X4 (extension): crash recovery — MTTR and goodput vs downtime.

    A closed-loop full-clone storm runs with the task journal on while a
    single :class:`~repro.faults.ServerCrash` window takes the management
    server down at a chosen point in the storm (a fraction of the
    no-crash baseline makespan) for a chosen downtime. On restart the
    recovery manager replays the journal and reconciles the interrupted
    tasks — adopting completed orphans, rolling back half-done
    placements, re-issuing the rest.

    MTTR is measured from the crash to the moment the last pre-crash task
    reaches a terminal state: downtime dominates it (parked tasks cannot
    finish while the server is down), with the replay + re-issued work as
    the tail. Goodput is completed clones over the (inflated) makespan.
    Acceptance: the exactly-once invariant holds in every cell (zero
    violations, zero lost tasks), and MTTR grows with downtime while
    goodput falls.
    """
    from repro.faults.chaos import run_crash_point

    total = 10 if quick else 20
    concurrency = 4
    # Downtime levels span well past the cost of re-issuing one full clone
    # (~400s of copy work) — otherwise re-work noise hides the trend.
    downtimes = (10.0, 300.0) if quick else (10.0, 180.0, 600.0)
    fractions = (0.3, 0.6) if quick else (0.15, 0.4, 0.7)

    baseline = run_crash_point(
        seed, None, 0.0, total=total, concurrency=concurrency, linked=False
    )
    if baseline.violations:
        raise AssertionError(f"baseline violations: {baseline.violations}")

    def goodput(result) -> float:
        return result.completed * 3600.0 / result.makespan_s if result.makespan_s else 0.0

    rows = [
        [
            "none",
            "-",
            baseline.completed,
            baseline.dead_letters,
            0,
            "0/0/0",
            f"{baseline.makespan_s:.0f}",
            "1.00x",
            f"{goodput(baseline):.0f}",
            "0.0",
        ]
    ]
    mttr_by_downtime: dict[float, list[float]] = {d: [] for d in downtimes}
    goodput_by_downtime: dict[float, list[float]] = {d: [] for d in downtimes}
    for downtime in downtimes:
        for fraction in fractions:
            crash_at = fraction * baseline.makespan_s
            result = run_crash_point(
                seed,
                crash_at,
                downtime,
                total=total,
                concurrency=concurrency,
                linked=False,
            )
            if result.violations:
                raise AssertionError(
                    f"exactly-once violated (downtime={downtime}, "
                    f"crash_at={crash_at:.0f}): {result.violations}"
                )
            mttr_by_downtime[downtime].append(result.mttr_s)
            goodput_by_downtime[downtime].append(goodput(result))
            rows.append(
                [
                    f"{downtime:.0f}",
                    f"{crash_at:.0f} ({fraction:.0%})",
                    result.completed,
                    result.dead_letters,
                    result.parked,
                    f"{result.adopted}/{result.reissued}/{result.requeued}",
                    f"{result.makespan_s:.0f}",
                    f"{result.makespan_s / baseline.makespan_s:.2f}x",
                    f"{goodput(result):.0f}",
                    f"{result.mttr_s:.1f}",
                ]
            )
    series = {
        "MTTR (s) vs downtime (s)": [
            (downtime, sum(values) / len(values))
            for downtime, values in sorted(mttr_by_downtime.items())
        ],
        "goodput (clones/h) vs downtime (s)": [
            (downtime, sum(values) / len(values))
            for downtime, values in sorted(goodput_by_downtime.items())
        ],
    }
    return ExperimentResult(
        exp_id="R-X4",
        title="Crash recovery: MTTR and goodput vs server downtime (extension)",
        headers=[
            "downtime (s)",
            "crash at (s)",
            "completed",
            "dead",
            "parked",
            "adopt/reissue/requeue",
            "makespan (s)",
            "inflation",
            "goodput/h",
            "MTTR (s)",
        ],
        rows=rows,
        series=series,
        notes=(
            "Journal on; exactly-once held in every cell (zero lost or "
            "duplicated terminal states). MTTR is crash-to-last-affected-"
            "task-terminal; downtime dominates it, replay and re-issued "
            "attempts add the tail. Every crash cell reuses the baseline "
            "workload seed, so rows are directly comparable."
        ),
    )


def experiment_x5_bus_chaos(seed: int = 0, quick: bool = False) -> ExperimentResult:
    """R-X5 (extension): direct calls vs a bus-mediated control plane under chaos.

    The same closed-loop linked-clone restart storm (journal on, one
    :class:`~repro.faults.ServerCrash` window mid-storm) runs in three
    designs: direct in-process calls (the pre-bus control plane), the
    message bus with no message faults, and the bus under each
    ``MessageFault`` kind — drop, duplicate, delay, reorder, and a topic
    partition — layered on top of the crash window.

    Acceptance: zero lost or duplicated terminal task states in every
    cell (``check_exactly_once``), with goodput and the bus's added
    queueing latency reported. At-least-once redelivery plus
    idempotency-key dedup is what keeps the invariant intact while
    messages are being dropped and cloned.
    """
    from repro.faults.chaos import run_crash_point, run_message_fault_point

    total = 8 if quick else 16
    concurrency = 4
    downtime = 30.0

    baseline = run_crash_point(
        seed, None, 0.0, total=total, concurrency=concurrency, linked=True
    )
    if baseline.violations:
        raise AssertionError(f"direct baseline violations: {baseline.violations}")
    crash_at = 0.35 * baseline.makespan_s

    crashed_direct = run_crash_point(
        seed, crash_at, downtime, total=total, concurrency=concurrency, linked=True
    )
    if crashed_direct.violations:
        raise AssertionError(f"direct crash violations: {crashed_direct.violations}")

    def direct_row(label, result):
        goodput = (
            result.completed * 3600.0 / result.makespan_s if result.makespan_s else 0.0
        )
        return [
            label,
            result.completed,
            result.dead_letters,
            "-",
            "-",
            "-",
            "-",
            f"{goodput:.0f}",
            "-",
        ]

    rows = [
        direct_row("direct", baseline),
        direct_row("direct+crash", crashed_direct),
    ]
    goodputs: list[tuple[str, float]] = [
        ("direct", baseline.completed * 3600.0 / baseline.makespan_s),
        (
            "direct+crash",
            crashed_direct.completed * 3600.0 / crashed_direct.makespan_s,
        ),
    ]

    cells: list[tuple[str, str | None, float]] = [
        ("bus", None, 0.0),
        ("bus+drop", "drop", 0.3),
        ("bus+duplicate", "duplicate", 0.3),
        ("bus+delay", "delay", 2.0),
        ("bus+reorder", "reorder", 0.5),
        ("bus+partition", "partition", 0.0),
    ]
    for label, kind, intensity in cells:
        # The message-fault window opens before the crash and stays armed
        # through the restart replay, so redelivery/dedup are exercised
        # against recovery traffic too, not just the steady-state storm.
        fault_at = max(1.0, 0.2 * baseline.makespan_s)
        result = run_message_fault_point(
            seed,
            kind,
            intensity,
            fault_at_s=fault_at,
            fault_duration_s=(crash_at - fault_at) + downtime + 20.0,
            total=total,
            concurrency=concurrency,
            linked=True,
            crash_at_s=crash_at,
            downtime_s=downtime,
        )
        if result.violations:
            raise AssertionError(f"{label} violations: {result.violations}")
        rows.append(
            [
                label,
                result.completed,
                result.dead_letters,
                result.published,
                result.redelivered,
                result.deduped,
                result.dropped,
                f"{result.goodput_per_hour:.0f}",
                f"{result.mean_queue_wait_s * 1000.0:.1f}",
            ]
        )
        goodputs.append((label, result.goodput_per_hour))

    series = {
        "goodput (clones/hour) by design": [
            (float(index), goodput) for index, (_label, goodput) in enumerate(goodputs)
        ]
    }
    return ExperimentResult(
        exp_id="R-X5",
        title="Message-bus chaos: direct vs bus-mediated under faults (extension)",
        headers=[
            "design",
            "completed",
            "dead",
            "published",
            "redelivered",
            "deduped",
            "dropped",
            "goodput/h",
            "mean queue wait (ms)",
        ],
        rows=rows,
        series=series,
        notes=(
            "Every cell passed check_exactly_once: zero lost or duplicated "
            "terminal task states across the crash window and every message-"
            "fault kind. Redelivery timers resend dropped messages; consumers "
            "dedup duplicates by task idempotency key; the queue-wait column "
            "is the bus's added queueing latency (direct calls have none)."
        ),
    )


# --------------------------------------------------------------------------
# R-F-phase — stacked per-phase provisioning-latency breakdown.
# --------------------------------------------------------------------------

# Raw span phases folded into the exhibit's stack. Gateway admission folds
# into "queue" (both are waiting to be let in); the event-log flush folds
# into "db" (both are database pressure); task/request/retry self time
# (scheduling gaps, attempt framing, backoff) is "other".
PHASE_FOLD: dict[str, str] = {
    "queue": "queue",
    "admission": "queue",
    "placement": "placement",
    "db": "db",
    "eventlog": "db",
    "agent": "agent",
    "cpu": "cpu",
    "lock": "lock",
    "copy": "copy",
    "task": "other",
    "request": "other",
    "retry": "other",
    "recovery": "other",
    "bus": "other",
}
FOLDED_PHASES = ("queue", "placement", "db", "agent", "cpu", "lock", "copy", "other")


def _f_phase_cell(cell: tuple[int, int, int, bool]) -> dict[str, float]:
    """One R-F-phase cell: a traced storm folded to per-phase seconds."""
    from repro.analysis.spans import aggregate_phase_attribution

    seed, total, concurrency, linked = cell
    rig = StormRig(seed=seed, traced=True)
    rig.closed_loop_storm(total=total, concurrency=concurrency, linked=linked)
    roots = [task.span for task in rig.server.tasks.succeeded()]
    count = len(roots)
    attribution = aggregate_phase_attribution(roots)
    folded = {name: 0.0 for name in FOLDED_PHASES}
    for phase, seconds in attribution.items():
        folded[PHASE_FOLD.get(phase, "other")] += seconds / count
    return folded


def experiment_f_phase(
    seed: int = 0, quick: bool = False, parallel: int | None = None
) -> ExperimentResult:
    """R-F-phase: where each provisioning second goes, phase by phase.

    Traced closed-loop clone storms swept over concurrency, full vs
    linked clones. Every succeeded task's span tree is attributed
    exclusively per phase (no double counting across nesting); each row
    stacks the mean seconds per clone. This is the paper's thesis in
    span form: as concurrency grows — and especially for linked clones,
    which strip away the data plane — the control-plane trio
    (queue + placement + db) grows to dominate provisioning latency.
    """
    total = 24 if quick else 96
    concurrencies = (1, 16) if quick else (1, 4, 16, 64)
    cells = [
        (seed, total, concurrency, linked)
        for linked in (False, True)
        for concurrency in concurrencies
    ]
    outcomes = run_cells(_f_phase_cell, cells, parallel=parallel)
    rows = []
    series: dict[str, list[tuple[float, float]]] = {}
    for (_seed, _total, concurrency, linked), folded in zip(cells, outcomes):
        kind = "linked" if linked else "full"
        wall = sum(folded.values())
        trio = folded["queue"] + folded["placement"] + folded["db"]
        trio_share = trio / wall if wall > 0 else 0.0
        rows.append(
            [
                kind,
                concurrency,
                *(f"{folded[name]:.2f}" for name in FOLDED_PHASES),
                f"{wall:.2f}",
                f"{trio_share * 100:.0f}",
            ]
        )
        if linked:
            for name in ("queue", "placement", "db", "agent"):
                series.setdefault(f"linked {name} share %", []).append(
                    (float(concurrency), folded[name] / wall * 100.0 if wall else 0.0)
                )
    return ExperimentResult(
        exp_id="R-F-phase",
        title="Per-phase provisioning latency vs concurrency",
        headers=["mode", "conc", *FOLDED_PHASES, "wall s", "ctl trio %"],
        rows=rows,
        series=series,
        notes=(
            "Stacked mean seconds per clone from exclusive span attribution "
            "(columns sum to wall). The control-plane trio (queue + "
            "placement + db) grows with concurrency and comes to dominate "
            "linked-clone provisioning at high concurrency."
        ),
    )


# --------------------------------------------------------------------------
# R-F-alerts — burn-rate alert timeline under the standard fault schedule.
# --------------------------------------------------------------------------


def experiment_f_alerts(seed: int = 0, quick: bool = False) -> ExperimentResult:
    """R-F-alerts: SLO burn-rate alerts vs injected faults (observability).

    The R-X3 ``full``-resilience deploy storm re-run with the live
    telemetry pipeline attached: the scraper samples every control-plane
    registry on a 5 s cadence into roll-up windows, and multi-window
    burn-rate rules (deploy latency p99, task goodput, dead letters,
    admission shedding) are evaluated on every scrape — all on simulated
    time. For each injected fault window the exhibit reports the first
    alert that covered it and the detection lead time relative to the
    fault's goodput trough (the worst 60 s completion-rate window).

    Acceptance: every injected fault is surfaced by at least one
    burn-rate alert at or before its goodput trough (lead >= 0).
    """
    from repro.cloud.api import AdmissionShed, ApiGateway
    from repro.cloud.catalog import Catalog, CatalogItem
    from repro.cloud.director import CloudDirector, DeployRequest
    from repro.cloud.tenancy import Organization, User
    from repro.controlplane.resilience import (
        BreakerPolicy,
        RetryPolicy,
        TaskDeadlineExceeded,
    )
    from repro.faults import FaultInjector, FaultTargets, standard_fault_schedule
    from repro.faults.errors import InjectedFault, ShardUnavailable, TransientError
    from repro.operations.base import OperationError
    from repro.sim.events import AllOf
    from repro.telemetry.slo import BurnWindow, LatencyRule, RatioRule

    duration_s = 600.0 if quick else 1500.0
    arrival_rate = 1.6
    fault_scale = 1.5
    costs = dataclasses.replace(DEFAULT_COSTS, host_call_timeout_s=20.0)

    replace_policy = RetryPolicy(
        max_attempts=6,
        base_backoff_s=2.0,
        backoff_multiplier=2.0,
        max_backoff_s=30.0,
        jitter=0.5,
        retry_on=(TransientError, OperationError, TaskDeadlineExceeded),
    )
    in_place_policy = RetryPolicy(
        max_attempts=3,
        base_backoff_s=1.0,
        backoff_multiplier=2.0,
        max_backoff_s=15.0,
        jitter=0.5,
        retry_on=(InjectedFault, ShardUnavailable),
    )
    config = ControlPlaneConfig(
        retry_policy=in_place_policy,
        retry_budget_ratio=0.2,
        task_deadline_s=240.0,
        breaker=BreakerPolicy(failure_threshold=3, cooldown_s=45.0, half_open_probes=1),
    )

    rig = StormRig(
        seed=seed,
        hosts=16,
        datastores=4,
        host_memory_gb=512.0,
        costs=costs,
        config=config,
        telemetry=True,
        scrape_interval_s=5.0,
    )
    server = rig.server
    telemetry = rig.telemetry
    catalog = Catalog("cloud-a")
    item = catalog.add(CatalogItem(name="web", template_name=MEDIUM_LINUX.name))
    org = Organization("acme", quota_vms=100_000, quota_storage_gb=1e9)
    director = CloudDirector(
        server, rig.cluster, rig.library, catalog, retry_policy=replace_policy
    )
    gateway = ApiGateway(
        rig.sim, requests_per_minute=600.0, burst=50.0, telemetry=telemetry
    )
    gateway.enable_shedding(lambda: server.tasks.queue_depth, 128.0)
    session = gateway.login(User("tenant", org))

    # Burn windows sized to the storm timescale: the fast pair catches a
    # sharp regression within ~1-2 roll-up windows, the slow pair holds
    # the alert through sustained degradation.
    windows = (
        BurnWindow(short_s=60.0, long_s=180.0, threshold=2.0),
        BurnWindow(short_s=180.0, long_s=600.0, threshold=1.0),
    )
    success = 'tasks_completed_total{outcome="success"}'
    error = 'tasks_completed_total{outcome="error"}'
    telemetry.add_rule(
        LatencyRule(
            name="deploy-latency-p99",
            objective=0.95,
            metric="director_deploy_latency_s",
            threshold_s=60.0,
            windows=windows,
        )
    )
    telemetry.add_rule(
        RatioRule(
            name="task-goodput",
            objective=0.98,
            bad_metric=error,
            total_metrics=(success, error),
            windows=windows,
        )
    )
    telemetry.add_rule(
        RatioRule(
            name="dead-letter-rate",
            objective=0.995,
            bad_metric="tasks_dead_letter_total",
            total_metrics=(success, error),
            windows=windows,
        )
    )
    telemetry.add_rule(
        RatioRule(
            name="admission-shed-rate",
            objective=0.98,
            bad_metric="gateway_shed_total",
            total_metrics=("gateway_admitted_total", "gateway_shed_total"),
            windows=windows,
        )
    )

    schedule = standard_fault_schedule(duration_s, scale=fault_scale)
    injector = FaultInjector(
        rig.sim,
        FaultTargets.for_server(server),
        schedule,
        rng=rig.streams.stream("fault-injector"),
    ).start()
    telemetry.start()

    requests: list = []

    def one_request(index: int) -> typing.Generator:
        try:
            yield from gateway.admit(session)
        except AdmissionShed:
            return
        yield from director.deploy(
            DeployRequest(org=org, item=item, vm_count=1, vapp_name=f"req{index}")
        )

    def arrivals() -> typing.Generator:
        rng = rig.streams.stream("arrivals")
        index = 0
        while rig.sim.now < duration_s:
            yield rig.sim.timeout(rng.expovariate(arrival_rate))
            if rig.sim.now >= duration_s:
                break
            requests.append(rig.sim.spawn(one_request(index), name=f"req-{index}"))
            index += 1

    source = rig.sim.spawn(arrivals(), name="arrivals")
    rig.sim.run(until=source)
    if requests:
        rig.sim.run(until=AllOf(rig.sim, requests))
    rig.sim.run(until=rig.sim.spawn(injector.drain(), name="fault-drain"))
    telemetry.stop()

    # Goodput trough per fault: the worst 60 s success-completion window
    # overlapping the fault (extended one window for trailing effects).
    success_series = telemetry.rollups[success]
    goodput_windows = success_series.windows(level=0)
    fires = [event for event in telemetry.monitor.timeline if event.kind == "fire"]
    rows = []
    covered = 0
    for spec in schedule.specs:
        candidates = [
            window
            for window in goodput_windows
            if window.end > spec.start_s and window.start < spec.end_s + 60.0
        ]
        trough = min(candidates, key=lambda window: (window.sum, window.start))
        trough_time = trough.start + trough.width / 2.0
        covering = [
            event
            for event in fires
            if event.time <= trough_time
            and _alert_interval(telemetry, event).intersects(spec.start_s, trough_time)
        ]
        first = min(covering, key=lambda event: event.time) if covering else None
        if first is not None:
            covered += 1
        rows.append(
            [
                spec.kind,
                f"{spec.start_s:.0f}-{spec.end_s:.0f}",
                f"{trough_time:.0f}",
                f"{trough.rate * 3600.0:.0f}",
                first.rule if first is not None else "(none)",
                f"{first.time:.0f}" if first is not None else "-",
                f"{trough_time - first.time:+.0f}" if first is not None else "-",
            ]
        )

    series = {
        "task goodput (successes/hour, 60s windows)": [
            (window.start, window.rate * 3600.0) for window in goodput_windows
        ],
        "deploy latency p99 (s, 60s windows)": [
            (window.start, window.p(0.99))
            for window in telemetry.rollups["director_deploy_latency_s"].windows(0)
        ],
    }
    timeline = telemetry.monitor.render_timeline()
    notes = (
        f"{covered}/{len(schedule.specs)} fault windows surfaced by a "
        f"burn-rate alert before their goodput trough; "
        f"{len(fires)} alert firings over {telemetry.scraper.scrapes} scrapes.\n"
        "alert timeline:\n  " + "\n  ".join(timeline)
    )
    return ExperimentResult(
        exp_id="R-F-alerts",
        title="Burn-rate alert timeline under the standard fault schedule",
        headers=[
            "fault",
            "window (s)",
            "trough (s)",
            "trough goodput/h",
            "first alert",
            "fired (s)",
            "lead (s)",
        ],
        rows=rows,
        series=series,
        notes=notes,
    )


class _AlertInterval:
    """Half-open firing interval of one alert, for coverage tests."""

    __slots__ = ("start", "end")

    def __init__(self, start: float, end: float) -> None:
        self.start = start
        self.end = end

    def intersects(self, lo: float, hi: float) -> bool:
        return self.start <= hi and self.end >= lo


def _alert_interval(telemetry, fire_event) -> _AlertInterval:
    for alert in telemetry.monitor.alerts:
        if alert.rule == fire_event.rule and alert.fired_at == fire_event.time:
            end = alert.resolved_at if alert.resolved_at is not None else float("inf")
            return _AlertInterval(alert.fired_at, end)
    return _AlertInterval(fire_event.time, float("inf"))


def experiment_x6_triage(seed: int = 0, quick: bool = False) -> ExperimentResult:
    """R-X6 (extension): automated incident triage scored against ground truth.

    Randomized single-fault chaos runs on the bus-mediated,
    fully-resilient deploy storm (see :mod:`repro.triage.harness`): each
    seeded run injects one strong fault window of a rotating kind, the
    triage engine turns every SLO alert burst into a ranked root-cause
    verdict, and the scorer grades verdicts against the injector's
    resolved ground-truth manifest. The exhibit reports per-kind
    precision/recall plus the pooled confusion matrix.

    Acceptance: top-1 fault-kind accuracy >= 0.8 and window recall >= 0.7
    across the sweep.
    """
    from repro.triage.harness import QUICK_KINDS, SWEEP_KINDS, triage_sweep

    kinds = QUICK_KINDS if quick else SWEEP_KINDS
    seeds = range(seed, seed + (len(kinds) if quick else 2 * len(kinds)))
    report, points = triage_sweep(seeds, kinds=kinds)

    rows = []
    for kind in sorted(report.per_kind):
        score = report.per_kind[kind]
        if score.injected == 0 and score.named == 0:
            continue
        rows.append(
            [
                kind,
                score.injected,
                score.recalled,
                score.named,
                f"{score.precision:.2f}",
                f"{score.recall:.2f}",
            ]
        )
    rows.append(
        [
            "overall",
            sum(s.injected for s in report.per_kind.values()),
            sum(s.recalled for s in report.per_kind.values()),
            sum(s.named for s in report.per_kind.values()),
            f"{report.precision:.2f}",
            f"{report.recall:.2f}",
        ]
    )

    gates_ok = report.top1_accuracy >= 0.8 and report.recall >= 0.7
    notes = "\n".join(
        [
            f"{len(points)} randomized single-fault chaos runs, "
            f"{report.total_verdicts} verdicts "
            f"({report.unmatched_verdicts} outside fault windows, "
            f"{report.correct_rejections} honest no-culprit)",
            f"top-1 fault-kind accuracy {report.top1_accuracy:.2f} "
            f"(gate >= 0.8), recall {report.recall:.2f} (gate >= 0.7): "
            f"{'PASS' if gates_ok else 'FAIL'}",
            "",
            *report.render_confusion(),
        ]
    )
    return ExperimentResult(
        exp_id="R-X6",
        title="Automated incident triage vs injected ground truth (extension)",
        headers=["fault kind", "injected", "recalled", "named", "precision", "recall"],
        rows=rows,
        notes=notes,
    )


def experiment_x7_flight_recorder(seed: int = 0, quick: bool = False) -> ExperimentResult:
    """R-X7 (extension): the incident flight recorder over the chaos sweep.

    Re-runs the R-X6 randomized single-fault chaos harness with the tail
    sampler and the flight recorder on: every run traces under a fixed
    span budget, and every fired SLO alert (or server crash) snapshots an
    incident bundle — alerts, roll-up windows, exemplar-linked retained
    span trees, bus attributions, and the triage verdict in one JSON
    document. The exhibit answers two questions:

    - **coverage** — does every alerting run produce at least one bundle
      whose retained spans overlap the injected fault window (plus the
      triage grace period)?
    - **retention** — does tail sampling hold retained spans to a bounded
      fraction of what unbounded tracing would have kept?

    Acceptance: bundle coverage 100% of alerting runs, and pooled
    retained-span peak <= 25% of the full-trace span count.
    """
    from repro.triage.harness import QUICK_KINDS, SWEEP_KINDS, run_triage_point

    grace_s = 240.0
    budget = 2048
    kinds = QUICK_KINDS if quick else SWEEP_KINDS
    runs_per_kind = 1 if quick else 2
    per_kind: dict[str, dict[str, int]] = {
        kind: {"runs": 0, "alerting": 0, "bundles": 0, "covered": 0}
        for kind in kinds
    }
    retained_total = 0
    offered_total = 0
    for index in range(runs_per_kind * len(kinds)):
        kind = kinds[index % len(kinds)]
        point = run_triage_point(
            seed + index,
            kind,
            grace_s=grace_s,
            traced=True,
            sample_budget=budget,
            recorder=True,
        )
        row = per_kind[kind]
        row["runs"] += 1
        row["bundles"] += len(point.bundles)
        retained_total += point.retention["retained_spans"]
        offered_total += point.retention["offered_spans"]
        if point.alerts == 0:
            continue
        row["alerting"] += 1
        window = point.manifest.windows[0]
        if any(
            bundle.spans_overlapping(window.start_s, window.end_s + grace_s) > 0
            for bundle in point.bundles
        ):
            row["covered"] += 1

    rows = []
    for kind in kinds:
        row = per_kind[kind]
        rows.append(
            [
                kind,
                row["runs"],
                row["alerting"],
                row["bundles"],
                row["covered"],
                "PASS" if row["covered"] == row["alerting"] else "FAIL",
            ]
        )
    alerting = sum(r["alerting"] for r in per_kind.values())
    covered = sum(r["covered"] for r in per_kind.values())
    bundles = sum(r["bundles"] for r in per_kind.values())
    runs = sum(r["runs"] for r in per_kind.values())
    rows.append(
        [
            "overall",
            runs,
            alerting,
            bundles,
            covered,
            "PASS" if covered == alerting else "FAIL",
        ]
    )

    ratio = retained_total / offered_total if offered_total else 0.0
    coverage_ok = covered == alerting and alerting > 0
    retention_ok = ratio <= 0.25
    notes = "\n".join(
        [
            f"{runs} chaos runs traced under a {budget}-span budget with the "
            f"flight recorder attached; {alerting} runs fired alerts and "
            f"produced {bundles} incident bundles",
            f"bundle coverage: {covered}/{alerting} alerting runs have a "
            f"bundle whose retained spans overlap the injected fault window "
            f"(+{grace_s:g}s grace): {'PASS' if coverage_ok else 'FAIL'}",
            f"retention: {retained_total} retained spans vs {offered_total} "
            f"full-trace spans = {ratio:.1%} (gate <= 25%): "
            f"{'PASS' if retention_ok else 'FAIL'}",
        ]
    )
    return ExperimentResult(
        exp_id="R-X7",
        title="Incident flight recorder: bundle coverage on a span budget (extension)",
        headers=["fault kind", "runs", "alerting", "bundles", "covered", "gate"],
        rows=rows,
        notes=notes,
    )


# --------------------------------------------------------------------------
# R-X8 — bus-routed shard federation vs affinity-only under skew + crash.
# --------------------------------------------------------------------------


def experiment_x8_federation(seed: int = 0, quick: bool = False) -> ExperimentResult:
    """R-X8 (extension): affinity-only vs bus-routed federation under skew.

    The same skewed multi-tenant deploy storm (80% of deploys driven
    through orgs homed on shard 0, max-inflight held below the worker
    concurrency so the hot shard visibly saturates) runs through both
    federation routers — the classic org-pinned affinity router and the
    bus-routed federation (locality-preferred per-shard topics, shared
    work-stealing pool, saturation spillover) — each with and without a
    mid-run ``shard_crash`` of the hot shard, plus the R-X5 message-fault
    kinds overlaid on the federation topics for the bus design.

    Acceptance: zero lost or duplicated terminal task states *across
    shard boundaries* in every cell (``check_federation_exactly_once``),
    and under the crash the bus-routed design beats affinity-only on
    both goodput and p95 tenant deploy latency — re-routing the crashed
    shard's submissions to survivors is what keeps tenant-visible
    goodput flat while the affinity router strands its hot tenants.
    """
    from repro.faults.chaos import run_federation_fault_point

    total = 24 if quick else 48
    concurrency = 6 if quick else 10
    skew = 0.8
    crash_at = 12.0
    downtime = 40.0
    common = dict(
        total=total,
        concurrency=concurrency,
        shards=3,
        hosts_per_shard=4,
        orgs=9,
        skew=skew,
        spill_queue_depth=3,
    )

    cells: list[tuple[str, dict]] = [
        ("affinity", dict(affinity_only=True)),
        (
            "affinity+crash",
            dict(affinity_only=True, crash_at_s=crash_at, downtime_s=downtime,
                 crash_kind="shard_crash"),
        ),
        ("bus", dict()),
        (
            "bus+crash",
            dict(crash_at_s=crash_at, downtime_s=downtime, crash_kind="shard_crash"),
        ),
        (
            "bus+restart",
            dict(crash_at_s=crash_at, downtime_s=downtime, crash_kind="server_crash"),
        ),
    ]
    if not quick:
        for kind, intensity in (
            ("drop", 0.3), ("duplicate", 0.3), ("delay", 2.0),
            ("reorder", 0.5), ("partition", 0.0),
        ):
            cells.append(
                (
                    f"bus+crash+{kind}",
                    dict(
                        kind=kind,
                        intensity=intensity,
                        fault_at_s=5.0,
                        fault_duration_s=crash_at + downtime,
                        crash_at_s=crash_at,
                        downtime_s=downtime,
                        crash_kind="shard_crash",
                    ),
                )
            )

    rows = []
    results: dict[str, typing.Any] = {}
    goodputs: list[tuple[str, float]] = []
    p95s: list[tuple[str, float]] = []
    for label, overrides in cells:
        result = run_federation_fault_point(seed, **common, **overrides)
        if result.violations:
            raise AssertionError(f"{label} violations: {result.violations}")
        results[label] = result
        rows.append(
            [
                label,
                result.completed,
                result.failed,
                result.steals,
                result.spills,
                result.reroutes,
                result.remote_completions,
                f"{result.goodput_per_hour:.0f}",
                f"{result.p95_latency_s:.1f}",
            ]
        )
        goodputs.append((label, result.goodput_per_hour))
        p95s.append((label, result.p95_latency_s))

    series = {
        "goodput (deploys/hour) by design": [
            (float(index), goodput) for index, (_label, goodput) in enumerate(goodputs)
        ],
        "p95 deploy latency (s) by design": [
            (float(index), p95) for index, (_label, p95) in enumerate(p95s)
        ],
    }
    return ExperimentResult(
        exp_id="R-X8",
        title="Bus-routed shard federation vs affinity-only under skew (extension)",
        headers=[
            "design",
            "completed",
            "failed",
            "steals",
            "spills",
            "reroutes",
            "remote",
            "goodput/h",
            "p95 (s)",
        ],
        rows=rows,
        series=series,
        notes=(
            "Every cell passed check_federation_exactly_once: no lost or "
            "duplicated terminal state across shard boundaries, every "
            "federation topic drained, every submission settled. Under the "
            "hot-shard crash the affinity router strands shard 0's tenants "
            "(failed deploys) while the bus-routed federation forwards "
            "pending submissions to survivors and re-routes new ones — "
            "higher goodput at lower p95. The message-fault cells re-run "
            "the R-X5 chaos posture on the federation topics."
        ),
    )


# --------------------------------------------------------------------------
# R-F-hyperscale — million-VM fleet cells on the hyperscale kernel.
# --------------------------------------------------------------------------


def _hyperscale_cell(
    cell: tuple[int, int, int, str | None],
) -> dict[str, typing.Any]:
    """One hyperscale shard cell: a VM fleet lifecycle on raw kernel timers.

    This deliberately bypasses the management-server task pipeline — the
    question the exhibit answers is whether the *substrate* (queue backend,
    timeout pool, batched sampling) carries a paper-scale fleet, so each VM
    is exactly two pooled timeouts: an arrival that places it on a host and
    arms its lifetime, and the lifetime expiry that frees the slot. The
    VM's host index rides in the timeout's ``_value`` slot, so the cell
    allocates nothing per VM beyond the recycled timeout itself.

    Deterministic outputs (deploys, expiries, peak pending, makespan) are
    pure functions of ``(seed, vms)``; ``wall_s``/``rss_mb`` are measured
    perf and never enter a committed exhibit.
    """
    import resource
    import time as _time

    from repro.core.parallel import derive_seed
    from repro.workloads.sampling import BatchedExponentials, BatchedLifetimes

    seed, shard_index, vms, queue = cell
    started = _time.perf_counter()
    sim = Simulator(queue=queue)
    streams = RandomStreams(derive_seed(seed, shard_index))
    # One simulated hour of arrivals, CLOUD_A lifetimes (median 6h): nearly
    # the whole fleet is still pending when arrivals stop, which is what
    # builds the deep standing timer set the exhibit exists to demonstrate.
    gaps = BatchedExponentials(streams.stream("arrivals"), vms / 3600.0)
    lifetimes = BatchedLifetimes(CLOUD_A_LIFETIME, streams.stream("lifetimes"))
    host_count = vms // 128 + 1  # capacity 256/host: 2x headroom, short scans
    slots = [0] * host_count
    cursor = 0
    deploys = 0
    expiries = 0
    peak_pending = 0
    timeout = sim.timeout

    def expire(event) -> None:
        nonlocal expiries
        expiries += 1
        slots[event._value] -= 1

    def arrive(_event) -> None:
        nonlocal cursor, deploys, peak_pending
        deploys += 1
        host = cursor
        while slots[host] >= 256:
            host = host + 1 if host + 1 < host_count else 0
        slots[host] += 1
        cursor = host + 1 if host + 1 < host_count else 0
        lifetime = timeout(lifetimes.next())
        lifetime._value = host
        lifetime.callbacks.append(expire)
        depth = sim.queue_depth
        if depth > peak_pending:
            peak_pending = depth
        if deploys < vms:
            timeout(gaps.next()).callbacks.append(arrive)

    timeout(gaps.next()).callbacks.append(arrive)
    sim.run()
    return {
        "shard": shard_index,
        "deploys": deploys,
        "expiries": expiries,
        "peak_pending": peak_pending,
        "makespan_s": sim.now,
        "wall_s": _time.perf_counter() - started,
        "rss_mb": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0,
    }


def hyperscale_sweep(
    seed: int = 0,
    quick: bool = False,
    parallel: int | None = None,
    queue: str | None = None,
    fleets: typing.Sequence[int] | None = None,
    shard_counts: typing.Sequence[int] | None = None,
) -> list[dict[str, typing.Any]]:
    """The R-F-hyperscale grid: fleet size x shard count, one dict per config.

    Each config splits the fleet evenly over ``shards`` independent cells
    (cell seeds derived per shard index, so a cell's schedule never depends
    on worker count or which process ran it) and aggregates. Deterministic
    fields feed the committed exhibit; ``events_per_s``/``rss_mb`` are for
    the CLI and the perf bench only.
    """
    if fleets is None:
        fleets = (2_000, 10_000) if quick else (100_000, 1_000_000)
    if shard_counts is None:
        shard_counts = (1, 2) if quick else (1, 4, 8)
    points = []
    for fleet in fleets:
        for shards in shard_counts:
            per_cell = fleet // shards
            cells = [
                (seed, shard_index, per_cell, queue)
                for shard_index in range(shards)
            ]
            outcomes = run_cells(_hyperscale_cell, cells, parallel=parallel)
            events = sum(o["deploys"] + o["expiries"] for o in outcomes)
            wall = max(o["wall_s"] for o in outcomes)
            points.append(
                {
                    "vms": per_cell * shards,
                    "shards": shards,
                    "deploys": sum(o["deploys"] for o in outcomes),
                    "expiries": sum(o["expiries"] for o in outcomes),
                    "peak_pending": max(o["peak_pending"] for o in outcomes),
                    "makespan_s": max(o["makespan_s"] for o in outcomes),
                    "events": events,
                    "events_per_s": events / wall if wall else 0.0,
                    "wall_s": wall,
                    "rss_mb": max(o["rss_mb"] for o in outcomes),
                }
            )
    return points


def experiment_f_hyperscale(
    seed: int = 0, quick: bool = False, parallel: int | None = None
) -> ExperimentResult:
    """R-F-hyperscale: fleet cells to 1M VMs on the hyperscale kernel."""
    points = hyperscale_sweep(seed=seed, quick=quick, parallel=parallel)
    rows = []
    series = []
    for point in points:
        rows.append(
            [
                point["vms"],
                point["shards"],
                point["deploys"],
                point["expiries"],
                point["peak_pending"],
                f"{point['makespan_s'] / 86_400.0:.1f}",
            ]
        )
        if point["shards"] == 1:
            series.append((point["vms"], point["peak_pending"]))
    return ExperimentResult(
        exp_id="R-F-hyperscale",
        title="Hyperscale fleet cells (VM lifecycles on raw kernel timers)",
        headers=[
            "VMs", "shards", "deploys", "expiries", "peak pending", "drain days",
        ],
        rows=rows,
        series={"peak pending timers (1 shard)": series},
        notes=(
            "Arrivals over one simulated hour, CLOUD_A lifetimes; nearly the "
            "whole fleet stands in the pending queue at once. Wall-clock and "
            "RSS are reported by `python -m repro hyperscale` and gated by "
            "benchmarks/bench_hyperscale.py, never committed here."
        ),
    )


EXPERIMENTS: dict[str, typing.Callable[..., ExperimentResult]] = {
    "R-T1": experiment_t1_setups,
    "R-T2": experiment_t2_opmix,
    "R-T3": experiment_t3_ablations,
    "R-F1": experiment_f1_arrivals,
    "R-F2": experiment_f2_latency_cdf,
    "R-F3": experiment_f3_throughput,
    "R-F4": experiment_f4_bandwidth,
    "R-F5": experiment_f5_cp_load,
    "R-F6": experiment_f6_reconfig_scale,
    "R-F7": experiment_f7_queue_depth,
    "R-F8": experiment_f8_breakdown,
    "R-F9": experiment_f9_shards,
    "R-F10": experiment_f10_lifetimes,
    "R-F-phase": experiment_f_phase,
    "R-F-alerts": experiment_f_alerts,
    "R-F-hyperscale": experiment_f_hyperscale,
    "R-X1": experiment_x1_restart_storm,
    "R-X2": experiment_x2_stats_tax,
    "R-X3": experiment_x3_fault_goodput,
    "R-X4": experiment_x4_crash_mttr,
    "R-X5": experiment_x5_bus_chaos,
    "R-X6": experiment_x6_triage,
    "R-X7": experiment_x7_flight_recorder,
    "R-X8": experiment_x8_federation,
}


#: Experiments whose independent sweep cells the parallel runner can fan out.
PARALLEL_EXPERIMENTS = frozenset(
    {"R-F3", "R-F5", "R-F6", "R-F9", "R-F-phase", "R-F-hyperscale", "R-T3"}
)


def run_experiment(
    exp_id: str, seed: int = 0, quick: bool = False, parallel: int | None = None
) -> ExperimentResult:
    """Run one registered experiment by id (e.g. ``"R-F3"``).

    ``parallel`` fans independent sweep cells across processes for the
    experiments in :data:`PARALLEL_EXPERIMENTS`; single-cell experiments
    ignore it. ``None`` defers to ``REPRO_BENCH_PARALLEL``.
    """
    try:
        experiment = EXPERIMENTS[exp_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    if exp_id in PARALLEL_EXPERIMENTS:
        return experiment(seed=seed, quick=quick, parallel=parallel)
    return experiment(seed=seed, quick=quick)
