"""Sensitivity sweeps: how headline metrics respond to any model constant.

A reproduction whose conclusions hinge on calibration guesses should make
probing those guesses one line. ``sweep()`` varies a single
``costs.<field>`` or ``config.<field>`` across values and reruns the
canonical linked-clone storm, reporting throughput and latency per value.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.controlplane.costs import (
    ControlPlaneConfig,
    ControlPlaneCosts,
    DEFAULT_COSTS,
)
from repro.core.experiments import ExperimentResult, StormRig


def _apply(parameter: str, value: typing.Any) -> tuple[ControlPlaneCosts, ControlPlaneConfig]:
    """Build (costs, config) with ``parameter`` ("costs.x"/"config.x") set."""
    try:
        namespace, field = parameter.split(".", 1)
    except ValueError:
        raise ValueError(
            f"parameter must look like 'costs.<field>' or 'config.<field>', "
            f"got {parameter!r}"
        ) from None
    costs = DEFAULT_COSTS
    config = ControlPlaneConfig()
    if namespace == "costs":
        if not hasattr(costs, field):
            raise ValueError(f"unknown costs field {field!r}")
        costs = dataclasses.replace(costs, **{field: value})
    elif namespace == "config":
        if not hasattr(config, field):
            raise ValueError(f"unknown config field {field!r}")
        config = dataclasses.replace(config, **{field: value})
    else:
        raise ValueError(f"unknown namespace {namespace!r} (use costs/config)")
    return costs, config


def sweep(
    parameter: str,
    values: typing.Sequence[typing.Any],
    seed: int = 0,
    total: int = 64,
    concurrency: int = 32,
    linked: bool = True,
    hosts: int = 16,
) -> ExperimentResult:
    """Sweep one constant over ``values`` under the canonical clone storm."""
    if not values:
        raise ValueError("values must be non-empty")
    rows = []
    series = []
    baseline_tph: float | None = None
    for value in values:
        costs, config = _apply(parameter, value)
        rig = StormRig(seed=seed, hosts=hosts, datastores=4, costs=costs, config=config)
        outcome = rig.closed_loop_storm(total, concurrency, linked)
        tph = outcome["throughput_per_hour"]
        if baseline_tph is None:
            baseline_tph = tph
        rows.append(
            [
                value,
                f"{tph:.0f}",
                f"{tph / baseline_tph:.2f}x",
                f"{outcome['latency_p50']:.1f}",
                rig.server.bottleneck(),
            ]
        )
        try:
            series.append((float(value), tph))
        except (TypeError, ValueError):
            pass
    mode = "linked" if linked else "full"
    return ExperimentResult(
        exp_id=f"SWEEP:{parameter}",
        title=f"{mode}-clone storm sensitivity to {parameter}",
        headers=[parameter, "clones/hour", "vs first", "p50 (s)", "bottleneck"],
        rows=rows,
        series={"clones/hour": series} if series else {},
        notes=f"storm: {total} clones at concurrency {concurrency}, {hosts} hosts",
    )
