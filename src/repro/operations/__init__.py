"""Management operations: the verbs of the control plane.

Every operation decomposes into *phases*, each attributed to the control
plane (CPU, database, locks, host-agent calls) or the data plane (byte
copies, memory transfer). Phase attribution is what lets the analysis
pipeline show the paper's pivot: linked clones delete the data-plane
phases and leave the control-plane toll intact.
"""

from repro.operations.base import Operation, OperationError, OperationType, phase
from repro.operations.maintenance import (
    EnterMaintenance,
    EvacuateDatastore,
    ExitMaintenance,
)
from repro.operations.lifecycle import (
    CreateSnapshot,
    DeleteSnapshot,
    DestroyVM,
    ReconfigureVM,
)
from repro.operations.migration import MigrateVM, StorageMigrateVM
from repro.operations.power import PowerOff, PowerOn
from repro.operations.provisioning import CloneVM, DeployFromTemplate
from repro.operations.reconfiguration import (
    AddDatastore,
    AddHost,
    NetworkReconfig,
    RescanDatastore,
)

__all__ = [
    "AddDatastore",
    "AddHost",
    "CloneVM",
    "CreateSnapshot",
    "DeleteSnapshot",
    "DeployFromTemplate",
    "DestroyVM",
    "EnterMaintenance",
    "EvacuateDatastore",
    "ExitMaintenance",
    "MigrateVM",
    "NetworkReconfig",
    "Operation",
    "OperationError",
    "OperationType",
    "PowerOff",
    "PowerOn",
    "ReconfigureVM",
    "RescanDatastore",
    "StorageMigrateVM",
    "phase",
]
