"""Cloud-reconfiguration operations: the "previously infrequent" verbs.

In a classic datacenter these run at human cadence — an admin adds a host
or a LUN occasionally. The paper's claim 4: cloud provisioning rates force
them to run continuously (elastic capacity, datastore churn), and their
cost *scales with inventory size* — a rescan touches every mounting host,
an added host rescans every datastore. R-F6 sweeps exactly that scaling.
"""

from __future__ import annotations

import typing

from repro.datacenter.entities import Cluster, Datastore, Host, Network
from repro.operations.base import CONTROL, Operation, OperationError, OperationType
from repro.sim.events import AllOf
from repro.tracing import PHASE_AGENT, PHASE_CPU, PHASE_DB

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.controlplane.server import ManagementServer
    from repro.controlplane.task_manager import Task


def _fan_out(
    server: "ManagementServer",
    calls: list[typing.Generator],
) -> typing.Generator[typing.Any, typing.Any, int]:
    """Run host-agent calls in parallel; returns the fan-out width.

    Parallelism is still bounded per host by agent slots; what this models
    is the management server issuing the calls concurrently rather than
    serially — how real rescans are dispatched.
    """
    processes = [server.sim.spawn(call) for call in calls]
    if processes:
        yield AllOf(server.sim, processes)
    return len(processes)


class RescanDatastore(Operation):
    """Rescan one datastore on every host that mounts it."""

    op_type = OperationType.RESCAN_DATASTORE

    def __init__(self, datastore: Datastore) -> None:
        self.datastore = datastore

    def run(self, server: "ManagementServer", task: "Task") -> typing.Generator:
        costs = server.costs
        mounting = sorted(self.datastore.hosts, key=lambda host: host.entity_id)
        if not mounting:
            raise OperationError(f"datastore {self.datastore.name!r} has no hosts")
        yield from self.timed(
            server,
            task,
            "validate",
            CONTROL,
            lambda span: server.cpu_work(costs.api_validate_s, span=span),
            tag=PHASE_CPU,
        )
        yield from self.timed(
            server,
            task,
            "rescan_fanout",
            CONTROL,
            lambda span: _fan_out(
                server,
                [
                    server.agent(host).call(
                        "rescan", costs.host_rescan_s, span=span, task=task
                    )
                    for host in mounting
                    if host.is_usable
                ],
            ),
            tag=PHASE_AGENT,
        )
        # One storage-topology row per mount refreshed.
        yield from self.timed(
            server,
            task,
            "topology_db",
            CONTROL,
            lambda span: server.database.write(rows=max(1, len(mounting)), span=span),
            tag=PHASE_DB,
        )
        task.result = len(mounting)


class AddHost(Operation):
    """Connect a new host: handshake, inventory, mounts, rescan, network."""

    op_type = OperationType.ADD_HOST

    def __init__(
        self,
        host: Host,
        cluster: Cluster,
        datastores: typing.Sequence[Datastore],
        networks: typing.Sequence[Network] = (),
    ) -> None:
        self.host = host
        self.cluster = cluster
        self.mount_datastores = list(datastores)
        self.networks = list(networks)

    def run(self, server: "ManagementServer", task: "Task") -> typing.Generator:
        costs = server.costs
        if self.host.entity_id in server.inventory:
            raise OperationError(f"host {self.host.name!r} already in inventory")
        yield from self.timed(
            server,
            task,
            "validate",
            CONTROL,
            lambda span: server.cpu_work(costs.api_validate_s, span=span),
            tag=PHASE_CPU,
        )
        agent = server.adopt_host(self.host)
        yield from self.timed(
            server,
            task,
            "connect_handshake",
            CONTROL,
            lambda span: agent.call(
                "add_connect", costs.host_add_connect_s, span=span, task=task
            ),
            tag=PHASE_AGENT,
        )
        server.inventory.register(self.host)
        self.cluster.add_host(self.host)
        yield from self.timed(
            server,
            task,
            "inventory_db",
            CONTROL,
            lambda span: server.database.write(rows=2, span=span),
            tag=PHASE_DB,
        )
        # Mount and rescan every datastore the cluster shares — the phase
        # whose cost grows linearly with datastore count.
        for datastore in self.mount_datastores:
            self.host.mount(datastore)
        yield from self.timed(
            server,
            task,
            "initial_rescan",
            CONTROL,
            lambda span: _fan_out(
                server,
                [
                    agent.call("rescan", costs.host_rescan_s, span=span, task=task)
                    for _ in self.mount_datastores
                ],
            ),
            tag=PHASE_AGENT,
        )
        if self.mount_datastores:
            yield from self.timed(
                server,
                task,
                "mount_db",
                CONTROL,
                lambda span: server.database.write(
                    rows=len(self.mount_datastores), span=span
                ),
                tag=PHASE_DB,
            )
        for network in self.networks:
            self.host.attach_network(network)
        if self.networks:
            yield from self.timed(
                server,
                task,
                "network_config",
                CONTROL,
                lambda span: agent.call(
                    "reconfigure", costs.host_reconfigure_s, span=span, task=task
                ),
                tag=PHASE_AGENT,
            )
        yield from self.timed(
            server,
            task,
            "commit",
            CONTROL,
            lambda span: server.cpu_work(costs.result_commit_s, span=span),
            tag=PHASE_CPU,
        )
        task.result = self.host


class AddDatastore(Operation):
    """Provision a new datastore and mount it on a host set.

    Every mounting host performs a rescan — the cost scales with host
    count, which is why frequent datastore churn at cloud scale is a
    control-plane problem.
    """

    op_type = OperationType.ADD_DATASTORE

    def __init__(self, datastore: Datastore, hosts: typing.Sequence[Host]) -> None:
        self.datastore = datastore
        self.hosts = list(hosts)

    def run(self, server: "ManagementServer", task: "Task") -> typing.Generator:
        costs = server.costs
        if not self.hosts:
            raise OperationError("no hosts to mount the datastore on")
        yield from self.timed(
            server,
            task,
            "validate",
            CONTROL,
            lambda span: server.cpu_work(costs.api_validate_s, span=span),
            tag=PHASE_CPU,
        )
        if self.datastore.entity_id not in server.inventory:
            server.inventory.register(self.datastore)
        yield from self.timed(
            server,
            task,
            "inventory_db",
            CONTROL,
            lambda span: server.database.write(rows=1, span=span),
            tag=PHASE_DB,
        )
        for host in self.hosts:
            host.mount(self.datastore)
        yield from self.timed(
            server,
            task,
            "mount_rescan",
            CONTROL,
            lambda span: _fan_out(
                server,
                [
                    server.agent(host).call(
                        "rescan", costs.host_rescan_s, span=span, task=task
                    )
                    for host in self.hosts
                    if host.is_usable
                ],
            ),
            tag=PHASE_AGENT,
        )
        yield from self.timed(
            server,
            task,
            "mount_db",
            CONTROL,
            lambda span: server.database.write(rows=len(self.hosts), span=span),
            tag=PHASE_DB,
        )
        task.result = self.datastore


class NetworkReconfig(Operation):
    """Push a network (port-group) change to every host in a cluster."""

    op_type = OperationType.NETWORK_RECONFIG

    def __init__(self, cluster: Cluster, network: Network) -> None:
        self.cluster = cluster
        self.network = network

    def run(self, server: "ManagementServer", task: "Task") -> typing.Generator:
        costs = server.costs
        hosts = self.cluster.usable_hosts
        if not hosts:
            raise OperationError(f"cluster {self.cluster.name!r} has no usable hosts")
        yield from self.timed(
            server,
            task,
            "validate",
            CONTROL,
            lambda span: server.cpu_work(costs.api_validate_s, span=span),
            tag=PHASE_CPU,
        )
        yield from self.timed(
            server,
            task,
            "config_gen",
            CONTROL,
            lambda span: server.cpu_work(costs.config_gen_s, span=span),
            tag=PHASE_CPU,
        )
        for host in hosts:
            host.attach_network(self.network)
        yield from self.timed(
            server,
            task,
            "push_fanout",
            CONTROL,
            lambda span: _fan_out(
                server,
                [
                    server.agent(host).call(
                        "reconfigure", costs.host_reconfigure_s, span=span, task=task
                    )
                    for host in hosts
                ],
            ),
            tag=PHASE_AGENT,
        )
        yield from self.timed(
            server,
            task,
            "commit_db",
            CONTROL,
            lambda span: server.database.write(rows=len(hosts), span=span),
            tag=PHASE_DB,
        )
        task.result = self.network
