"""Migration operations: vMotion (compute) and storage vMotion (disk).

Live migration's data plane is the guest-memory transfer; storage
migration's is the disk copy. Both carry the usual control-plane toll on
top, paid at both the source and destination host agents.
"""

from __future__ import annotations

import typing

from repro.datacenter.entities import Datastore, Host
from repro.datacenter.vm import DiskBacking, PowerState, VirtualMachine
from repro.operations.base import CONTROL, DATA, Operation, OperationError, OperationType
from repro.tracing import (
    PHASE_AGENT,
    PHASE_COPY,
    PHASE_CPU,
    PHASE_DB,
    PHASE_LOCK,
)

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.controlplane.server import ManagementServer
    from repro.controlplane.task_manager import Task


class MigrateVM(Operation):
    """vMotion: move a powered-on VM's compute to another host."""

    op_type = OperationType.MIGRATE

    def __init__(self, vm: VirtualMachine, destination: Host) -> None:
        self.vm = vm
        self.destination = destination

    def run(self, server: "ManagementServer", task: "Task") -> typing.Generator:
        costs = server.costs
        source = self.vm.host
        if source is None:
            raise OperationError(f"VM {self.vm.name!r} is not placed on a host")
        if source is self.destination:
            raise OperationError("source and destination hosts are the same")
        if self.vm.power_state != PowerState.ON:
            raise OperationError("vMotion requires a powered-on VM")
        if not self.destination.is_usable:
            raise OperationError(f"destination {self.destination.name!r} unusable")
        if not self.destination.can_admit(self.vm.memory_gb):
            raise OperationError(
                f"destination {self.destination.name!r} cannot admit "
                f"{self.vm.memory_gb:.0f} GB"
            )

        yield from self.timed(
            server,
            task,
            "validate",
            CONTROL,
            lambda span: server.cpu_work(costs.api_validate_s, span=span),
            tag=PHASE_CPU,
        )
        scope = server.locks.holding(
            [self.vm.entity_id],
            read_ids=[source.entity_id, self.destination.entity_id],
        )
        grants = yield from self.timed(
            server, task, "lock", CONTROL, scope.acquire(), tag=PHASE_LOCK
        )
        try:
            if self.vm.host is None:
                raise OperationError(f"VM {self.vm.name!r} was destroyed while queued")
            if self.vm.power_state != PowerState.ON:
                raise OperationError(f"VM {self.vm.name!r} powered off while queued")
            # Preparation handshake on both ends.
            for name, host in (("prep_source", source), ("prep_dest", self.destination)):
                yield from self.timed(
                    server,
                    task,
                    name,
                    CONTROL,
                    lambda span, h=host: server.agent(h).call(
                        "migrate_prep", costs.host_migrate_prep_s, span=span, task=task
                    ),
                    tag=PHASE_AGENT,
                )
            # Memory pre-copy: guest memory over the vMotion network.
            memory_bytes = self.vm.memory_gb * 1024**3
            yield from self.timed(
                server,
                task,
                "memory_copy",
                DATA,
                _fixed_transfer(server, memory_bytes / costs.vmotion_bps),
                tag=PHASE_COPY,
            )
            # Switchover + cleanup.
            yield from self.timed(
                server,
                task,
                "switchover",
                CONTROL,
                lambda span: server.agent(self.destination).call(
                    "migrate_prep", costs.host_migrate_prep_s, span=span, task=task
                ),
                tag=PHASE_AGENT,
            )
            self.vm.place_on(self.destination)
            yield from self.timed(
                server,
                task,
                "commit_db",
                CONTROL,
                lambda span: server.database.write(rows=2, span=span),
                tag=PHASE_DB,
            )
            task.result = self.vm
        finally:
            scope.release(grants)


class StorageMigrateVM(Operation):
    """Storage vMotion: move a VM's disks to another datastore."""

    op_type = OperationType.STORAGE_MIGRATE

    def __init__(self, vm: VirtualMachine, destination: Datastore) -> None:
        self.vm = vm
        self.destination = destination

    def run(self, server: "ManagementServer", task: "Task") -> typing.Generator:
        costs = server.costs
        if self.vm.host is None:
            raise OperationError(f"VM {self.vm.name!r} is not placed on a host")
        yield from self.timed(
            server,
            task,
            "validate",
            CONTROL,
            lambda span: server.cpu_work(costs.api_validate_s, span=span),
            tag=PHASE_CPU,
        )
        scope = server.locks.holding([self.vm.entity_id])
        grants = yield from self.timed(
            server, task, "lock", CONTROL, scope.acquire(), tag=PHASE_LOCK
        )
        try:
            if self.vm.host is None:
                raise OperationError(f"VM {self.vm.name!r} was destroyed while queued")
            agent = server.agent(self.vm.host)
            yield from self.timed(
                server,
                task,
                "prep",
                CONTROL,
                lambda span: agent.call(
                    "migrate_prep", costs.host_migrate_prep_s, span=span, task=task
                ),
                tag=PHASE_AGENT,
            )
            for index, disk in enumerate(self.vm.disks):
                if disk.datastore is self.destination:
                    continue
                # Moving a linked clone flattens it: the copy carries the
                # full logical content to the new datastore.
                size_gb = disk.backing.logical_size_gb
                yield from self.timed(
                    server,
                    task,
                    f"disk_copy_{index}",
                    DATA,
                    lambda span, ds=disk.datastore, gb=size_gb: (
                        server.copy_scheduler.scheduled_copy(
                            ds, self.destination, gb, span=span
                        )
                    ),
                    tag=PHASE_COPY,
                )
                old = disk.backing
                if old.parent is not None:
                    old.parent.children -= 1
                if old.children == 0:
                    old.datastore.reclaim(old.size_gb)
                disk.backing = DiskBacking(datastore=self.destination, size_gb=size_gb)
            yield from self.timed(
                server,
                task,
                "commit_db",
                CONTROL,
                lambda span: server.database.write(
                    rows=1 + len(self.vm.disks), span=span
                ),
                tag=PHASE_DB,
            )
            task.result = self.vm
        finally:
            scope.release(grants)


def _fixed_transfer(server: "ManagementServer", seconds: float) -> typing.Generator:
    """A data-plane delay of fixed duration (dedicated-network transfer)."""
    yield server.sim.timeout(max(0.0, seconds))
    return seconds
