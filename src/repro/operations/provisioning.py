"""Provisioning operations: clone (full/linked) and deploy-from-template.

The control-plane phases are identical between the two clone flavours —
validation, locking, placement, host-agent calls, inventory registration,
result commit. Only the *disk materialization* phase differs:

- full: a byte copy of the source's logical disk through the copy
  scheduler (minutes of data-plane time);
- linked: a delta-backing creation (sub-second, and none of it data-plane).

That asymmetry, multiplied by cloud provisioning rates, is the paper's
headline result.
"""

from __future__ import annotations

import typing

from repro.datacenter.entities import Datastore, Host
from repro.datacenter.vm import PowerState, VirtualDisk, VirtualMachine
from repro.operations.base import CONTROL, DATA, Operation, OperationError, OperationType
from repro.tracing import (
    PHASE_AGENT,
    PHASE_COPY,
    PHASE_CPU,
    PHASE_DB,
    PHASE_LOCK,
    PHASE_PLACEMENT,
)
from repro.storage.linked_clone import (
    INITIAL_DELTA_GB,
    create_linked_backing,
    ensure_clone_anchor,
    has_clone_anchor,
)

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.controlplane.server import ManagementServer
    from repro.controlplane.task_manager import Task


class CloneVM(Operation):
    """Clone ``source`` to a new VM on ``target_host``/``target_datastore``."""

    def __init__(
        self,
        source: VirtualMachine,
        name: str,
        target_host: Host,
        target_datastore: Datastore,
        linked: bool,
        power_on_after: bool = False,
    ) -> None:
        self.source = source
        self.name = name
        self.target_host = target_host
        self.target_datastore = target_datastore
        self.linked = linked
        self.power_on_after = power_on_after
        self.op_type = OperationType.CLONE_LINKED if linked else OperationType.CLONE_FULL

    def run(self, server: "ManagementServer", task: "Task") -> typing.Generator:
        costs = server.costs
        if not self.source.disks:
            raise OperationError(f"source {self.source.name!r} has no disks")
        if not self.target_host.is_usable:
            raise OperationError(f"target host {self.target_host.name!r} unusable")

        yield from self.timed(
            server,
            task,
            "validate",
            CONTROL,
            lambda span: server.cpu_work(costs.api_validate_s, span=span),
            tag=PHASE_CPU,
        )

        # Shared lock on the source: many clones of one template proceed
        # concurrently; an exclusive op on it (destroy/snapshot-delete)
        # waits. The target host needs only shared access too — per-host
        # concurrency is governed by the agent's operation slots.
        scope = server.locks.holding(
            [], read_ids=[self.source.entity_id, self.target_host.entity_id]
        )
        grants = yield from self.timed(
            server, task, "lock", CONTROL, scope.acquire(), tag=PHASE_LOCK
        )
        try:
            # Placement scoring reads host/datastore stats rows.
            yield from self.timed(
                server,
                task,
                "placement",
                CONTROL,
                lambda span: server.cpu_work(
                    costs.placement_s, span=span, work_phase=PHASE_PLACEMENT
                ),
                tag=PHASE_PLACEMENT,
            )
            yield from self.timed(
                server,
                task,
                "placement_db",
                CONTROL,
                lambda span: server.database.read(rows=2, span=span),
                tag=PHASE_PLACEMENT,
            )

            agent = server.agent(self.target_host)
            if self.linked:
                vm = yield from self._materialize_linked(server, task, agent)
            else:
                vm = yield from self._materialize_full(server, task, agent)

            # Register the new VM with the host agent and the inventory DB:
            # VM row, per-disk rows, permission/stat rows.
            yield from self.timed(
                server,
                task,
                "register_vm",
                CONTROL,
                lambda span: agent.call(
                    "register_vm", costs.host_register_vm_s, span=span, task=task
                ),
                tag=PHASE_AGENT,
            )
            yield from self.timed(
                server,
                task,
                "inventory_commit",
                CONTROL,
                lambda span: server.database.write(rows=3 + len(vm.disks), span=span),
                tag=PHASE_DB,
            )
            vm.place_on(self.target_host)

            if self.power_on_after:
                yield from self.timed(
                    server,
                    task,
                    "power_on",
                    CONTROL,
                    lambda span: agent.call(
                        "power_on", costs.host_power_on_s, span=span, task=task
                    ),
                    tag=PHASE_AGENT,
                )
                vm.power_state = PowerState.ON
                yield from self.timed(
                    server,
                    task,
                    "power_on_db",
                    CONTROL,
                    lambda span: server.database.write(rows=1, span=span),
                    tag=PHASE_DB,
                )

            yield from self.timed(
                server,
                task,
                "commit",
                CONTROL,
                lambda span: server.cpu_work(costs.result_commit_s, span=span),
                tag=PHASE_CPU,
            )
            task.result = vm
        finally:
            scope.release(grants)

    # -- disk materialization ---------------------------------------------------

    def _materialize_linked(
        self, server: "ManagementServer", task: "Task", agent
    ) -> typing.Generator[typing.Any, typing.Any, VirtualMachine]:
        costs = server.costs
        if not has_clone_anchor(self.source):
            # Snapshot the source to create anchors: a host-agent call plus
            # the snapshot's inventory rows — control-plane work that full
            # clones of templates never pay but self-service linked clones
            # of running VMs do.
            yield from self.timed(
                server,
                task,
                "anchor_snapshot",
                CONTROL,
                lambda span: agent.call(
                    "snapshot", costs.host_snapshot_s, span=span, task=task
                ),
                tag=PHASE_AGENT,
            )
            yield from self.timed(
                server,
                task,
                "anchor_db",
                CONTROL,
                lambda span: server.database.write(rows=2, span=span),
                tag=PHASE_DB,
            )
        anchors = ensure_clone_anchor(self.source)
        vm = self._new_vm(server)
        for index, (disk, anchor) in enumerate(zip(self.source.disks, anchors)):
            yield from self.timed(
                server,
                task,
                f"create_delta_{index}",
                CONTROL,
                lambda span: agent.call(
                    "create_disk", costs.host_create_disk_s, span=span, task=task
                ),
                tag=PHASE_AGENT,
            )
            # Delta creation moves no bytes, but it still needs the target
            # datastore's storage stack to accept the format metadata:
            # consult the copy-path fault hook (keyed by datastore) so
            # outages and copy flakiness gate linked clones too, without
            # charging any data-plane time.
            server.copy_engine.faults.fire(key=self.target_datastore.entity_id)
            backing = create_linked_backing(anchor, self.target_datastore)
            vm.attach_disk(
                VirtualDisk(
                    label=disk.label,
                    backing=backing,
                    provisioned_gb=disk.provisioned_gb,
                )
            )
        return vm

    def _materialize_full(
        self, server: "ManagementServer", task: "Task", agent
    ) -> typing.Generator[typing.Any, typing.Any, VirtualMachine]:
        costs = server.costs
        vm = self._new_vm(server)
        for index, disk in enumerate(self.source.disks):
            yield from self.timed(
                server,
                task,
                f"create_disk_{index}",
                CONTROL,
                lambda span: agent.call(
                    "create_disk", costs.host_create_disk_s, span=span, task=task
                ),
                tag=PHASE_AGENT,
            )
            size_gb = disk.backing.logical_size_gb
            yield from self.timed(
                server,
                task,
                f"copy_disk_{index}",
                DATA,
                lambda span, size=size_gb, source_ds=disk.datastore: (
                    server.copy_scheduler.scheduled_copy(
                        source_ds, self.target_datastore, size, span=span
                    )
                ),
                tag=PHASE_COPY,
            )
            from repro.datacenter.vm import DiskBacking

            vm.attach_disk(
                VirtualDisk(
                    label=disk.label,
                    backing=DiskBacking(
                        datastore=self.target_datastore, size_gb=size_gb
                    ),
                    provisioned_gb=disk.provisioned_gb,
                )
            )
        return vm

    def _new_vm(self, server: "ManagementServer") -> VirtualMachine:
        return server.inventory.create(
            VirtualMachine,
            name=self.name,
            vcpus=self.source.vcpus,
            memory_gb=self.source.memory_gb,
            created_at=server.sim.now,
        )

    # -- crash recovery ---------------------------------------------------------
    #
    # Ground truth for a clone is the inventory: a crash-interrupted attempt
    # may have left a registered-and-placed VM (done), a registered but
    # never-placed VM (half-done), or nothing. Matching is by target name —
    # the clone's natural idempotency key.

    def _leftovers(self, server: "ManagementServer") -> list[VirtualMachine]:
        return [
            vm
            for vm in server.inventory.all(VirtualMachine)
            if vm.name == self.name
        ]

    def _is_complete(self, vm: VirtualMachine) -> bool:
        if vm.host is None:
            return False
        return not self.power_on_after or vm.power_state is PowerState.ON

    def recovery_probe(self, server: "ManagementServer", task: "Task") -> str:
        leftovers = self._leftovers(server)
        if any(self._is_complete(vm) for vm in leftovers):
            return "complete"
        return "partial" if leftovers else "absent"

    def recovery_adopt(self, server: "ManagementServer", task: "Task") -> None:
        """Claim the placed VM; retire incomplete duplicates of it."""
        adopted = None
        for vm in self._leftovers(server):
            if adopted is None and self._is_complete(vm):
                adopted = vm
            elif not self._is_complete(vm):
                server.inventory.unregister(vm)
        task.result = adopted

    def recovery_rollback(self, server: "ManagementServer", task: "Task") -> None:
        """Undo half-done placements/registrations before a re-issue."""
        for vm in self._leftovers(server):
            if vm.host is not None:
                vm.evacuate()
            server.inventory.unregister(vm)


class DeployFromTemplate(Operation):
    """Self-service deploy: clone from a template, customize, power on.

    This is the unit of work the paper's clouds issue at high rate. The
    customization pass (guest identity, NIC mapping) is one more
    control-plane toll on top of the clone.
    """

    op_type = OperationType.DEPLOY

    def __init__(
        self,
        template: VirtualMachine,
        name: str,
        target_host: Host,
        target_datastore: Datastore,
        linked: bool,
    ) -> None:
        if not template.is_template:
            raise OperationError(f"{template.name!r} is not a template")
        self.clone = CloneVM(
            template,
            name,
            target_host,
            target_datastore,
            linked=linked,
            power_on_after=False,
        )
        self.target_host = target_host
        self.linked = linked

    def run(self, server: "ManagementServer", task: "Task") -> typing.Generator:
        costs = server.costs
        yield from self.clone.run(server, task)
        vm = task.result
        agent = server.agent(self.target_host)
        yield from self.timed(
            server,
            task,
            "customize_cpu",
            CONTROL,
            lambda span: server.cpu_work(costs.config_gen_s, span=span),
            tag=PHASE_CPU,
        )
        yield from self.timed(
            server,
            task,
            "customize_host",
            CONTROL,
            lambda span: agent.call(
                "reconfigure", costs.host_reconfigure_s, span=span, task=task
            ),
            tag=PHASE_AGENT,
        )
        yield from self.timed(
            server,
            task,
            "customize_db",
            CONTROL,
            lambda span: server.database.write(rows=1, span=span),
            tag=PHASE_DB,
        )
        yield from self.timed(
            server,
            task,
            "power_on",
            CONTROL,
            lambda span: agent.call(
                "power_on", costs.host_power_on_s, span=span, task=task
            ),
            tag=PHASE_AGENT,
        )
        vm.power_state = PowerState.ON
        yield from self.timed(
            server,
            task,
            "power_on_db",
            CONTROL,
            lambda span: server.database.write(rows=1, span=span),
            tag=PHASE_DB,
        )
        task.result = vm

    # -- crash recovery ---------------------------------------------------------
    #
    # A deploy is complete only when its VM is placed *and* powered on; a
    # placed-but-off VM is a half-done deploy (customization or power-on
    # lost to the crash) and is rolled back rather than adopted.

    def _deploy_complete(self, vm) -> bool:
        return vm.host is not None and vm.power_state is PowerState.ON

    def recovery_probe(self, server: "ManagementServer", task: "Task") -> str:
        leftovers = self.clone._leftovers(server)
        if any(self._deploy_complete(vm) for vm in leftovers):
            return "complete"
        return "partial" if leftovers else "absent"

    def recovery_adopt(self, server: "ManagementServer", task: "Task") -> None:
        adopted = None
        for vm in self.clone._leftovers(server):
            if adopted is None and self._deploy_complete(vm):
                adopted = vm
            elif not self._deploy_complete(vm):
                if vm.host is not None:
                    vm.evacuate()
                server.inventory.unregister(vm)
        task.result = adopted

    def recovery_rollback(self, server: "ManagementServer", task: "Task") -> None:
        self.clone.recovery_rollback(server, task)
