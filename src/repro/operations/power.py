"""Power operations: the classic-datacenter bread and butter."""

from __future__ import annotations

import typing

from repro.datacenter.vm import PowerState, VirtualMachine
from repro.operations.base import CONTROL, Operation, OperationError, OperationType
from repro.tracing import PHASE_AGENT, PHASE_CPU, PHASE_DB, PHASE_LOCK

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.controlplane.server import ManagementServer
    from repro.controlplane.task_manager import Task


class _PowerOperation(Operation):
    """Shared skeleton: validate → lock → host-agent call → DB commit."""

    target_state: PowerState
    host_call: str

    def __init__(self, vm: VirtualMachine) -> None:
        self.vm = vm

    def _host_median(self, server: "ManagementServer") -> float:
        raise NotImplementedError

    def _check(self) -> None:
        raise NotImplementedError

    def run(self, server: "ManagementServer", task: "Task") -> typing.Generator:
        costs = server.costs
        if self.vm.host is None:
            raise OperationError(f"VM {self.vm.name!r} is not placed on a host")
        self._check()
        yield from self.timed(
            server,
            task,
            "validate",
            CONTROL,
            lambda span: server.cpu_work(costs.api_validate_s, span=span),
            tag=PHASE_CPU,
        )
        scope = server.locks.holding([self.vm.entity_id])
        grants = yield from self.timed(
            server, task, "lock", CONTROL, scope.acquire(), tag=PHASE_LOCK
        )
        try:
            # Revalidate under the lock: the VM may have been destroyed or
            # power-cycled by an operation that held the lock before us.
            if self.vm.host is None:
                raise OperationError(f"VM {self.vm.name!r} was destroyed while queued")
            self._check()
            # Check-and-reserve atomically (no yield between): concurrent
            # power-ons of *different* VMs on the same host race only for
            # admission capacity, which the state flip claims right here.
            previous_state = self.vm.power_state
            self.vm.power_state = self.target_state
            agent = server.agent(self.vm.host)
            try:
                yield from self.timed(
                    server,
                    task,
                    self.host_call,
                    CONTROL,
                    lambda span: agent.call(
                        self.host_call, self._host_median(server), span=span, task=task
                    ),
                    tag=PHASE_AGENT,
                )
            except BaseException:
                self.vm.power_state = previous_state
                raise
            yield from self.timed(
                server,
                task,
                "state_db",
                CONTROL,
                lambda span: server.database.write(rows=1, span=span),
                tag=PHASE_DB,
            )
            task.result = self.vm
        finally:
            scope.release(grants)


class PowerOn(_PowerOperation):
    """Power a VM on, with host memory admission control.

    Admission follows the hypervisor rule: powered-on guest memory on the
    host may not exceed ``memory_gb × memory_overcommit``. The check runs
    both up front and again under the VM lock (capacity can vanish while
    the op queues).
    """

    op_type = OperationType.POWER_ON
    target_state = PowerState.ON
    host_call = "power_on"

    def _host_median(self, server: "ManagementServer") -> float:
        return server.costs.host_power_on_s

    def _check(self) -> None:
        if self.vm.power_state == PowerState.ON:
            raise OperationError(f"VM {self.vm.name!r} already powered on")
        host = self.vm.host
        if host is not None and not host.can_admit(self.vm.memory_gb):
            raise OperationError(
                f"host {host.name!r} cannot admit {self.vm.memory_gb:.0f} GB: "
                f"{host.memory_in_use_gb:.0f}/{host.memory_limit_gb:.0f} GB in use"
            )


class PowerOff(_PowerOperation):
    """Power a VM off."""

    op_type = OperationType.POWER_OFF
    target_state = PowerState.OFF
    host_call = "power_off"

    def _host_median(self, server: "ManagementServer") -> float:
        return server.costs.host_power_off_s

    def _check(self) -> None:
        if self.vm.power_state == PowerState.OFF:
            raise OperationError(f"VM {self.vm.name!r} already powered off")
