"""VM lifecycle operations: reconfigure, snapshot create/delete, destroy.

Snapshot deletion is the sleeper data-plane cost: removing a snapshot
consolidates delta links, copying their contents — which is why clouds
that lean on linked clones must garbage-collect chains deliberately.
"""

from __future__ import annotations

import typing

from repro.datacenter.vm import PowerState, VirtualMachine
from repro.operations.base import CONTROL, DATA, Operation, OperationError, OperationType
from repro.storage.linked_clone import merge_leaf_into_parent
from repro.tracing import PHASE_AGENT, PHASE_COPY, PHASE_CPU, PHASE_DB, PHASE_LOCK

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.controlplane.server import ManagementServer
    from repro.controlplane.task_manager import Task


class ReconfigureVM(Operation):
    """Change a VM's virtual hardware (vCPU/memory/NIC edits)."""

    op_type = OperationType.RECONFIGURE

    def __init__(
        self,
        vm: VirtualMachine,
        vcpus: int | None = None,
        memory_gb: float | None = None,
    ) -> None:
        self.vm = vm
        self.vcpus = vcpus
        self.memory_gb = memory_gb

    def run(self, server: "ManagementServer", task: "Task") -> typing.Generator:
        costs = server.costs
        if self.vm.host is None:
            raise OperationError(f"VM {self.vm.name!r} is not placed on a host")
        yield from self.timed(
            server,
            task,
            "validate",
            CONTROL,
            lambda span: server.cpu_work(costs.api_validate_s, span=span),
            tag=PHASE_CPU,
        )
        scope = server.locks.holding([self.vm.entity_id])
        grants = yield from self.timed(
            server, task, "lock", CONTROL, scope.acquire(), tag=PHASE_LOCK
        )
        try:
            if self.vm.host is None:
                raise OperationError(f"VM {self.vm.name!r} was destroyed while queued")
            yield from self.timed(
                server,
                task,
                "config_gen",
                CONTROL,
                lambda span: server.cpu_work(costs.config_gen_s, span=span),
                tag=PHASE_CPU,
            )
            agent = server.agent(self.vm.host)
            yield from self.timed(
                server,
                task,
                "reconfigure",
                CONTROL,
                lambda span: agent.call(
                    "reconfigure", costs.host_reconfigure_s, span=span, task=task
                ),
                tag=PHASE_AGENT,
            )
            if self.vcpus is not None:
                self.vm.vcpus = self.vcpus
            if self.memory_gb is not None:
                self.vm.memory_gb = self.memory_gb
            yield from self.timed(
                server,
                task,
                "commit_db",
                CONTROL,
                lambda span: server.database.write(rows=1, span=span),
                tag=PHASE_DB,
            )
            task.result = self.vm
        finally:
            scope.release(grants)


class CreateSnapshot(Operation):
    """Snapshot a VM: freeze leaves, add deltas, record snapshot rows."""

    op_type = OperationType.SNAPSHOT_CREATE

    def __init__(self, vm: VirtualMachine, snapshot_name: str = "snap") -> None:
        self.vm = vm
        self.snapshot_name = snapshot_name

    def run(self, server: "ManagementServer", task: "Task") -> typing.Generator:
        costs = server.costs
        if self.vm.host is None:
            raise OperationError(f"VM {self.vm.name!r} is not placed on a host")
        yield from self.timed(
            server,
            task,
            "validate",
            CONTROL,
            lambda span: server.cpu_work(costs.api_validate_s, span=span),
            tag=PHASE_CPU,
        )
        scope = server.locks.holding([self.vm.entity_id])
        grants = yield from self.timed(
            server, task, "lock", CONTROL, scope.acquire(), tag=PHASE_LOCK
        )
        try:
            if self.vm.host is None:
                raise OperationError(f"VM {self.vm.name!r} was destroyed while queued")
            agent = server.agent(self.vm.host)
            yield from self.timed(
                server,
                task,
                "snapshot",
                CONTROL,
                lambda span: agent.call(
                    "snapshot", costs.host_snapshot_s, span=span, task=task
                ),
                tag=PHASE_AGENT,
            )
            snapshot = self.vm.take_snapshot(self.snapshot_name)
            yield from self.timed(
                server,
                task,
                "snapshot_db",
                CONTROL,
                lambda span: server.database.write(rows=2, span=span),
                tag=PHASE_DB,
            )
            task.result = snapshot
        finally:
            scope.release(grants)


class DeleteSnapshot(Operation):
    """Delete the most recent snapshot, merging the leaf delta down.

    The data-plane cost is the *delta contents* — everything the guest
    wrote since the snapshot (``written_gb``, drawn by the caller) — not
    the whole logical disk. Merging never touches shared linked-clone
    anchors, so siblings are unaffected.
    """

    op_type = OperationType.SNAPSHOT_DELETE

    def __init__(self, vm: VirtualMachine, written_gb: float = 2.0) -> None:
        if written_gb < 0:
            raise OperationError("written_gb must be non-negative")
        self.vm = vm
        self.written_gb = written_gb

    def run(self, server: "ManagementServer", task: "Task") -> typing.Generator:
        costs = server.costs
        if self.vm.host is None:
            raise OperationError(f"VM {self.vm.name!r} is not placed on a host")
        if not self.vm.snapshots:
            raise OperationError(f"VM {self.vm.name!r} has no snapshots")
        yield from self.timed(
            server,
            task,
            "validate",
            CONTROL,
            lambda span: server.cpu_work(costs.api_validate_s, span=span),
            tag=PHASE_CPU,
        )
        scope = server.locks.holding([self.vm.entity_id])
        grants = yield from self.timed(
            server, task, "lock", CONTROL, scope.acquire(), tag=PHASE_LOCK
        )
        try:
            if self.vm.host is None:
                raise OperationError(f"VM {self.vm.name!r} was destroyed while queued")
            if not self.vm.snapshots:
                raise OperationError(
                    f"VM {self.vm.name!r} lost its snapshots while queued"
                )
            agent = server.agent(self.vm.host)
            for index, disk in enumerate(self.vm.disks):
                parent = disk.backing.parent
                if parent is None or parent.children != 1:
                    continue
                # Guest writes since the snapshot accumulated in the leaf.
                disk.datastore.allocate(self.written_gb)
                disk.backing.size_gb += self.written_gb
                moved_gb = disk.backing.size_gb
                if moved_gb > 0:
                    yield from self.timed(
                        server,
                        task,
                        f"merge_copy_{index}",
                        DATA,
                        lambda span, ds=disk.datastore, gb=moved_gb: (
                            server.copy_scheduler.scheduled_copy(ds, ds, gb, span=span)
                        ),
                        tag=PHASE_COPY,
                    )
                    # The copy engine charges for a new file; a merge lands
                    # in the parent, whose growth merge_leaf_into_parent
                    # accounts — release the engine's transient allocation.
                    disk.datastore.reclaim(moved_gb)
                merge_leaf_into_parent(disk)
            yield from self.timed(
                server,
                task,
                "consolidate_host",
                CONTROL,
                lambda span: agent.call(
                    "reconfigure", costs.host_reconfigure_s, span=span, task=task
                ),
                tag=PHASE_AGENT,
            )
            self.vm.snapshots.pop()
            yield from self.timed(
                server,
                task,
                "snapshot_db",
                CONTROL,
                lambda span: server.database.write(rows=2, span=span),
                tag=PHASE_DB,
            )
            task.result = self.vm
        finally:
            scope.release(grants)


class DestroyVM(Operation):
    """Destroy a VM: power check, host delete, space reclaim, unregister."""

    op_type = OperationType.DESTROY

    def __init__(self, vm: VirtualMachine) -> None:
        self.vm = vm

    def run(self, server: "ManagementServer", task: "Task") -> typing.Generator:
        costs = server.costs
        if self.vm.power_state == PowerState.ON:
            raise OperationError(f"VM {self.vm.name!r} is powered on")
        if self.vm.host is None:
            raise OperationError(f"VM {self.vm.name!r} is not placed on a host")
        yield from self.timed(
            server,
            task,
            "validate",
            CONTROL,
            lambda span: server.cpu_work(costs.api_validate_s, span=span),
            tag=PHASE_CPU,
        )
        scope = server.locks.holding([self.vm.entity_id])
        grants = yield from self.timed(
            server, task, "lock", CONTROL, scope.acquire(), tag=PHASE_LOCK
        )
        try:
            if self.vm.host is None:
                raise OperationError(f"VM {self.vm.name!r} was destroyed while queued")
            if self.vm.power_state == PowerState.ON:
                raise OperationError(f"VM {self.vm.name!r} was powered on while queued")
            agent = server.agent(self.vm.host)
            yield from self.timed(
                server,
                task,
                "destroy_host",
                CONTROL,
                lambda span: agent.call(
                    "destroy", costs.host_destroy_s, span=span, task=task
                ),
                tag=PHASE_AGENT,
            )
            # Reclaim only backings unique to this VM (children == 0 leaves);
            # shared linked-clone parents stay until their last child dies.
            for disk in self.vm.disks:
                backing = disk.backing
                if backing.children == 0:
                    backing.datastore.reclaim(backing.size_gb)
                    if backing.parent is not None:
                        backing.parent.children -= 1
            self.vm.evacuate()
            self.vm.destroyed_at = server.sim.now
            server.inventory.unregister(self.vm)
            yield from self.timed(
                server,
                task,
                "unregister_db",
                CONTROL,
                lambda span: server.database.write(rows=2, span=span),
                tag=PHASE_DB,
            )
            task.result = self.vm
        finally:
            scope.release(grants)
