"""Host maintenance mode: the evacuate-then-service workflow.

Entering maintenance live-migrates every powered-on VM off the host (a
burst of vMotions through the control plane) and cold-relocates the rest,
then fences the host. Clouds patch hosts on a rolling cadence, so at
cloud scale this previously occasional workflow becomes routine — the
same dynamic as the paper's claim 4.
"""

from __future__ import annotations

import typing

from repro.datacenter.entities import Host, HostState
from repro.datacenter.vm import PowerState
from repro.operations.base import CONTROL, Operation, OperationError, OperationType
from repro.operations.migration import MigrateVM
from repro.tracing import PHASE_AGENT, PHASE_CPU, PHASE_DB

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.controlplane.server import ManagementServer
    from repro.controlplane.task_manager import Task


class EnterMaintenance(Operation):
    """Evacuate a host and place it in maintenance mode.

    Powered-on VMs are live-migrated round-robin onto the other usable
    hosts (each migration is its own management task, dispatched through
    the normal pipeline); powered-off VMs are re-registered (cheap cold
    relocation). Fails if no evacuation target exists.
    """

    op_type = OperationType.ENTER_MAINTENANCE

    def __init__(self, host: Host, targets: typing.Sequence[Host]) -> None:
        self.host = host
        self.targets = [t for t in targets if t is not host]

    def run(self, server: "ManagementServer", task: "Task") -> typing.Generator:
        costs = server.costs
        if self.host.state != HostState.CONNECTED:
            raise OperationError(f"host {self.host.name!r} is {self.host.state.value}")
        usable_targets = [t for t in self.targets if t.is_usable]
        if self.host.vms and not usable_targets:
            raise OperationError(f"no evacuation target for {self.host.name!r}")
        yield from self.timed(
            server,
            task,
            "validate",
            CONTROL,
            lambda span: server.cpu_work(costs.api_validate_s, span=span),
            tag=PHASE_CPU,
        )
        victims = sorted(self.host.vms, key=lambda vm: vm.entity_id)
        migrations = []
        for index, vm in enumerate(victims):
            target = usable_targets[index % len(usable_targets)]
            if vm.power_state == PowerState.ON:
                migrations.append(
                    server.submit(MigrateVM(vm, target), priority=3.0, span=task.span)
                )
            else:
                # Cold relocation: unregister/register, no data movement.
                vm.place_on(target)
        for process in migrations:
            try:
                yield process
            except Exception:
                raise OperationError(
                    f"evacuation of {self.host.name!r} failed mid-way"
                ) from None
        if self.host.vms:
            # Anything still here is powered-off stragglers relocated above;
            # a populated host cannot be fenced.
            raise OperationError(f"host {self.host.name!r} still has VMs")
        self.host.state = HostState.MAINTENANCE
        yield from self.timed(
            server,
            task,
            "fence_db",
            CONTROL,
            lambda span: server.database.write(rows=1, span=span),
            tag=PHASE_DB,
        )
        task.result = self.host


class EvacuateDatastore(Operation):
    """Storage-migrate every VM off a datastore (LUN retirement).

    The storage-side analogue of host maintenance: before an array LUN is
    retired or re-carved, everything on it moves elsewhere. Each move is a
    full storage vMotion — the data plane pays per-VM logical bytes, and
    the control plane pays the usual per-op toll times the datastore's VM
    population (which cloud churn keeps large).
    """

    op_type = OperationType.EVACUATE_DATASTORE

    def __init__(self, datastore, targets: typing.Sequence) -> None:
        self.datastore = datastore
        self.targets = [t for t in targets if t is not datastore]

    def _resident_vms(self, server: "ManagementServer"):
        from repro.datacenter.vm import VirtualMachine

        residents = []
        for vm in server.inventory.all(VirtualMachine):
            if vm.host is None:
                continue
            if any(disk.datastore is self.datastore for disk in vm.disks):
                residents.append(vm)
        return sorted(residents, key=lambda vm: vm.entity_id)

    def run(self, server: "ManagementServer", task: "Task") -> typing.Generator:
        from repro.operations.migration import StorageMigrateVM

        costs = server.costs
        if not self.targets:
            raise OperationError("no target datastores for evacuation")
        yield from self.timed(
            server,
            task,
            "validate",
            CONTROL,
            lambda span: server.cpu_work(costs.api_validate_s, span=span),
            tag=PHASE_CPU,
        )
        residents = self._resident_vms(server)
        moved = 0
        for index, vm in enumerate(residents):
            target = self.targets[index % len(self.targets)]
            if target.free_gb < vm.total_disk_gb:
                raise OperationError(
                    f"target {target.name!r} lacks space for {vm.name!r}"
                )
            process = server.submit(
                StorageMigrateVM(vm, target), priority=4.0, span=task.span
            )
            try:
                yield process
            except Exception:
                raise OperationError(
                    f"evacuation of {self.datastore.name!r} failed at {vm.name!r}"
                ) from None
            moved += 1
        yield from self.timed(
            server,
            task,
            "retire_db",
            CONTROL,
            lambda span: server.database.write(rows=1, span=span),
            tag=PHASE_DB,
        )
        task.result = moved


class ExitMaintenance(Operation):
    """Return a host to service."""

    op_type = OperationType.EXIT_MAINTENANCE

    def __init__(self, host: Host) -> None:
        self.host = host

    def run(self, server: "ManagementServer", task: "Task") -> typing.Generator:
        costs = server.costs
        if self.host.state != HostState.MAINTENANCE:
            raise OperationError(f"host {self.host.name!r} is not in maintenance")
        yield from self.timed(
            server,
            task,
            "validate",
            CONTROL,
            lambda span: server.cpu_work(costs.api_validate_s, span=span),
            tag=PHASE_CPU,
        )
        agent = server.agent(self.host)
        self.host.state = HostState.CONNECTED
        yield from self.timed(
            server,
            task,
            "reconnect",
            CONTROL,
            lambda span: agent.call(
                "reconfigure", costs.host_reconfigure_s, span=span, task=task
            ),
            tag=PHASE_AGENT,
        )
        yield from self.timed(
            server,
            task,
            "unfence_db",
            CONTROL,
            lambda span: server.database.write(rows=1, span=span),
            tag=PHASE_DB,
        )
        task.result = self.host
