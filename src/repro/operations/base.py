"""Operation base class, taxonomy, and phase-attribution helper."""

from __future__ import annotations

import enum
import typing

from repro.tracing.span import PHASE_TASK, Span

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.controlplane.server import ManagementServer
    from repro.controlplane.task_manager import Task

CONTROL = "control"
DATA = "data"


class OperationType(enum.Enum):
    """Taxonomy used by workload mixes and the characterization pipeline."""

    CLONE_FULL = "clone_full"
    CLONE_LINKED = "clone_linked"
    DEPLOY = "deploy"
    POWER_ON = "power_on"
    POWER_OFF = "power_off"
    RECONFIGURE = "reconfigure"
    SNAPSHOT_CREATE = "snapshot_create"
    SNAPSHOT_DELETE = "snapshot_delete"
    MIGRATE = "migrate"
    STORAGE_MIGRATE = "storage_migrate"
    DESTROY = "destroy"
    RESCAN_DATASTORE = "rescan_datastore"
    ADD_HOST = "add_host"
    ADD_DATASTORE = "add_datastore"
    NETWORK_RECONFIG = "network_reconfig"
    ENTER_MAINTENANCE = "enter_maintenance"
    EXIT_MAINTENANCE = "exit_maintenance"
    EVACUATE_DATASTORE = "evacuate_datastore"

    @classmethod
    def provisioning(cls) -> set["OperationType"]:
        """Operations that create or retire capacity (cloud churn)."""
        return {cls.CLONE_FULL, cls.CLONE_LINKED, cls.DEPLOY, cls.DESTROY}

    @classmethod
    def reconfiguration(cls) -> set["OperationType"]:
        """Infrastructure reconfiguration — the 'previously infrequent' ops."""
        return {
            cls.RESCAN_DATASTORE,
            cls.ADD_HOST,
            cls.ADD_DATASTORE,
            cls.NETWORK_RECONFIG,
            cls.ENTER_MAINTENANCE,
            cls.EXIT_MAINTENANCE,
            cls.EVACUATE_DATASTORE,
        }


class OperationError(Exception):
    """An operation failed for a modeled reason (not a simulator bug)."""


def phase(
    task: "Task",
    name: str,
    plane: str,
    sim_now: typing.Callable[[], float],
    body: typing.Generator | typing.Callable[[Span], typing.Generator],
    tag: str = PHASE_TASK,
) -> typing.Generator[typing.Any, typing.Any, typing.Any]:
    """Run a process-style ``body`` and attribute its wall time to a phase.

    Usage inside an operation::

        result = yield from phase(task, "validate", CONTROL, lambda: server.sim.now,
                                  server.cpu_work(costs.api_validate_s))

    When tracing is on (``task.span`` is real) the phase also opens a
    child span tagged ``tag`` and stamped with the plane. ``body`` may be
    a callable taking that span — components accept it to hang their own
    sub-spans (pool waits, per-call spans) off the phase.
    """
    if plane not in (CONTROL, DATA):
        raise ValueError(f"unknown plane {plane!r}")
    span = task.span.child(name, phase=tag, tags={"plane": plane})
    if callable(body):
        body = body(span)
    start = sim_now()
    try:
        result = yield from body
    except BaseException as exc:
        span.finish(error=type(exc).__name__)
        raise
    span.finish()
    task.phases.append((name, plane, sim_now() - start))
    return result


class Operation:
    """Base class: subclasses implement :meth:`run` as a process generator.

    ``run`` executes inside a task lifecycle (see
    :meth:`repro.controlplane.server.ManagementServer.submit`); it should
    append to ``task.phases`` via :func:`phase` and set ``task.result``.
    """

    op_type: OperationType

    def run(
        self, server: "ManagementServer", task: "Task"
    ) -> typing.Generator[typing.Any, typing.Any, None]:
        raise NotImplementedError

    # -- crash recovery ------------------------------------------------------
    #
    # After a management-server crash, the RecoveryManager asks each parked
    # operation what its interrupted attempt left behind. These are plain
    # (non-generator) methods: reconciliation inspects in-memory ground
    # truth — inventory, hosts — while the replay's simulated cost is
    # charged by the recovery manager itself.

    def recovery_probe(
        self, server: "ManagementServer", task: "Task"
    ) -> str:
        """Ground-truth verdict for a crash-interrupted attempt.

        Returns ``"complete"`` (the work finished; adopt it),
        ``"partial"`` (half-done side effects; roll back, then re-issue),
        or ``"absent"`` (nothing externalized; re-issue). The default
        claims nothing survived — safe for operations whose attempts leave
        no externalized state.
        """
        return "absent"

    def recovery_adopt(self, server: "ManagementServer", task: "Task") -> None:
        """Claim completed orphaned work (e.g. set ``task.result``)."""

    def recovery_rollback(self, server: "ManagementServer", task: "Task") -> None:
        """Undo half-done side effects before the attempt is re-issued."""

    # Convenience wrapper binding the common arguments of :func:`phase`.
    def timed(
        self,
        server: "ManagementServer",
        task: "Task",
        name: str,
        plane: str,
        body: typing.Generator | typing.Callable[[Span], typing.Generator],
        tag: str = PHASE_TASK,
    ) -> typing.Generator[typing.Any, typing.Any, typing.Any]:
        return (yield from phase(task, name, plane, lambda: server.sim.now, body, tag=tag))

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.op_type.value}>"
