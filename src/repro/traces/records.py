"""The trace-record schema."""

from __future__ import annotations

import dataclasses
import math
import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.controlplane.task_manager import Task


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """One completed management operation, as a log line would record it."""

    op_type: str
    submitted_at: float
    started_at: float
    finished_at: float
    success: bool
    control_s: float      # attributed control-plane seconds
    data_s: float         # attributed data-plane seconds
    org: str = ""
    task_id: int = 0
    error: str = ""

    @property
    def latency(self) -> float:
        return self.finished_at - self.submitted_at

    @property
    def queue_wait(self) -> float:
        return self.started_at - self.submitted_at

    @property
    def service_time(self) -> float:
        return self.finished_at - self.started_at

    @classmethod
    def from_task(cls, task: "Task", org: str = "") -> "TraceRecord":
        """Convert a completed control-plane task into a trace record.

        When the task carries a real (finished) span tree, the plane
        seconds come from the spans and are cross-checked against the
        task's own phase accounting — the two are maintained by different
        code paths, so drift means an instrumentation bug.
        """
        if task.finished_at is None or task.started_at is None:
            raise ValueError(f"task {task.task_id} has not finished")
        control_s = task.plane_seconds("control")
        data_s = task.plane_seconds("data")
        span = task.span
        if not span.is_null and span.finished:
            from repro.tracing import plane_seconds_from_span

            for plane, task_value in (("control", control_s), ("data", data_s)):
                span_value = plane_seconds_from_span(span, plane)
                if not math.isclose(
                    span_value, task_value, rel_tol=1e-6, abs_tol=1e-9
                ):
                    raise ValueError(
                        f"task {task.task_id} {plane}-plane drift: spans say "
                        f"{span_value:.9f}s, task phases say {task_value:.9f}s"
                    )
            control_s = plane_seconds_from_span(span, "control")
            data_s = plane_seconds_from_span(span, "data")
        return cls(
            op_type=task.op_type,
            submitted_at=task.submitted_at,
            started_at=task.started_at,
            finished_at=task.finished_at,
            success=task.state.value == "success",
            control_s=control_s,
            data_s=data_s,
            org=org,
            task_id=task.task_id,
            error=task.error or "",
        )

    def to_dict(self) -> dict[str, typing.Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict[str, typing.Any]) -> "TraceRecord":
        fields = {field.name for field in dataclasses.fields(cls)}
        unknown = set(payload) - fields
        if unknown:
            raise ValueError(f"unknown trace fields: {sorted(unknown)}")
        return cls(**payload)

    FIELDS: typing.ClassVar[tuple[str, ...]] = (
        "op_type",
        "submitted_at",
        "started_at",
        "finished_at",
        "success",
        "control_s",
        "data_s",
        "org",
        "task_id",
        "error",
    )
