"""Trace records: the schema the characterization pipeline consumes.

Generators emit the same records a production management-server log
parser would, so the analysis in :mod:`repro.analysis` is agnostic to
whether its input is synthetic or real.
"""

from repro.traces.filters import by_op_type, by_success, in_window, provisioning_only
from repro.traces.io import read_csv, read_jsonl, write_csv, write_jsonl
from repro.traces.records import TraceRecord

__all__ = [
    "TraceRecord",
    "by_op_type",
    "by_success",
    "in_window",
    "provisioning_only",
    "read_csv",
    "read_jsonl",
    "write_csv",
    "write_jsonl",
]
