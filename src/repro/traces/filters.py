"""Trace filtering helpers used by the analysis pipeline and benches."""

from __future__ import annotations

import typing

from repro.operations.base import OperationType
from repro.traces.records import TraceRecord


def by_op_type(
    records: typing.Iterable[TraceRecord], *op_types: str
) -> list[TraceRecord]:
    wanted = set(op_types)
    return [record for record in records if record.op_type in wanted]


def by_success(
    records: typing.Iterable[TraceRecord], success: bool = True
) -> list[TraceRecord]:
    return [record for record in records if record.success == success]


def in_window(
    records: typing.Iterable[TraceRecord], start: float, end: float
) -> list[TraceRecord]:
    """Records submitted in [start, end)."""
    if end < start:
        raise ValueError("window end before start")
    return [record for record in records if start <= record.submitted_at < end]


def provisioning_only(records: typing.Iterable[TraceRecord]) -> list[TraceRecord]:
    wanted = {op.value for op in OperationType.provisioning()}
    return [record for record in records if record.op_type in wanted]
