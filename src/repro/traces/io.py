"""Trace persistence: CSV and JSONL, round-trip safe."""

from __future__ import annotations

import csv
import json
import pathlib
import typing

from repro.traces.records import TraceRecord

_BOOL = {"True": True, "False": False, "true": True, "false": False}


def write_csv(records: typing.Iterable[TraceRecord], path: str | pathlib.Path) -> int:
    """Write records; returns the count written."""
    count = 0
    with open(path, "w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(TraceRecord.FIELDS))
        writer.writeheader()
        for record in records:
            writer.writerow(record.to_dict())
            count += 1
    return count


def read_csv(path: str | pathlib.Path) -> list[TraceRecord]:
    records = []
    with open(path, newline="") as handle:
        for row in csv.DictReader(handle):
            records.append(
                TraceRecord(
                    op_type=row["op_type"],
                    submitted_at=float(row["submitted_at"]),
                    started_at=float(row["started_at"]),
                    finished_at=float(row["finished_at"]),
                    success=_BOOL.get(row["success"], bool(row["success"])),
                    control_s=float(row["control_s"]),
                    data_s=float(row["data_s"]),
                    org=row["org"],
                    task_id=int(row["task_id"]),
                    error=row["error"],
                )
            )
    return records


def write_jsonl(records: typing.Iterable[TraceRecord], path: str | pathlib.Path) -> int:
    count = 0
    with open(path, "w") as handle:
        for record in records:
            handle.write(json.dumps(record.to_dict()) + "\n")
            count += 1
    return count


def read_jsonl(path: str | pathlib.Path) -> list[TraceRecord]:
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            records.append(TraceRecord.from_dict(json.loads(line)))
    return records
