"""The event log and alarm subsystem: write amplification on the database.

Every management task emits events ("VM powered on", "clone completed",
"task failed"); alarms evaluate rules over the inventory and emit more
events on state changes. Event tables were a notorious scaling problem
for era management servers — cloud churn turns each provisioning wave
into an insert flood. The log buffers and flushes in batches, charging
the shared database.
"""

from __future__ import annotations

import dataclasses
import math
import typing

from repro.sim.kernel import Simulator
from repro.sim.stats import MetricsRegistry
from repro.tracing import NULL_TRACER, PHASE_EVENTLOG
from repro.controlplane.database import DatabaseModel

INFO = "info"
WARNING = "warning"
ALERT = "alert"

_SEVERITIES = (INFO, WARNING, ALERT)


@dataclasses.dataclass(frozen=True)
class ManagementEvent:
    """One event-log entry."""

    time: float
    kind: str
    entity_id: str
    severity: str = INFO
    message: str = ""

    def __post_init__(self) -> None:
        if self.severity not in _SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")


class EventLog:
    """Buffered event sink flushed to the database in batches."""

    def __init__(
        self,
        sim: Simulator,
        database: DatabaseModel,
        flush_interval_s: float = 10.0,
        rows_per_event: float = 1.0,
        max_batch: int = 64,
    ) -> None:
        if flush_interval_s <= 0:
            raise ValueError("flush_interval_s must be positive")
        if rows_per_event <= 0 or max_batch < 1:
            raise ValueError("rows_per_event and max_batch must be positive")
        self.sim = sim
        self.database = database
        self.flush_interval_s = flush_interval_s
        self.rows_per_event = rows_per_event
        self.max_batch = max_batch
        self.metrics = MetricsRegistry(sim, prefix="events")
        # Set by the owning server when tracing is on: flushes get their
        # own root spans (they run outside any task).
        self.tracer = NULL_TRACER
        self.events: list[ManagementEvent] = []
        self._pending: list[ManagementEvent] = []
        self._until: float | None = None
        self._running = False
        self._stopped = False

    def post(
        self,
        kind: str,
        entity_id: str,
        severity: str = INFO,
        message: str = "",
    ) -> ManagementEvent:
        """Append an event (synchronous; the flusher pays the DB cost)."""
        event = ManagementEvent(
            time=self.sim.now,
            kind=kind,
            entity_id=entity_id,
            severity=severity,
            message=message,
        )
        self.events.append(event)
        self._pending.append(event)
        self.metrics.counter("posted").add()
        self.metrics.counter(f"severity.{severity}").add()
        return event

    @property
    def pending(self) -> int:
        return len(self._pending)

    @property
    def active(self) -> bool:
        """True while the log is accepting its flusher's schedule — i.e. it
        has been started and not (explicitly or by its bound) stopped."""
        return self._running and not self._stopped

    def start(self, until: float | None = None) -> None:
        if self._running:
            raise RuntimeError("event flusher already started")
        self._running = True
        self._stopped = False
        self._until = until
        self.sim.spawn(self._flusher(), name="event-flusher")

    def stop(self) -> None:
        """Stop logging now; the flusher drains the backlog then exits.

        After a stop the owning server may enable a fresh log (what-if
        replays toggle logging around the window of interest).
        """
        self._until = self.sim.now
        self._stopped = True

    def flush_once(self) -> typing.Generator[typing.Any, typing.Any, int]:
        """Process-style: write up to ``max_batch`` pending events."""
        if not self._pending:
            return 0
        batch, self._pending = (
            self._pending[: self.max_batch],
            self._pending[self.max_batch :],
        )
        rows = max(1, math.ceil(len(batch) * self.rows_per_event))
        span = self.tracer.start_trace(
            "eventlog.flush", phase=PHASE_EVENTLOG, tags={"events": len(batch)}
        )
        try:
            yield from self.database.write(rows=rows, span=span)
        except BaseException as exc:
            span.finish(error=type(exc).__name__)
            raise
        span.finish()
        self.metrics.counter("flushed").add(len(batch))
        self.metrics.counter("flush_batches").add()
        return len(batch)

    def _flusher(self) -> typing.Generator:
        try:
            while True:
                yield self.sim.timeout(self.flush_interval_s)
                drained = yield from self.flush_once()
                if self._until is not None and self.sim.now >= self._until and not self._pending:
                    return
                # Keep draining big backlogs without waiting a full interval.
                while drained and self._pending:
                    drained = yield from self.flush_once()
        finally:
            self._running = False
            self._stopped = True

    # -- queries ----------------------------------------------------------------

    def by_severity(self, severity: str) -> list[ManagementEvent]:
        return [event for event in self.events if event.severity == severity]

    def by_kind(self, kind: str) -> list[ManagementEvent]:
        return [event for event in self.events if event.kind == kind]


@dataclasses.dataclass(frozen=True)
class AlarmRule:
    """A named predicate over one entity kind."""

    name: str
    entity_kind: str  # "host" | "datastore"
    predicate: typing.Callable[[typing.Any], bool]
    severity: str = WARNING


def datastore_usage_rule(threshold: float = 0.90) -> AlarmRule:
    """Fires when a datastore exceeds ``threshold`` fraction used."""
    return AlarmRule(
        name=f"datastore-usage>{threshold:.0%}",
        entity_kind="datastore",
        predicate=lambda ds: ds.capacity_gb > 0
        and ds.used_gb / ds.capacity_gb > threshold,
        severity=ALERT,
    )


def host_memory_rule(threshold: float = 0.90) -> AlarmRule:
    """Fires when a host's admitted memory exceeds ``threshold`` of limit."""
    return AlarmRule(
        name=f"host-memory>{threshold:.0%}",
        entity_kind="host",
        predicate=lambda host: host.memory_limit_gb > 0
        and host.memory_in_use_gb / host.memory_limit_gb > threshold,
        severity=WARNING,
    )


class AlarmManager:
    """Periodically evaluates rules over the inventory, posting events on
    state transitions (trigger and clear), like the real alarm service."""

    def __init__(
        self,
        server,
        event_log: EventLog,
        rules: typing.Sequence[AlarmRule] = (),
        check_interval_s: float = 60.0,
    ) -> None:
        if check_interval_s <= 0:
            raise ValueError("check_interval_s must be positive")
        self.server = server
        self.event_log = event_log
        self.rules = list(rules) or [datastore_usage_rule(), host_memory_rule()]
        self.check_interval_s = check_interval_s
        self.metrics = MetricsRegistry(server.sim, prefix="alarms")
        self._active: set[tuple[str, str]] = set()  # (rule, entity_id)
        self._until: float | None = None
        self._running = False

    def _entities(self, kind: str) -> list:
        from repro.datacenter.entities import Datastore, Host

        entity_type = {"host": Host, "datastore": Datastore}[kind]
        return sorted(
            self.server.inventory.all(entity_type), key=lambda e: e.entity_id
        )

    @property
    def active(self) -> set[tuple[str, str]]:
        return set(self._active)

    def evaluate_once(self) -> int:
        """Evaluate all rules; post transition events. Returns changes."""
        changes = 0
        for rule in self.rules:
            for entity in self._entities(rule.entity_kind):
                key = (rule.name, entity.entity_id)
                firing = bool(rule.predicate(entity))
                if firing and key not in self._active:
                    self._active.add(key)
                    self.event_log.post(
                        f"alarm.triggered.{rule.name}",
                        entity.entity_id,
                        severity=rule.severity,
                    )
                    self.metrics.counter("triggered").add()
                    changes += 1
                elif not firing and key in self._active:
                    self._active.discard(key)
                    self.event_log.post(
                        f"alarm.cleared.{rule.name}", entity.entity_id, severity=INFO
                    )
                    self.metrics.counter("cleared").add()
                    changes += 1
        return changes

    def start(self, until: float | None = None) -> None:
        if self._running:
            raise RuntimeError("alarm manager already started")
        self._running = True
        self._until = until
        self.server.sim.spawn(self._loop(), name="alarms")

    def _loop(self) -> typing.Generator:
        sim = self.server.sim
        while True:
            yield sim.timeout(self.check_interval_s)
            if self._until is not None and sim.now >= self._until:
                return
            self.evaluate_once()
