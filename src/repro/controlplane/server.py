"""The management server: composition root of the control plane.

One instance = one vCenter-style server managing an inventory of hosts.
Operations are simulated processes that consume the server's four contended
resources:

1. CPU workers (request validation, placement, config generation);
2. the database connection pool;
3. the inventory lock manager;
4. per-host agent slots.

plus the storage data plane (copy scheduler) for byte-moving phases.
"""

from __future__ import annotations

import typing

from repro.datacenter.entities import Datastore, Host
from repro.datacenter.inventory import Inventory
from repro.faults.errors import ServerCrashed, ShardUnavailable
from repro.faults.hooks import FaultHook
from repro.sim.kernel import Process, Simulator
from repro.sim.random import RandomStreams, bounded, lognormal_from_median
from repro.sim.resources import Resource
from repro.sim.stats import MetricsRegistry
from repro.storage.copy_engine import CopyEngine
from repro.storage.scheduler import CopyScheduler
from repro.controlplane.bus import AgentProxy, NULL_BUS
from repro.controlplane.costs import ControlPlaneConfig, ControlPlaneCosts, DEFAULT_COSTS
from repro.controlplane.database import DatabaseModel
from repro.controlplane.host_agent import HostAgent
from repro.controlplane.locks import LockManager
from repro.controlplane.recovery import NULL_JOURNAL, RecoveryManager
from repro.controlplane.resilience import (
    BREAKER_STATE_VALUE,
    CircuitBreaker,
    RetryBudget,
)
from repro.controlplane.task_manager import Task, TaskManager
from repro.telemetry.metrics import NULL_TELEMETRY
from repro.tracing import NULL_SPAN, NULL_TRACER, PHASE_CPU, PHASE_QUEUE

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.operations.base import Operation


class ManagementServer:
    """A vCenter-style management server over a private inventory."""

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        costs: ControlPlaneCosts = DEFAULT_COSTS,
        config: ControlPlaneConfig | None = None,
        name: str = "vc-1",
        storage_capacity_bps: float | None = None,
        tracer=None,
        telemetry=None,
        journal=None,
        bus=None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.costs = costs
        self.config = config or ControlPlaneConfig()
        self.streams = streams
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self.metrics = MetricsRegistry(sim, prefix=name)
        self.inventory = Inventory()

        self.database = DatabaseModel(
            sim,
            costs,
            connections=self.config.db_connections,
            rng=streams.stream(f"{name}:db"),
            batching=self.config.db_batching,
            metrics=MetricsRegistry(sim, prefix=f"{name}.db"),
        )
        self.locks = LockManager(
            sim,
            granularity=self.config.lock_granularity,
            metrics=MetricsRegistry(sim, prefix=f"{name}.locks"),
        )
        self.retry_budget = (
            RetryBudget(ratio=self.config.retry_budget_ratio)
            if self.config.retry_budget_ratio is not None
            else None
        )
        self.tasks = TaskManager(
            sim,
            self.database,
            max_inflight=self.config.max_inflight_tasks,
            per_type_limits=self.config.per_type_limits,
            metrics=MetricsRegistry(sim, prefix=f"{name}.tasks"),
            retry_policy=self.config.retry_policy,
            retry_budget=self.retry_budget,
            task_deadline_s=self.config.task_deadline_s,
            rng=streams.stream(f"{name}:retry"),
            tracer=self.tracer,
            telemetry=self.telemetry,
        )
        self.cpu = Resource(sim, capacity=self.config.cpu_workers, name=f"{name}-cpu")
        self._cpu_rng = streams.stream(f"{name}:cpu")
        self._cpu_busy = 0.0

        engine_kwargs = {}
        if storage_capacity_bps is not None:
            engine_kwargs["default_capacity_bps"] = storage_capacity_bps
        self.copy_engine = CopyEngine(
            sim,
            metrics=MetricsRegistry(sim, prefix=f"{name}.copy"),
            rng=streams.stream(f"{name}:copy-faults"),
            **engine_kwargs,
        )
        self.copy_scheduler = CopyScheduler(
            sim,
            self.copy_engine,
            slots_per_datastore=self.config.copy_slots_per_datastore,
            metrics=MetricsRegistry(sim, prefix=f"{name}.copysched"),
        )
        self._agents: dict[str, HostAgent] = {}
        # Whole-server outage hook (shard crashes): submissions fail while
        # blocked. Armed by repro.faults.ShardCrash windows.
        self.faults = FaultHook(sim, name=name, error_factory=ShardUnavailable)
        self.event_log = None
        self.started_at = sim.now
        # Crash recovery: the write-ahead task journal (NULL_JOURNAL = off)
        # and the restart reconciler. ServerCrash windows call crash() /
        # restart(); in-flight task processes are interrupted on crash and
        # park in the recovery manager until the journal replays.
        self.journal = journal if journal is not None else NULL_JOURNAL
        self.recovery = RecoveryManager(self)
        self.tasks.journal = self.journal
        self.tasks.recovery = self.recovery
        self._crash_tokens: set = set()
        self._inflight: set[Process] = set()
        # Read-only observers of crash onset, called as listener(server, now)
        # on the first active token only (the incident recorder snapshots
        # here). Listeners must not mutate simulation state.
        self.crash_listeners: list = []
        # Message bus (NULL_BUS = off). A mediated bus carries the
        # submit and host-agent hops through topics: the submission
        # consumer starts here, per-host consumers start in adopt_host,
        # and bus-level dead letters land in the task manager's
        # deduplicated sink. A direct_calls bus is inert: no consumers,
        # no topics, schedules byte-identical to a bus-free run.
        self.bus = bus if bus is not None else NULL_BUS
        self._agent_proxies: dict[str, AgentProxy] = {}
        self._submit_seq = 0
        if self.bus.mediated:
            self.bus.dead_letter_sink = self.tasks.record_message_dead_letter
            self._submit_topic = self.bus.subscribe(f"tasks.submit:{name}")
            self.sim.spawn(self._serve_submissions(), name=f"{name}:bus-submit-consumer")
        self._register_telemetry()

    def _register_telemetry(self) -> None:
        """Expose every child registry and resource to the scraper.

        Registries are *watched* (the scraper reads them; nothing in the
        hot path changes) and instantaneous resource levels are exposed as
        read-only probes — both no-ops on :data:`NULL_TELEMETRY`.
        """
        telemetry = self.telemetry
        telemetry.watch_registry(self.database.metrics, component="db")
        telemetry.watch_registry(self.tasks.metrics, component="tasks")
        telemetry.watch_registry(self.locks.metrics, component="locks")
        telemetry.watch_registry(self.copy_engine.metrics, component="copy")
        telemetry.watch_registry(self.copy_scheduler.metrics, component="copysched")
        telemetry.probe(
            "cpu_utilization", lambda: self.cpu.in_use / self.cpu.capacity
        )
        telemetry.probe("db_pool_in_use", lambda: float(self.database.pool.in_use))
        telemetry.probe(
            "db_utilization",
            lambda: self.database.pool.in_use / self.database.pool.capacity,
        )
        telemetry.probe("db_pool_queue", lambda: float(self.database.queue_depth))
        telemetry.probe("tasks_queue_depth", lambda: float(self.tasks.queue_depth))
        if self.retry_budget is not None:
            telemetry.probe(
                "retry_budget_tokens", lambda: float(self.retry_budget.tokens)
            )
        telemetry.probe("server_crashed", lambda: 1.0 if self.crashed else 0.0)
        telemetry.probe(
            "server_blocked", lambda: 1.0 if self.faults.blocked() else 0.0
        )
        telemetry.probe(
            "recovery_parked", lambda: float(self.recovery.parked_count)
        )

    def enable_event_logging(
        self,
        flush_interval_s: float = 10.0,
        rows_per_event: float = 1.0,
        until: float | None = None,
    ):
        """Attach an event log; task completions start posting to it.

        Returns the :class:`~repro.controlplane.eventlog.EventLog`. The
        flusher is started immediately (bounded by ``until`` if given).
        """
        from repro.controlplane.eventlog import EventLog

        if self.event_log is not None and self.event_log.active:
            raise RuntimeError("event logging already enabled")
        self.event_log = EventLog(
            self.sim,
            self.database,
            flush_interval_s=flush_interval_s,
            rows_per_event=rows_per_event,
        )
        self.tasks.event_log = self.event_log
        self.event_log.tracer = self.tracer
        self.event_log.start(until=until)
        return self.event_log

    # -- host management -----------------------------------------------------

    def adopt_host(self, host: Host) -> HostAgent:
        """Register an (already-inventoried) host's agent channel."""
        if host.entity_id in self._agents:
            raise ValueError(f"host {host.name!r} already adopted by {self.name}")
        agent = HostAgent(
            self.sim,
            host,
            self.costs,
            rng=self.streams.stream(f"{self.name}:hostd:{host.entity_id}"),
            op_slots=self.config.per_host_op_slots,
            metrics=MetricsRegistry(self.sim, prefix=f"{self.name}.hostd.{host.entity_id}"),
        )
        if self.config.breaker is not None:
            agent.breaker = CircuitBreaker(
                self.sim,
                self.config.breaker,
                name=host.name,
                metrics=agent.metrics,
            )
        self._agents[host.entity_id] = agent
        self.telemetry.watch_registry(agent.metrics, host=host.name)
        self.telemetry.probe(
            "hostd_utilization",
            lambda a=agent: a.slots.in_use / a.slots.capacity,
            host=host.name,
        )
        self.telemetry.probe(
            "hostd_breaker_state",
            lambda a=agent: float(BREAKER_STATE_VALUE[a.breaker.state])
            if a.breaker is not None
            else 0.0,
            host=host.name,
        )
        self.telemetry.probe(
            "host_up",
            lambda h=host: 1.0 if h.is_usable else 0.0,
            host=host.name,
        )
        if self.bus.mediated:
            topic = self.bus.subscribe(f"agent.{host.entity_id}")
            proxy = AgentProxy(self.bus, agent, topic.name)
            self._agent_proxies[host.entity_id] = proxy
            self.sim.spawn(
                self._serve_agent(agent, topic),
                name=f"{self.name}:bus-agent-consumer:{host.entity_id}",
            )
            return proxy
        return agent

    def agent(self, host: Host) -> HostAgent:
        """The host's agent channel — the bus proxy when mediated.

        The proxy delegates everything but ``call`` to the real agent, so
        fault hooks, breakers, and probes behave identically either way.
        """
        try:
            agent = self._agents[host.entity_id]
        except KeyError:
            raise KeyError(f"host {host.name!r} not managed by {self.name}") from None
        proxy = self._agent_proxies.get(host.entity_id)
        return proxy if proxy is not None else agent

    @property
    def hosts(self) -> list[Host]:
        return [agent.host for agent in self._agents.values()]

    @property
    def agents(self) -> list[HostAgent]:
        return list(self._agents.values())

    # -- CPU model -------------------------------------------------------------

    def cpu_work(
        self, median_s: float, span=NULL_SPAN, work_phase: str = PHASE_CPU
    ) -> typing.Generator[typing.Any, typing.Any, float]:
        """Process-style: occupy one CPU worker for a drawn service time.

        When traced, the pool wait gets a ``queue``-phase span and the
        service itself a ``work_phase`` span — callers whose CPU phase is
        semantically distinct (placement scoring) pass their own phase so
        attribution keeps the distinction.
        """
        start = self.sim.now
        request = self.cpu.request()
        wait_span = span.child("cpu.wait", phase=PHASE_QUEUE, tags={"wait": True})
        yield request
        wait_span.finish()
        service = bounded(
            lognormal_from_median(self._cpu_rng, median_s, self.costs.sigma),
            median_s * 0.25,
            median_s * 10.0,
        )
        work_span = span.child("cpu.work", phase=work_phase)
        try:
            yield self.sim.timeout(service)
        finally:
            self.cpu.release(request)
            work_span.finish()
        self._cpu_busy += service
        return self.sim.now - start

    def cpu_utilization(self, since: float = 0.0) -> float:
        span = self.sim.now - since
        if span <= 0:
            return 0.0
        return min(1.0, self._cpu_busy / (span * self.cpu.capacity))

    # -- crash / restart -----------------------------------------------------

    @property
    def crashed(self) -> bool:
        """True while at least one :class:`ServerCrash` window holds us down."""
        return bool(self._crash_tokens)

    @property
    def inflight_tasks(self) -> int:
        """Live task lifecycles — the crash-interruptible process count."""
        return len(self._inflight)

    def crash(self, token: typing.Hashable) -> None:
        """Take the server down (fault-window arm).

        The first active token interrupts every in-flight task process with
        :class:`ServerCrashed` — generators unwind, releasing CPU workers,
        DB connections, and agent slots, and the task manager parks each
        task in the recovery manager. New submissions are rejected until
        :meth:`restart`. Overlapping windows nest: the server is up again
        only when the last token is released.
        """
        first = not self._crash_tokens
        self._crash_tokens.add(token)
        if not first:
            return
        victims = [p for p in self._inflight if p.is_alive]
        self.metrics.counter("crashes").add()
        self.recovery.on_crash(interrupted=len(victims))
        for listener in self.crash_listeners:
            listener(self, self.sim.now)
        for process in victims:
            process.interrupt(ServerCrashed(f"{self.name} crashed"))

    def restart(self, token: typing.Hashable) -> None:
        """Bring the server back up (fault-window disarm).

        When the last crash token clears, the recovery manager replays the
        journal and reconciles every parked task.
        """
        self._crash_tokens.discard(token)
        if not self._crash_tokens:
            self.recovery.on_restart()

    # -- operation submission ------------------------------------------------------

    def submit(
        self, operation: "Operation", priority: float = 5.0, span=NULL_SPAN
    ) -> Process:
        """Run an operation as a task; returns an event carrying it.

        Direct mode returns the lifecycle process itself. Mediated mode
        publishes the submission onto the bus and returns the reply event
        the submission consumer settles — same contract for callers: the
        event's value is the completed :class:`Task`, an operation failure
        fails it with the underlying exception. A caller with its own span
        (the cloud director's per-VM span) passes it so the task's span
        tree joins the request trace.
        """
        if not self.bus.mediated:
            return self._spawn_lifecycle(operation, priority, span)
        self._submit_seq += 1
        key = f"submit:{self.name}:{self._submit_seq}"
        reply = self.sim.event(name=f"bus-reply:{key}")
        self.sim.spawn(
            self.bus.publish(
                self._submit_topic.name,
                (operation, priority, span),
                key=key,
                reply=reply,
                span=span,
            ),
            name=f"{self.name}:bus-publish:{operation.op_type.value}",
        )
        return reply

    def _spawn_lifecycle(
        self, operation: "Operation", priority: float, span
    ) -> Process:
        """Spawn the task lifecycle process and track it for crash windows."""

        def lifecycle() -> typing.Generator[typing.Any, typing.Any, Task]:
            # A crashed server or shard rejects the submission outright — no
            # task row, no dispatch slot, just a failed process. ServerCrashed
            # is transient: the caller may resubmit after the restart.
            if self.crashed:
                raise ServerCrashed(f"{self.name} is down")
            self.faults.fire()
            holder: dict[str, Task] = {}

            def body(task: Task) -> typing.Generator:
                holder["task"] = task
                yield from operation.run(self, task)

            yield from self.tasks.run_task(
                operation.op_type.value,
                body,
                priority=priority,
                parent_span=span,
                operation=operation,
            )
            return holder["task"]

        process = self.sim.spawn(
            lifecycle(), name=f"{self.name}:{operation.op_type.value}"
        )
        # Track the lifecycle so a ServerCrash window can interrupt it;
        # drop the reference as soon as the process finishes.
        self._inflight.add(process)
        process.callbacks.append(lambda _event: self._inflight.discard(process))
        return process

    def execute(self, operation: "Operation", priority: float = 5.0) -> Process:
        """Alias of :meth:`submit` (reads better at call sites that wait)."""
        return self.submit(operation, priority=priority)

    # -- bus consumers -------------------------------------------------------

    def _serve_submissions(self) -> typing.Generator:
        """Mediated mode: drain the submission topic into task lifecycles.

        The consumer itself is infrastructure — it survives crashes (the
        lifecycle it spawns rejects work while the server is down, exactly
        like a direct-mode submit). ``accept`` suppresses duplicate
        copies, so a redelivered submission never runs a second lifecycle.
        """
        topic = self._submit_topic
        while True:
            message = yield topic.get()
            if not self.bus.accept(message):
                continue
            operation, priority, span = message.payload
            process = self._spawn_lifecycle(operation, priority, span)
            self.bus.bridge(process, message)

    def _serve_agent(self, agent: HostAgent, topic) -> typing.Generator:
        """Mediated mode: drain one host's agent topic into hostd calls.

        Handlers join ``_inflight`` so a crash window interrupts them like
        any in-flight work — the slot is released on unwind and the reply
        fails, which the waiting task sees as its own crash interrupt.
        """
        while True:
            message = yield topic.get()
            if not self.bus.accept(message):
                continue
            kind, median_s, span = message.payload
            handler = self.sim.spawn(
                self._agent_call(agent, kind, median_s, span),
                name=f"{self.name}:hostd-handler:{agent.host.entity_id}",
            )
            self._inflight.add(handler)
            handler.callbacks.append(
                lambda _event, h=handler: self._inflight.discard(h)
            )
            self.bus.bridge(handler, message)

    def _agent_call(
        self, agent: HostAgent, kind: str, median_s: float, span
    ) -> typing.Generator:
        if self.crashed:
            raise ServerCrashed(f"{self.name} is down")
        result = yield from agent.call(kind, median_s, span=span)
        return result

    # -- reporting ------------------------------------------------------------------

    def utilization_snapshot(self, since: float = 0.0) -> dict[str, float]:
        """Utilization of each contended resource over [since, now]."""
        agents = self.agents
        hostd = (
            sum(agent.utilization(since) for agent in agents) / len(agents)
            if agents
            else 0.0
        )
        return {
            "cpu": self.cpu_utilization(since),
            "db": self.database.utilization(since),
            "hostd_mean": hostd,
            "lock_wait_mean_s": self.locks.contention(),
            "task_queue_mean": self.tasks.metrics.gauge("queue_depth").time_average(since),
        }

    def bottleneck(self, since: float = 0.0) -> str:
        """Name of the most-utilized control-plane resource."""
        snapshot = self.utilization_snapshot(since)
        candidates = {k: snapshot[k] for k in ("cpu", "db", "hostd_mean")}
        return max(candidates, key=candidates.get)

    def datastores(self) -> list[Datastore]:
        return self.inventory.all(Datastore)
