"""Crash recovery: the durable task journal and the restart reconciler.

The management server is itself a single point of failure; this module
makes its crash a *modeled* fault rather than an impossibility. Three
pieces:

- :class:`TaskJournal` — a write-ahead journal of task lifecycle records
  (admit / per-attempt dispatch / terminal), layered on the rows the task
  manager already writes through :class:`~repro.controlplane.database
  .DatabaseModel`: the admit record becomes durable with the task-row
  insert, dispatch records ride the same WAL, and the terminal record
  rides the completion row. Journal appends are therefore synchronous
  in-memory bookkeeping — they charge **no additional simulated time**,
  so a journal-on run is schedule-identical to a journal-off run (the
  differential test in ``tests/controlplane/test_journal_neutrality.py``
  holds this to byte identity). :data:`NULL_JOURNAL` is the zero-cost
  off switch, mirroring ``NULL_TRACER`` / ``NULL_TELEMETRY``.

- :class:`RecoveryManager` — parks task processes that a
  :class:`~repro.faults.schedule.ServerCrash` window interrupts, and on
  restart replays the journal (a database read sized to the journal) and
  reconciles each parked task against host/inventory ground truth:
  *adopt* orphaned completed work, *roll back* half-done placements,
  *re-issue* idempotent attempts, *requeue* tasks that never dispatched.
  A journal terminal record always wins over reconciliation — replay
  never re-issues (or re-dead-letters) a task that already reached a
  terminal state.

- the **exactly-once invariant** (checked by ``repro.faults.chaos``):
  every admitted task ends in exactly one terminal state — succeeded or
  failed (dead-lettered when the retry machinery owned it) — with no
  duplicate terminal records, no duplicate dead letters, and no
  duplicate placed VMs from re-issued attempts.
"""

from __future__ import annotations

import dataclasses
import typing

from repro.faults.errors import ServerCrashed
from repro.sim.kernel import Event, Interrupt
from repro.telemetry.metrics import NULL_TELEMETRY
from repro.tracing import NULL_TRACER, PHASE_RECOVERY

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.controlplane.server import ManagementServer
    from repro.controlplane.task_manager import Task

# Reconciliation verdicts handed back to a parked task process.
VERDICT_ADOPT = "adopt"          # ground truth says the work completed
VERDICT_REISSUE = "reissue"      # re-run the attempt (idempotency key fresh)
VERDICT_REQUEUE = "requeue"      # never dispatched: re-acquire slots
VERDICT_FAILED = "failed"        # journal terminal record says error

# Probe outcomes from an operation's ground-truth inspection.
PROBE_COMPLETE = "complete"
PROBE_PARTIAL = "partial"
PROBE_ABSENT = "absent"


def crash_cause(error: BaseException) -> ServerCrashed | None:
    """The :class:`ServerCrashed` behind ``error``, if it is one.

    Crash interrupts arrive as :class:`~repro.sim.kernel.Interrupt` with a
    ``ServerCrashed`` cause; resources unwound mid-crash may re-raise the
    cause bare. Anything else is not a crash.
    """
    if isinstance(error, Interrupt) and isinstance(error.cause, ServerCrashed):
        return error.cause
    if isinstance(error, ServerCrashed):
        return error
    return None


# --------------------------------------------------------------------------
# The task journal.
# --------------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class JournalRecord:
    """One write-ahead journal entry.

    ``kind`` is ``admit`` / ``dispatch`` / ``terminal``. Dispatch records
    carry the attempt number and an idempotency key
    (``task-<id>:attempt-<n>``) so replay can tell a re-issued attempt
    from a duplicate. Terminal records carry the final state
    (``success`` / ``error``), the error string, and whether a dead
    letter was recorded.
    """

    kind: str
    task_id: int
    op_type: str
    at: float
    attempt: int = 0
    idempotency_key: str = ""
    state: str = ""
    error: str = ""
    dead_letter: bool = False


class TaskJournal:
    """Write-ahead task journal; records piggyback on existing DB writes.

    Appends are plain list/dict updates — no simulated time, no events —
    because each record's durability point is a row the task manager
    already writes (admit insert, completion row); see the module
    docstring. ``enabled`` mirrors the tracer/telemetry pattern so hot
    paths can skip formatting work when off.
    """

    enabled: typing.ClassVar[bool] = True

    def __init__(self) -> None:
        self.records: list[JournalRecord] = []
        self._admits: dict[int, JournalRecord] = {}
        self._dispatches: dict[int, list[JournalRecord]] = {}
        self._terminals: dict[int, JournalRecord] = {}

    # -- appends (write-ahead points) --------------------------------------

    def record_admit(self, task: "Task") -> None:
        """Journal a task admission (rides the task-row insert)."""
        record = JournalRecord(
            kind="admit",
            task_id=task.task_id,
            op_type=task.op_type,
            at=task.submitted_at,
        )
        self.records.append(record)
        self._admits[task.task_id] = record

    def record_dispatch(self, task: "Task", attempt: int) -> None:
        """Journal the start of one attempt, with its idempotency key."""
        record = JournalRecord(
            kind="dispatch",
            task_id=task.task_id,
            op_type=task.op_type,
            at=task.started_at if task.started_at is not None else task.submitted_at,
            attempt=attempt,
            idempotency_key=f"task-{task.task_id}:attempt-{attempt}",
        )
        self.records.append(record)
        self._dispatches.setdefault(task.task_id, []).append(record)

    def record_terminal(self, task: "Task", dead_letter: bool = False) -> None:
        """Journal the terminal state (rides the completion row).

        Idempotent: the first terminal record wins — replay and late
        finalization paths may both reach this point for one task.
        """
        if task.task_id in self._terminals:
            return
        from repro.controlplane.task_manager import TaskState

        record = JournalRecord(
            kind="terminal",
            task_id=task.task_id,
            op_type=task.op_type,
            at=task.finished_at if task.finished_at is not None else task.submitted_at,
            attempt=task.attempts,
            state="success" if task.state is TaskState.SUCCESS else "error",
            error=task.error or "",
            dead_letter=dead_letter,
        )
        self.records.append(record)
        self._terminals[task.task_id] = record

    # -- queries -----------------------------------------------------------

    def admitted(self, task_id: int) -> bool:
        return task_id in self._admits

    def terminal_record(self, task_id: int) -> JournalRecord | None:
        return self._terminals.get(task_id)

    def dispatches(self, task_id: int) -> list[JournalRecord]:
        return list(self._dispatches.get(task_id, ()))

    def open_task_ids(self) -> list[int]:
        """Admitted tasks with no terminal record — replay's worklist."""
        return [tid for tid in self._admits if tid not in self._terminals]

    def terminal_counts(self) -> dict[int, int]:
        """Terminal records per task id (the exactly-once check input).

        The index keeps one terminal per task by construction; this
        recounts from the raw record list so the invariant check cannot
        be fooled by the index itself.
        """
        counts: dict[int, int] = {}
        for record in self.records:
            if record.kind == "terminal":
                counts[record.task_id] = counts.get(record.task_id, 0) + 1
        return counts

    def __len__(self) -> int:
        return len(self.records)


class NullJournal:
    """Journal disabled: every append is a no-op, every query is empty."""

    enabled: typing.ClassVar[bool] = False
    records: list[JournalRecord] = []

    def record_admit(self, task: "Task") -> None:
        pass

    def record_dispatch(self, task: "Task", attempt: int) -> None:
        pass

    def record_terminal(self, task: "Task", dead_letter: bool = False) -> None:
        pass

    def admitted(self, task_id: int) -> bool:
        return False

    def terminal_record(self, task_id: int) -> None:
        return None

    def dispatches(self, task_id: int) -> list[JournalRecord]:
        return []

    def open_task_ids(self) -> list[int]:
        return []

    def terminal_counts(self) -> dict[int, int]:
        return {}

    def __len__(self) -> int:
        return 0


NULL_JOURNAL = NullJournal()


# --------------------------------------------------------------------------
# The recovery manager.
# --------------------------------------------------------------------------


@dataclasses.dataclass
class CrashEpoch:
    """Bookkeeping for one crash → restart → reconciliation cycle."""

    crashed_at: float
    restarted_at: float | None = None
    recovered_at: float | None = None
    interrupted: int = 0
    replayed_records: int = 0
    parked: int = 0
    adopted: int = 0
    rolled_back: int = 0
    reissued: int = 0
    requeued: int = 0
    from_journal: int = 0

    @property
    def downtime_s(self) -> float:
        if self.restarted_at is None:
            return 0.0
        return self.restarted_at - self.crashed_at

    @property
    def replay_s(self) -> float:
        if self.restarted_at is None or self.recovered_at is None:
            return 0.0
        return self.recovered_at - self.restarted_at


class _ParkedTask:
    """One task process waiting out a crash window."""

    __slots__ = ("task", "stage", "event")

    def __init__(self, task: "Task", stage: str, event: Event) -> None:
        self.task = task
        self.stage = stage
        self.event = event


class RecoveryManager:
    """Replays the journal on restart and reconciles parked tasks.

    Owned by every :class:`ManagementServer` (construction is passive —
    no processes, no events — so a server that never crashes pays
    nothing). The server calls :meth:`on_crash` / :meth:`on_restart`;
    interrupted task processes call :meth:`park` and resume with a
    reconciliation verdict once replay completes.
    """

    def __init__(self, server: "ManagementServer") -> None:
        self.server = server
        self.sim = server.sim
        self.tracer = server.tracer if server.tracer is not None else NULL_TRACER
        self.crashes: list[CrashEpoch] = []
        self._parked: list[_ParkedTask] = []
        self._recover_proc = None
        telemetry = server.telemetry if server.telemetry is not None else NULL_TELEMETRY
        self._t_crashes = telemetry.counter("recovery_crashes_total")
        self._t_parked = telemetry.counter("recovery_parked_total")
        self._t_adopted = telemetry.counter("recovery_adopted_total")
        self._t_reissued = telemetry.counter("recovery_reissued_total")
        self._t_rolled_back = telemetry.counter("recovery_rolled_back_total")
        self._t_requeued = telemetry.counter("recovery_requeued_total")
        self._t_replayed = telemetry.counter("recovery_replayed_records_total")

    # -- introspection -----------------------------------------------------

    @property
    def journal(self):
        return self.server.journal

    @property
    def parked_count(self) -> int:
        return len(self._parked)

    @property
    def last_crash(self) -> CrashEpoch | None:
        return self.crashes[-1] if self.crashes else None

    def verdict_totals(self) -> dict[str, int]:
        totals = {"adopted": 0, "rolled_back": 0, "reissued": 0, "requeued": 0}
        for epoch in self.crashes:
            totals["adopted"] += epoch.adopted
            totals["rolled_back"] += epoch.rolled_back
            totals["reissued"] += epoch.reissued
            totals["requeued"] += epoch.requeued
        return totals

    # -- crash / restart hooks (called by ManagementServer) ----------------

    def on_crash(self, interrupted: int) -> CrashEpoch:
        epoch = CrashEpoch(crashed_at=self.sim.now, interrupted=interrupted)
        self.crashes.append(epoch)
        self._t_crashes.add()
        return epoch

    def on_restart(self) -> None:
        """Spawn the reconciliation process for the just-ended downtime."""
        if self.crashes:
            self.crashes[-1].restarted_at = self.sim.now
        if self._recover_proc is not None and self._recover_proc.is_alive:
            return
        self._recover_proc = self.sim.spawn(
            self._recover(), name=f"{self.server.name}:recovery"
        )

    # -- parking (called by TaskManager) -----------------------------------

    def park(self, task: "Task", stage: str) -> typing.Generator[typing.Any, typing.Any, str]:
        """Process-style: wait for the next replay, return its verdict.

        A further crash while parked re-parks for the following restart
        (the interrupt detaches the process from the stale event).
        """
        while True:
            slot = _ParkedTask(
                task, stage, Event(self.sim, name=f"recover:task-{task.task_id}")
            )
            self._parked.append(slot)
            if self.crashes:
                self.crashes[-1].parked += 1
            self._t_parked.add()
            task.span.annotate("parked", stage)
            try:
                verdict = yield slot.event
            except Interrupt as interrupt:
                if crash_cause(interrupt) is None:
                    raise
                if slot in self._parked:
                    self._parked.remove(slot)
                continue
            return verdict

    # -- reconciliation ----------------------------------------------------

    def _recover(self) -> typing.Generator:
        """Replay the journal, then adjudicate every parked task."""
        epoch = self.crashes[-1] if self.crashes else CrashEpoch(crashed_at=self.sim.now)
        span = self.tracer.start_span(
            f"{self.server.name}.recovery",
            phase=PHASE_RECOVERY,
            tags={"parked": len(self._parked)},
        )
        # Journal replay: one scan over the WAL-resident records.
        replay_rows = max(1, len(self.journal))
        epoch.replayed_records = len(self.journal)
        self._t_replayed.add(len(self.journal))
        try:
            yield from self.server.database.read(rows=replay_rows, span=span)
        except Exception:
            # A concurrently-armed DB fault must not strand parked tasks;
            # reconcile from the in-memory journal regardless.
            self.server.metrics.counter("recovery_replay_failures").add()
        while self._parked:
            if self.server.crashed:
                # Crashed again mid-reconciliation: the rest of the parked
                # set belongs to the next restart's replay.
                break
            slot = self._parked.pop(0)
            verdict = self.adjudicate(slot.task, slot.stage, epoch, span)
            # Each reconciliation decision is itself a state write (task row
            # update / orphan cleanup) — charge the database for it.
            try:
                yield from self.server.database.write(rows=1, span=span)
            except Exception:
                self.server.metrics.counter("recovery_replay_failures").add()
            slot.event.succeed(value=verdict)
        epoch.recovered_at = self.sim.now
        span.annotate("adopted", epoch.adopted)
        span.annotate("reissued", epoch.reissued)
        span.annotate("requeued", epoch.requeued)
        span.finish()

    def adjudicate(self, task: "Task", stage: str, epoch: CrashEpoch, span) -> str:
        """One task's verdict: journal terminal record first, then probe.

        The journal terminal record *wins* over any reconciliation — a
        task that reached a terminal state during the crash window is
        never re-issued and never dead-lettered a second time.
        """
        record = self.journal.terminal_record(task.task_id)
        if record is not None:
            epoch.from_journal += 1
            if record.state == "success":
                epoch.adopted += 1
                self._t_adopted.add()
                return VERDICT_ADOPT
            return VERDICT_FAILED
        if stage == "dispatch":
            epoch.requeued += 1
            self._t_requeued.add()
            return VERDICT_REQUEUE
        operation = task.operation
        probe = PROBE_ABSENT
        if operation is not None:
            probe = operation.recovery_probe(self.server, task)
        child = span.child(
            f"reconcile.task-{task.task_id}",
            phase=PHASE_RECOVERY,
            tags={"probe": probe, "stage": stage},
        )
        if probe == PROBE_COMPLETE:
            operation.recovery_adopt(self.server, task)
            epoch.adopted += 1
            self._t_adopted.add()
            child.finish()
            return VERDICT_ADOPT
        if probe == PROBE_PARTIAL:
            operation.recovery_rollback(self.server, task)
            epoch.rolled_back += 1
            self._t_rolled_back.add()
        epoch.reissued += 1
        self._t_reissued.add()
        child.finish()
        return VERDICT_REISSUE
