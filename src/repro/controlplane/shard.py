"""Scale-out: partition the infrastructure across management-server shards.

The paper's design implication: if the control plane is the provisioning
bottleneck, shard it. Each shard is a full :class:`ManagementServer`
owning a disjoint host/datastore subset; the router places operations on
the shard owning the target entities. R-F9 sweeps the shard count.
"""

from __future__ import annotations

import itertools
import typing

from repro.datacenter.entities import Host
from repro.sim.kernel import Process, Simulator
from repro.sim.random import RandomStreams
from repro.controlplane.costs import ControlPlaneConfig, ControlPlaneCosts, DEFAULT_COSTS
from repro.controlplane.recovery import TaskJournal
from repro.controlplane.server import ManagementServer

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.operations.base import Operation


class ShardedControlPlane:
    """N management servers behind a placement router."""

    def __init__(
        self,
        sim: Simulator,
        streams: RandomStreams,
        shard_count: int,
        costs: ControlPlaneCosts = DEFAULT_COSTS,
        config: ControlPlaneConfig | None = None,
        journal: bool = False,
    ) -> None:
        if shard_count < 1:
            raise ValueError("shard_count must be >= 1")
        self.sim = sim
        self.shards = [
            ManagementServer(
                sim,
                streams.spawn(f"shard-{index}"),
                costs=costs,
                config=config,
                name=f"vc-{index + 1}",
                journal=TaskJournal() if journal else None,
            )
            for index in range(shard_count)
        ]
        self._round_robin = itertools.cycle(range(shard_count))
        self._host_to_shard: dict[str, ManagementServer] = {}

    def adopt_host(self, host: Host) -> ManagementServer:
        """Assign a host to the next shard round-robin."""
        shard = self.shards[next(self._round_robin)]
        shard.inventory.register(host)
        shard.adopt_host(host)
        self._host_to_shard[host.entity_id] = shard
        return shard

    def register_routing(self, host: Host, shard: ManagementServer) -> None:
        """Record shard ownership for a host adopted directly on ``shard``.

        For callers (like the federation layer) that build shard-local
        infrastructure themselves and only need the router to know about it.
        """
        if shard not in self.shards:
            raise ValueError(f"{shard.name!r} is not a shard of this plane")
        if host.entity_id in self._host_to_shard:
            raise ValueError(f"host {host.name!r} already routed")
        self._host_to_shard[host.entity_id] = shard

    def shard_for_host(self, host: Host) -> ManagementServer:
        try:
            return self._host_to_shard[host.entity_id]
        except KeyError:
            raise KeyError(f"host {host.name!r} not adopted by any shard") from None

    def submit_on(self, host: Host, operation: "Operation", priority: float = 5.0) -> Process:
        """Route an operation to the shard owning ``host``."""
        return self.shard_for_host(host).submit(operation, priority=priority)

    # -- shard health and load ----------------------------------------------

    @staticmethod
    def is_down(shard: ManagementServer) -> bool:
        """True while ``shard`` is inside a crash or unavailability window.

        Covers both fault shapes: a ``server_crash`` (the process is gone,
        ``shard.crashed``) and a ``shard_crash`` (the endpoint rejects
        submissions, ``shard.faults.blocked()``).
        """
        return shard.crashed or shard.faults.blocked()

    @staticmethod
    def load_of(shard: ManagementServer) -> int:
        """Queued plus in-flight task lifecycles — the routing load signal."""
        return shard.tasks.queue_depth + shard.inflight_tasks

    def healthy_shards(self) -> list[ManagementServer]:
        return [shard for shard in self.shards if not self.is_down(shard)]

    # -- aggregated reporting ------------------------------------------------

    def completed_tasks(self) -> int:
        return sum(len(shard.tasks.succeeded()) for shard in self.shards)

    def dead_letters(self) -> int:
        """Aggregate permanently failed (dead-lettered) tasks."""
        return sum(len(shard.tasks.dead_letters) for shard in self.shards)

    def unaccounted_tasks(self) -> int:
        """Tasks on any shard that never reached a terminal state."""
        return sum(len(shard.tasks.unaccounted()) for shard in self.shards)

    def throughput(self, since: float = 0.0) -> float:
        """Aggregate successful tasks per second over [since, now]."""
        span = self.sim.now - since
        if span <= 0:
            return 0.0
        done = sum(
            1
            for shard in self.shards
            for task in shard.tasks.succeeded()
            if task.finished_at is not None and task.finished_at >= since
        )
        return done / span

    def utilization_snapshot(self, since: float = 0.0) -> dict[str, float]:
        """Mean per-resource utilization across shards."""
        snapshots = [shard.utilization_snapshot(since) for shard in self.shards]
        keys = snapshots[0].keys()
        return {
            key: sum(snapshot[key] for snapshot in snapshots) / len(snapshots)
            for key in keys
        }
