"""The host agent (hostd) channel: per-host operation slots and call timing.

Each hypervisor host runs a management agent with a bounded number of
in-flight management operations (~8 in the vSphere era). Management-server
operations fan calls out to these agents; a disconnected or wedged agent
surfaces as a call timeout.

Fault injection enters through ``self.faults`` (a
:class:`~repro.faults.hooks.FaultHook`): one-shot errors, probabilistic
drops, and latency multipliers. An optional per-agent
:class:`~repro.controlplane.resilience.CircuitBreaker` makes repeated
failures fail fast instead of burning the full call timeout each try.
"""

from __future__ import annotations

import random
import typing

from repro.datacenter.entities import Host
from repro.faults.errors import TransientError
from repro.faults.hooks import FaultHook
from repro.sim.kernel import Simulator
from repro.sim.random import bounded, lognormal_from_median
from repro.sim.resources import Resource
from repro.sim.stats import MetricsRegistry
from repro.tracing import NULL_SPAN, PHASE_AGENT, PHASE_QUEUE
from repro.controlplane.costs import ControlPlaneCosts

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.controlplane.resilience import CircuitBreaker


class HostAgentError(TransientError):
    """A host-agent call failed (timeout, injected fault, disconnection).

    Transient by taxonomy: retry policies may re-attempt these (ideally
    against a different host).
    """


class HostAgent:
    """The management server's channel to one host."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        costs: ControlPlaneCosts,
        rng: random.Random,
        op_slots: int = 8,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.costs = costs
        self.rng = rng
        self.slots = Resource(sim, capacity=op_slots, name=f"hostd:{host.name}")
        self.metrics = metrics or MetricsRegistry(sim, prefix=f"hostd.{host.entity_id}")
        self.faults = FaultHook(
            sim, name=host.name, rng=rng, error_factory=HostAgentError
        )
        self.breaker: "CircuitBreaker | None" = None
        self._busy_seconds = 0.0

    def inject_failure(self, error: Exception | None = None) -> None:
        """Fail the next call (failure-injection tests and R-T3 rows)."""
        self.faults.arm_once(error)

    def _note_success(self) -> None:
        if self.breaker is not None:
            self.breaker.record_success()

    def _note_failure(self) -> None:
        if self.breaker is not None:
            self.breaker.record_failure()

    def call(
        self, kind: str, median_s: float, span=NULL_SPAN, task=None
    ) -> typing.Generator[typing.Any, typing.Any, float]:
        """Process-style: one agent call; returns elapsed seconds.

        Raises :class:`HostAgentError` if the host is unusable, the
        breaker is open, a fault was injected, or service exceeds the
        configured timeout.

        ``task`` keeps signature parity with the bus-mediated
        :class:`~repro.controlplane.bus.AgentProxy`, which derives its
        idempotency key from it; the direct channel has no delivery layer,
        so it is unused here.
        """
        start = self.sim.now
        call_span = span.child(
            f"hostd.{kind}", phase=PHASE_AGENT, tags={"host": self.host.name}
        )
        try:
            yield from self._call(kind, median_s, call_span)
        except BaseException as exc:
            call_span.finish(error=type(exc).__name__)
            raise
        call_span.finish()
        return self.sim.now - start

    def _call(
        self, kind: str, median_s: float, span
    ) -> typing.Generator[typing.Any, typing.Any, None]:
        if self.breaker is not None and not self.breaker.allow():
            self.metrics.counter("breaker_rejections").add()
            raise HostAgentError(
                f"{kind} on {self.host.name}: circuit breaker open"
            )
        try:
            if not self.host.is_usable:
                raise HostAgentError(
                    f"host {self.host.name} is {self.host.state.value}"
                )
            factor = self.faults.fire()
        except Exception:
            self.metrics.counter("call_failures").add()
            self._note_failure()
            raise
        start = self.sim.now
        request = self.slots.request()
        wait_span = span.child(
            "hostd.slot_wait", phase=PHASE_QUEUE, tags={"wait": True}
        )
        yield request
        wait_span.finish()
        service = (
            bounded(
                lognormal_from_median(self.rng, median_s, self.costs.sigma),
                median_s * 0.25,
                median_s * 10.0,
            )
            * factor
        )
        try:
            if service > self.costs.host_call_timeout_s:
                # The call would exceed the timeout: the server gives up at
                # the deadline and surfaces an error. The slot was held (and
                # the agent busy) for the full timeout, so utilization must
                # count it — timeout storms are exactly when it matters.
                yield self.sim.timeout(self.costs.host_call_timeout_s)
                self._busy_seconds += self.costs.host_call_timeout_s
                self.metrics.counter("timeouts").add()
                self._note_failure()
                raise HostAgentError(
                    f"{kind} on {self.host.name} timed out after "
                    f"{self.costs.host_call_timeout_s:.0f}s"
                )
            yield self.sim.timeout(service)
        finally:
            self.slots.release(request)
        self._busy_seconds += service
        self._note_success()
        self.metrics.counter("calls").add()
        self.metrics.latency("call_latency").record(self.sim.now - start)

    @property
    def queue_depth(self) -> int:
        return self.slots.queue_depth

    def utilization(self, since: float = 0.0) -> float:
        span = self.sim.now - since
        if span <= 0:
            return 0.0
        return min(1.0, self._busy_seconds / (span * self.slots.capacity))
