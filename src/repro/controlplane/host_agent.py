"""The host agent (hostd) channel: per-host operation slots and call timing.

Each hypervisor host runs a management agent with a bounded number of
in-flight management operations (~8 in the vSphere era). Management-server
operations fan calls out to these agents; a disconnected or wedged agent
surfaces as a call timeout.
"""

from __future__ import annotations

import random
import typing

from repro.datacenter.entities import Host
from repro.sim.kernel import Simulator
from repro.sim.random import bounded, lognormal_from_median
from repro.sim.resources import Resource
from repro.sim.stats import MetricsRegistry
from repro.controlplane.costs import ControlPlaneCosts


class HostAgentError(Exception):
    """A host-agent call failed (timeout, injected fault, disconnection)."""


class HostAgent:
    """The management server's channel to one host."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        costs: ControlPlaneCosts,
        rng: random.Random,
        op_slots: int = 8,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.costs = costs
        self.rng = rng
        self.slots = Resource(sim, capacity=op_slots, name=f"hostd:{host.name}")
        self.metrics = metrics or MetricsRegistry(sim, prefix=f"hostd.{host.entity_id}")
        self._fail_next: list[Exception] = []
        self._busy_seconds = 0.0

    def inject_failure(self, error: Exception | None = None) -> None:
        """Fail the next call (failure-injection tests and R-T3 rows)."""
        self._fail_next.append(error or HostAgentError(f"injected fault on {self.host.name}"))

    def call(
        self, kind: str, median_s: float
    ) -> typing.Generator[typing.Any, typing.Any, float]:
        """Process-style: one agent call; returns elapsed seconds.

        Raises :class:`HostAgentError` if the host is unusable, a fault was
        injected, or service exceeds the configured timeout.
        """
        if not self.host.is_usable:
            raise HostAgentError(f"host {self.host.name} is {self.host.state.value}")
        if self._fail_next:
            raise self._fail_next.pop(0)
        start = self.sim.now
        request = self.slots.request()
        yield request
        service = bounded(
            lognormal_from_median(self.rng, median_s, self.costs.sigma),
            median_s * 0.25,
            median_s * 10.0,
        )
        try:
            if service > self.costs.host_call_timeout_s:
                # The call would exceed the timeout: the server gives up at
                # the deadline and surfaces an error.
                yield self.sim.timeout(self.costs.host_call_timeout_s)
                self.metrics.counter("timeouts").add()
                raise HostAgentError(
                    f"{kind} on {self.host.name} timed out after "
                    f"{self.costs.host_call_timeout_s:.0f}s"
                )
            yield self.sim.timeout(service)
        finally:
            self.slots.release(request)
        self._busy_seconds += service
        self.metrics.counter("calls").add()
        self.metrics.latency("call_latency").record(self.sim.now - start)
        return self.sim.now - start

    @property
    def queue_depth(self) -> int:
        return self.slots.queue_depth

    def utilization(self, since: float = 0.0) -> float:
        span = self.sim.now - since
        if span <= 0:
            return 0.0
        return min(1.0, self._busy_seconds / (span * self.slots.capacity))
