"""The management control plane — the paper's subject.

A :class:`ManagementServer` is a vCenter-style manager: it owns an
inventory, a transactional database, an inventory lock manager, a task
manager with concurrency limits, and one host-agent channel per hypervisor.
Operations (:mod:`repro.operations`) run as simulated processes that consume
these services; when linked clones remove the data-plane cost, contention
for *these* resources is what caps provisioning throughput.

Scale-out (:class:`ShardedControlPlane`) partitions hosts across multiple
servers — the design response the paper's conclusions point at.
"""

from repro.controlplane.bus import (
    AgentProxy,
    BusFaultHook,
    Message,
    MessageBus,
    NULL_BUS,
    OVERFLOW_BLOCK,
    OVERFLOW_DEAD_LETTER,
    OVERFLOW_SHED_OLDEST,
    Topic,
    TopicStats,
)
from repro.controlplane.costs import ControlPlaneConfig, ControlPlaneCosts, DEFAULT_COSTS
from repro.controlplane.database import DatabaseModel
from repro.controlplane.eventlog import (
    AlarmManager,
    AlarmRule,
    EventLog,
    ManagementEvent,
)
from repro.controlplane.host_agent import HostAgent, HostAgentError
from repro.controlplane.locks import LockManager
from repro.controlplane.resilience import (
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
    DeadLetter,
    DEFAULT_RETRY,
    NO_RETRY,
    RetryBudget,
    RetryPolicy,
    TaskDeadlineExceeded,
)
from repro.controlplane.server import ManagementServer
from repro.controlplane.shard import ShardedControlPlane
from repro.controlplane.stats_sync import StatsCollector
from repro.controlplane.task_manager import Task, TaskManager, TaskState

__all__ = [
    "AgentProxy",
    "AlarmManager",
    "AlarmRule",
    "BreakerPolicy",
    "BusFaultHook",
    "BreakerState",
    "CircuitBreaker",
    "ControlPlaneConfig",
    "DeadLetter",
    "DEFAULT_RETRY",
    "EventLog",
    "ManagementEvent",
    "ControlPlaneCosts",
    "DEFAULT_COSTS",
    "DatabaseModel",
    "HostAgent",
    "HostAgentError",
    "LockManager",
    "ManagementServer",
    "Message",
    "MessageBus",
    "NO_RETRY",
    "NULL_BUS",
    "OVERFLOW_BLOCK",
    "OVERFLOW_DEAD_LETTER",
    "OVERFLOW_SHED_OLDEST",
    "Topic",
    "TopicStats",
    "RetryBudget",
    "RetryPolicy",
    "ShardedControlPlane",
    "StatsCollector",
    "Task",
    "TaskDeadlineExceeded",
    "TaskManager",
    "TaskState",
]
