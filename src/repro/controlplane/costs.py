"""Calibration constants for the control-plane cost model.

Magnitudes follow the public record for vSphere-era management planes:

- Soundararajan & Anderson (ISCA 2010) report management operations with
  multi-second end-to-end latencies dominated by management-server-side
  work, and a management server that saturates at tens of concurrent
  operations.
- vCenter of that era enforced per-host in-flight operation limits of ~8
  and datacenter-wide in-flight limits in the low hundreds.
- Inventory updates are row-per-entity database writes on the order of
  10-50 ms each; statistics/task tables dominate DB traffic.

Absolute values matter less than the *structure*: every operation pays a
fixed control-plane toll regardless of how many data bytes it moves. All
knobs are dataclass fields so ablations (R-T3) are one-line overrides.
"""

from __future__ import annotations

import dataclasses
import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.controlplane.resilience import BreakerPolicy, RetryPolicy


@dataclasses.dataclass(frozen=True)
class ControlPlaneCosts:
    """Service-time medians (seconds) and shapes for control-plane work.

    Durations are drawn lognormal around these medians with ``sigma``
    (heavy-tailed bodies, matching measured management-op latency
    distributions).
    """

    # Database: one write covers one row-group (task row, VM row, stats row).
    db_write_s: float = 0.040
    db_read_s: float = 0.010
    # Effective per-row cost divisor when write batching is enabled.
    db_batch_factor: float = 4.0

    # Management-server CPU per phase (request validation, placement
    # scoring, config generation, result serialization). The ISCA'10
    # companion study measured seconds of management-server-side work per
    # operation; these medians reproduce that era's ~1-2s of serialized
    # server CPU per provisioning op.
    api_validate_s: float = 0.150
    placement_s: float = 0.600
    config_gen_s: float = 0.500
    result_commit_s: float = 0.350

    # Host-agent (hostd) service times per call kind.
    host_register_vm_s: float = 1.2
    host_create_disk_s: float = 0.8
    host_snapshot_s: float = 2.0
    host_power_on_s: float = 2.5
    host_power_off_s: float = 1.5
    host_reconfigure_s: float = 1.0
    host_destroy_s: float = 0.8
    host_rescan_s: float = 4.0
    host_add_connect_s: float = 12.0
    host_migrate_prep_s: float = 1.5

    # vMotion memory-copy rate (bytes/sec) for live migration data plane.
    vmotion_bps: float = 1.0 * 1024**3

    # Lognormal shape for all service-time draws.
    sigma: float = 0.35

    # Host-agent call timeout (failure detection).
    host_call_timeout_s: float = 120.0


@dataclasses.dataclass(frozen=True)
class ControlPlaneConfig:
    """Structural knobs of one management-server instance."""

    # Concurrency limits.
    max_inflight_tasks: int = 96        # datacenter-wide dispatch limit
    per_host_op_slots: int = 8          # hostd in-flight limit
    db_connections: int = 16            # connection pool
    cpu_workers: int = 4                # management-server op threads

    # Behavioural knobs (R-T3 ablations).
    db_batching: bool = False           # batch inventory/stat writes
    lock_granularity: str = "fine"      # "fine" (per-entity) | "coarse" (global)
    copy_slots_per_datastore: int = 4   # data-plane admission
    # Per-operation-type concurrency caps (e.g. {"clone_linked": 8}); ops
    # beyond the cap queue ahead of dispatch, mirroring the per-category
    # limits era management servers enforced. Empty = uncapped.
    per_type_limits: typing.Mapping[str, int] = dataclasses.field(
        default_factory=dict
    )

    # Resilience knobs (all off by default — the pre-resilience behaviour).
    # retry_policy: re-run task bodies failing with TransientError.
    retry_policy: "RetryPolicy | None" = None
    # retry_budget_ratio: global retry-volume cap as a fraction of offered
    # load (None = unlimited retries within the policy's attempt cap).
    retry_budget_ratio: float | None = None
    # task_deadline_s: per-task wall-clock budget from submission; bounds
    # queue wait and forbids retries that can't finish in time.
    task_deadline_s: float | None = None
    # breaker: per-host-agent circuit breaker policy.
    breaker: "BreakerPolicy | None" = None

    def __post_init__(self) -> None:
        if self.lock_granularity not in ("fine", "coarse"):
            raise ValueError(f"unknown lock granularity {self.lock_granularity!r}")
        for field in (
            "max_inflight_tasks",
            "per_host_op_slots",
            "db_connections",
            "cpu_workers",
            "copy_slots_per_datastore",
        ):
            if getattr(self, field) < 1:
                raise ValueError(f"{field} must be >= 1")
        for op_type, limit in self.per_type_limits.items():
            if limit < 1:
                raise ValueError(f"per_type_limits[{op_type!r}] must be >= 1")
        if self.retry_budget_ratio is not None and self.retry_budget_ratio < 0:
            raise ValueError("retry_budget_ratio must be >= 0")
        if self.task_deadline_s is not None and self.task_deadline_s <= 0:
            raise ValueError("task_deadline_s must be positive")


DEFAULT_COSTS = ControlPlaneCosts()
DEFAULT_CONFIG = ControlPlaneConfig()
