"""The task manager: admission, dispatch, and lifecycle of management tasks.

Every operation becomes a Task: created (DB write), queued behind the
datacenter-wide in-flight limit, executed, and committed (DB write). The
task queue depth over time is R-F7; per-type task latencies feed R-F2.
"""

from __future__ import annotations

import dataclasses
import enum
import typing

from repro.sim.kernel import Simulator
from repro.sim.resources import PriorityResource
from repro.sim.stats import MetricsRegistry
from repro.controlplane.database import DatabaseModel


class TaskState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    SUCCESS = "success"
    ERROR = "error"


@dataclasses.dataclass
class Task:
    """One management task's lifecycle record."""

    task_id: int
    op_type: str
    submitted_at: float
    priority: float = 5.0
    state: TaskState = TaskState.QUEUED
    started_at: float | None = None
    finished_at: float | None = None
    error: str | None = None
    # Per-phase attribution filled in by the operation: (phase, plane, seconds).
    phases: list[tuple[str, str, float]] = dataclasses.field(default_factory=list)
    # Operation-specific payload (e.g. the created VM for clones).
    result: typing.Any = None

    @property
    def queue_wait(self) -> float:
        if self.started_at is None:
            raise RuntimeError("task not started")
        return self.started_at - self.submitted_at

    @property
    def latency(self) -> float:
        if self.finished_at is None:
            raise RuntimeError("task not finished")
        return self.finished_at - self.submitted_at

    def plane_seconds(self, plane: str) -> float:
        """Total attributed seconds on one plane ('control' or 'data')."""
        return sum(seconds for _, p, seconds in self.phases if p == plane)


class TaskManager:
    """Admits tasks under the in-flight limit and records their lifecycle."""

    def __init__(
        self,
        sim: Simulator,
        database: DatabaseModel,
        max_inflight: int,
        per_type_limits: typing.Mapping[str, int] | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.sim = sim
        self.database = database
        self.dispatch = PriorityResource(sim, capacity=max_inflight, name="task-dispatch")
        self._type_limits: dict[str, PriorityResource] = {
            op_type: PriorityResource(sim, capacity=limit, name=f"limit:{op_type}")
            for op_type, limit in (per_type_limits or {}).items()
        }
        self.metrics = metrics or MetricsRegistry(sim, prefix="tasks")
        self.tasks: list[Task] = []
        self._next_id = 0
        self._depth = self.metrics.gauge("queue_depth")
        # Optional event sink (see controlplane.eventlog); completion posts
        # one event per task, errors at elevated severity.
        self.event_log = None

    def run_task(
        self,
        op_type: str,
        body: typing.Callable[[Task], typing.Generator],
        priority: float = 5.0,
    ) -> typing.Generator[typing.Any, typing.Any, Task]:
        """Process-style: run ``body(task)`` under the task lifecycle.

        The body is a process generator; its phases should be appended to
        ``task.phases``. Failures mark the task ERROR and re-raise.
        """
        self._next_id += 1
        task = Task(
            task_id=self._next_id,
            op_type=op_type,
            submitted_at=self.sim.now,
            priority=priority,
        )
        self.tasks.append(task)
        # Task-row insert happens before dispatch: even rejected/queued work
        # costs the database.
        yield from self.database.write(rows=1)
        self._depth.add(1)
        # Per-category cap first (if configured), then the global limit —
        # matching the real dispatch order (a capped clone can't consume a
        # datacenter-wide slot while waiting on its category).
        type_slot = None
        type_pool = self._type_limits.get(op_type)
        if type_pool is not None:
            type_slot = type_pool.request(priority=priority)
            yield type_slot
        slot = self.dispatch.request(priority=priority)
        yield slot
        self._depth.add(-1)
        task.state = TaskState.RUNNING
        task.started_at = self.sim.now
        try:
            yield from body(task)
        except Exception as error:
            task.state = TaskState.ERROR
            task.error = f"{type(error).__name__}: {error}"
            raise
        else:
            task.state = TaskState.SUCCESS
        finally:
            self.dispatch.release(slot)
            if type_slot is not None:
                type_pool.release(type_slot)
            task.finished_at = self.sim.now
            # Completion row: state transition + result payload.
            yield from self.database.write(rows=1)
            self.metrics.counter(f"completed.{task.op_type}").add()
            self.metrics.latency(f"latency.{task.op_type}").record(task.latency)
            self.metrics.latency("latency.all").record(task.latency)
            if self.event_log is not None:
                severity = "info" if task.state == TaskState.SUCCESS else "warning"
                self.event_log.post(
                    f"task.{task.op_type}",
                    f"task-{task.task_id}",
                    severity=severity,
                    message=task.error or "",
                )

    # -- reporting ----------------------------------------------------------

    def completed(self, op_type: str | None = None) -> list[Task]:
        done = [t for t in self.tasks if t.state in (TaskState.SUCCESS, TaskState.ERROR)]
        if op_type is None:
            return done
        return [t for t in done if t.op_type == op_type]

    def succeeded(self, op_type: str | None = None) -> list[Task]:
        return [t for t in self.completed(op_type) if t.state == TaskState.SUCCESS]

    def failed(self) -> list[Task]:
        return [t for t in self.tasks if t.state == TaskState.ERROR]

    @property
    def queue_depth(self) -> float:
        return self._depth.value

    def max_queue_depth(self) -> float:
        return self._depth.maximum

    def queue_depth_series(self) -> list[tuple[float, float]]:
        return self._depth.series()
