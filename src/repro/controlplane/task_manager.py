"""The task manager: admission, dispatch, and lifecycle of management tasks.

Every operation becomes a Task: created (DB write), queued behind the
datacenter-wide in-flight limit, executed, and committed (DB write). The
task queue depth over time is R-F7; per-type task latencies feed R-F2.

The resilience layer lives here: an optional
:class:`~repro.controlplane.resilience.RetryPolicy` re-runs task bodies
that fail with transient errors (exponential backoff + jitter, bounded by
a global :class:`~repro.controlplane.resilience.RetryBudget`), optional
per-task deadlines bound queue wait and forbid retries past the deadline,
and retryable failures that exhaust their attempts/budget/deadline leave a
:class:`~repro.controlplane.resilience.DeadLetter` record — the retry
machinery never gives up silently. Observable via the ``retries``,
``dead_letter``, ``deadline_exceeded``, and ``retry_budget_denied``
counters.
"""

from __future__ import annotations

import dataclasses
import enum
import random
import typing

from repro.sim.events import AnyOf
from repro.sim.kernel import Simulator
from repro.sim.resources import PriorityResource
from repro.sim.stats import MetricsRegistry
from repro.controlplane.database import DatabaseModel
from repro.controlplane.recovery import (
    NULL_JOURNAL,
    VERDICT_ADOPT,
    VERDICT_FAILED,
    crash_cause,
)
from repro.controlplane.resilience import (
    DeadLetter,
    RetryBudget,
    RetryPolicy,
    TaskDeadlineExceeded,
)
from repro.telemetry.metrics import NULL_TELEMETRY
from repro.tracing import (
    NULL_SPAN,
    NULL_TRACER,
    PHASE_QUEUE,
    PHASE_RETRY,
    PHASE_TASK,
)


class TaskState(enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    SUCCESS = "success"
    ERROR = "error"


@dataclasses.dataclass
class Task:
    """One management task's lifecycle record."""

    task_id: int
    op_type: str
    submitted_at: float
    priority: float = 5.0
    state: TaskState = TaskState.QUEUED
    started_at: float | None = None
    finished_at: float | None = None
    error: str | None = None
    # Absolute sim time by which the task must finish (None = no deadline).
    deadline: float | None = None
    # Body executions so far (1 = no retries).
    attempts: int = 0
    # Per-phase attribution filled in by the operation: (phase, plane, seconds).
    phases: list[tuple[str, str, float]] = dataclasses.field(default_factory=list)
    # Operation-specific payload (e.g. the created VM for clones).
    result: typing.Any = None
    # Current tracing span for the task's work (the root span outside
    # attempts, the attempt span while a body runs; NULL_SPAN untraced).
    span: typing.Any = NULL_SPAN
    # The submitting operation, when known — crash recovery probes it for
    # ground truth (repr suppressed: operations back-reference the server).
    operation: typing.Any = dataclasses.field(default=None, repr=False)

    @property
    def queue_wait(self) -> float:
        if self.started_at is None:
            raise RuntimeError("task not started")
        return self.started_at - self.submitted_at

    @property
    def latency(self) -> float:
        if self.finished_at is None:
            raise RuntimeError("task not finished")
        return self.finished_at - self.submitted_at

    def plane_seconds(self, plane: str) -> float:
        """Total attributed seconds on one plane ('control' or 'data')."""
        return sum(seconds for _, p, seconds in self.phases if p == plane)


class TaskManager:
    """Admits tasks under the in-flight limit and records their lifecycle."""

    def __init__(
        self,
        sim: Simulator,
        database: DatabaseModel,
        max_inflight: int,
        per_type_limits: typing.Mapping[str, int] | None = None,
        metrics: MetricsRegistry | None = None,
        retry_policy: RetryPolicy | None = None,
        retry_budget: RetryBudget | None = None,
        task_deadline_s: float | None = None,
        rng: random.Random | None = None,
        tracer=None,
        telemetry=None,
    ) -> None:
        if task_deadline_s is not None and task_deadline_s <= 0:
            raise ValueError("task_deadline_s must be positive")
        self.sim = sim
        self.database = database
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.dispatch = PriorityResource(sim, capacity=max_inflight, name="task-dispatch")
        self._type_limits: dict[str, PriorityResource] = {
            op_type: PriorityResource(sim, capacity=limit, name=f"limit:{op_type}")
            for op_type, limit in (per_type_limits or {}).items()
        }
        self.metrics = metrics or MetricsRegistry(sim, prefix="tasks")
        self.retry_policy = retry_policy
        self.retry_budget = retry_budget
        self.task_deadline_s = task_deadline_s
        self.rng = rng or random.Random(0xACE)
        self.tasks: list[Task] = []
        self.dead_letters: list[DeadLetter] = []
        self._dead_lettered: set[int] = set()
        self._next_id = 0
        self._depth = self.metrics.gauge("queue_depth")
        # Crash-recovery attachments, wired by ManagementServer after
        # construction: the write-ahead journal (NULL_JOURNAL = off, the
        # schedule-neutral default) and the recovery manager that parks
        # crash-interrupted task processes until the journal replays.
        self.journal = NULL_JOURNAL
        self.recovery = None
        # Optional event sink (see controlplane.eventlog); completion posts
        # one event per task, errors at elevated severity.
        self.event_log = None
        # Telemetry handles, grabbed once (all NULL_METRIC when disabled —
        # the hot path pays one no-op bound-method call per event).
        telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        self._t_success = telemetry.counter("tasks_completed_total", outcome="success")
        self._t_error = telemetry.counter("tasks_completed_total", outcome="error")
        self._t_retries = telemetry.counter("tasks_retries_total")
        self._t_dead_letter = telemetry.counter("tasks_dead_letter_total")
        self._t_latency = telemetry.histogram("tasks_latency_s")

    def run_task(
        self,
        op_type: str,
        body: typing.Callable[[Task], typing.Generator],
        priority: float = 5.0,
        parent_span=NULL_SPAN,
        operation=None,
    ) -> typing.Generator[typing.Any, typing.Any, Task]:
        """Process-style: run ``body(task)`` under the task lifecycle.

        The body is a process generator; its phases should be appended to
        ``task.phases``. Transient failures are retried per the configured
        :class:`RetryPolicy`; terminal failures mark the task ERROR,
        record a dead letter, and re-raise.

        With tracing enabled the task gets a root span (a child of
        ``parent_span`` when the caller — e.g. the cloud director — is
        itself traced), one ``attempt-N`` child per body execution, and
        explicit dispatch-wait/backoff spans. ``task.span`` always points
        at the span operation phases should attach to; after the task
        finishes it is the (finished) root span.
        """
        self._next_id += 1
        task = Task(
            task_id=self._next_id,
            op_type=op_type,
            submitted_at=self.sim.now,
            priority=priority,
            operation=operation,
        )
        if self.task_deadline_s is not None:
            task.deadline = task.submitted_at + self.task_deadline_s
        self.tasks.append(task)
        root_span = self.tracer.start_span(
            f"task.{op_type}",
            phase=PHASE_TASK,
            parent=None if parent_span.is_null else parent_span,
            tags={"task_id": task.task_id, "op_type": op_type},
        )
        task.span = root_span
        try:
            yield from self._run_task_traced(task, op_type, body, priority)
        finally:
            task.span = root_span
            error_name = None
            if task.state is TaskState.ERROR and task.error:
                error_name = task.error.split(":", 1)[0]
            root_span.annotate("attempts", task.attempts)
            root_span.finish(error=error_name)
        return task

    def _run_task_traced(
        self,
        task: Task,
        op_type: str,
        body: typing.Callable[[Task], typing.Generator],
        priority: float,
    ) -> typing.Generator[typing.Any, typing.Any, Task]:
        root_span = task.span
        # Task-row insert happens before dispatch: even rejected/queued work
        # costs the database. If the database itself is faulted the task
        # never existed as far as dispatch is concerned — fail it terminally
        # rather than stranding it QUEUED.
        try:
            yield from self.database.write(rows=1, span=root_span)
        except Exception as error:
            # A crash interrupt during the insert means the task was never
            # admitted: surface ServerCrashed (transient) so the caller may
            # resubmit — nothing was journaled, so nothing can duplicate.
            cause = crash_cause(error)
            if cause is not None:
                error = cause
            self._fail_terminally(task, error)
            self.metrics.counter("insert_failures").add()
            raise error
        self.journal.record_admit(task)
        if self.retry_budget is not None:
            self.retry_budget.deposit()
        self._depth.add(1)
        # Per-category cap first (if configured), then the global limit —
        # matching the real dispatch order (a capped clone can't consume a
        # datacenter-wide slot while waiting on its category). Queue waits
        # are bounded by the task deadline: a request still queued at the
        # deadline is withdrawn and the task dead-lettered.
        granted: list[tuple[PriorityResource, typing.Any]] = []
        wait_span = root_span.child(
            "task.dispatch_wait", phase=PHASE_QUEUE, tags={"wait": True}
        )
        while True:
            try:
                type_pool = self._type_limits.get(op_type)
                if type_pool is not None:
                    yield from self._acquire(type_pool, priority, task, granted)
                yield from self._acquire(self.dispatch, priority, task, granted)
                break
            except TaskDeadlineExceeded as error:
                wait_span.finish(error=type(error).__name__)
                self._depth.add(-1)
                for pool, request in granted:
                    pool.release(request)
                self.metrics.counter("deadline_exceeded").add()
                self._fail_terminally(task, error)
                yield from self._finalize(task)
                raise
            except Exception as error:
                # A crash interrupt while queued: the kernel has already
                # withdrawn the in-flight request; give back any slot we
                # did win, park until the journal replays, then requeue.
                if crash_cause(error) is None:
                    raise
                for pool, request in granted:
                    pool.release(request)
                granted.clear()
                yield from self._park(task, "dispatch")
        wait_span.finish()
        self._depth.add(-1)
        task.state = TaskState.RUNNING
        task.started_at = self.sim.now
        try:
            while True:
                task.attempts += 1
                self.journal.record_dispatch(task, task.attempts)
                attempt_span = root_span.child(
                    f"attempt-{task.attempts}", phase=PHASE_TASK
                )
                task.span = attempt_span
                try:
                    try:
                        yield from body(task)
                    except Exception as error:
                        attempt_span.finish(error=type(error).__name__)
                        cause = crash_cause(error)
                        if cause is not None:
                            # The server crashed mid-attempt. Park until the
                            # journal replays; the verdict says whether the
                            # half-done work survived. A re-issue does not
                            # consume retry budget — the crash was the
                            # server's fault, not the attempt's.
                            verdict = yield from self._park(task, "attempt")
                            if self._settle(task, verdict, cause):
                                break
                            self.metrics.counter("crash_reissues").add()
                            continue
                        delay = self._retry_delay(task, error)
                        if delay is None:
                            task.state = TaskState.ERROR
                            task.error = f"{type(error).__name__}: {error}"
                            self._record_dead_letter(task, error)
                            raise
                        self.metrics.counter("retries").add()
                        self.metrics.counter(f"retries.{op_type}").add()
                        self._t_retries.add()
                        if delay > 0:
                            backoff_span = root_span.child(
                                "task.backoff",
                                phase=PHASE_RETRY,
                                tags={"wait": True},
                            )
                            try:
                                yield self.sim.timeout(delay)
                            except Exception as backoff_error:
                                cause = crash_cause(backoff_error)
                                if cause is None:
                                    backoff_span.finish(
                                        error=type(backoff_error).__name__
                                    )
                                    raise
                                backoff_span.finish(error=type(cause).__name__)
                                verdict = yield from self._park(task, "backoff")
                                if self._settle(task, verdict, cause):
                                    break
                                self.metrics.counter("crash_reissues").add()
                                continue
                            backoff_span.finish()
                    else:
                        attempt_span.finish()
                        task.state = TaskState.SUCCESS
                        break
                finally:
                    task.span = root_span
        finally:
            self.dispatch.release(granted[-1][1])
            for pool, request in granted[:-1]:
                pool.release(request)
            yield from self._finalize(task)

    # -- lifecycle helpers ---------------------------------------------------

    def _acquire(
        self,
        pool: PriorityResource,
        priority: float,
        task: Task,
        granted: list,
    ) -> typing.Generator:
        """Request a slot, bounded by the task deadline (if any)."""
        request = pool.request(priority=priority)
        if task.deadline is None:
            yield request
        else:
            remaining = task.deadline - self.sim.now
            if remaining <= 0:
                request.withdraw()
                raise TaskDeadlineExceeded(
                    f"task {task.task_id} ({task.op_type}) hit its deadline "
                    f"before dispatch"
                )
            timer = self.sim.timeout(remaining)
            yield AnyOf(self.sim, [request, timer])
            if not request.triggered:
                request.withdraw()
                raise TaskDeadlineExceeded(
                    f"task {task.task_id} ({task.op_type}) queued past its "
                    f"deadline ({self.task_deadline_s:.0f}s)"
                )
        granted.append((pool, request))

    def _park(self, task: Task, stage: str) -> typing.Generator[typing.Any, typing.Any, str]:
        """Wait out a crash window; return the reconciliation verdict."""
        if self.recovery is None:
            raise RuntimeError(
                f"task {task.task_id} crash-interrupted but no recovery "
                f"manager is attached"
            )
        self.metrics.counter("crash_parked").add()
        verdict = yield from self.recovery.park(task, stage)
        return verdict

    def _settle(self, task: Task, verdict: str, cause: BaseException) -> bool:
        """Apply a post-replay verdict inside the attempt loop.

        True = task done (orphaned work adopted); False = re-issue the
        attempt. A ``failed`` verdict (the journal already holds a terminal
        error record for this task) re-raises the crash cause — the dead
        letter, if any, was recorded before the crash and is never
        duplicated (see :meth:`_record_dead_letter`).
        """
        if verdict == VERDICT_ADOPT:
            task.state = TaskState.SUCCESS
            self.metrics.counter("crash_adopted").add()
            return True
        if verdict == VERDICT_FAILED:
            record = self.journal.terminal_record(task.task_id)
            task.state = TaskState.ERROR
            if record is not None and record.error:
                task.error = record.error
            else:
                task.error = f"{type(cause).__name__}: {cause}"
            raise cause
        return False

    def _retry_delay(self, task: Task, error: BaseException) -> float | None:
        """Backoff before the next attempt, or None to fail terminally."""
        policy = self.retry_policy
        if policy is None or not policy.retryable(error):
            return None
        if task.attempts >= policy.max_attempts:
            return None
        if self.retry_budget is not None and not self.retry_budget.withdraw():
            self.metrics.counter("retry_budget_denied").add()
            return None
        delay = policy.backoff_s(task.attempts, self.rng)
        if task.deadline is not None and self.sim.now + delay >= task.deadline:
            # A retry that cannot finish by the deadline only deepens the
            # backlog; give up now.
            self.metrics.counter("deadline_exceeded").add()
            return None
        return delay

    def _fail_terminally(self, task: Task, error: BaseException) -> None:
        task.state = TaskState.ERROR
        task.error = f"{type(error).__name__}: {error}"
        task.finished_at = self.sim.now
        self._record_dead_letter(task, error)

    def _record_dead_letter(self, task: Task, error: BaseException) -> None:
        """Record work the retry machinery gave up on.

        Dead letters are retryable failures that exhausted their attempts,
        budget, or deadline: work the resilience layer promised to mask and
        couldn't. Non-retryable errors (business failures, host-pinned
        preconditions) pass through as plain task errors for the caller to
        handle — e.g. the cloud director re-places them on another host.
        Without a retry policy there is no promise, hence no dead letters.

        Deduplicated against the journal: a task whose terminal record was
        already journaled (it died during a crash window and the record
        survived) must not grow a second dead letter on replay — the
        journal's terminal record wins.
        """
        if self.retry_policy is None or not self.retry_policy.retryable(error):
            return
        if (
            task.task_id in self._dead_lettered
            or self.journal.terminal_record(task.task_id) is not None
        ):
            self.metrics.counter("dead_letter_deduped").add()
            return
        self._dead_lettered.add(task.task_id)
        self.dead_letters.append(
            DeadLetter(
                task_id=task.task_id,
                op_type=task.op_type,
                submitted_at=task.submitted_at,
                failed_at=self.sim.now,
                attempts=task.attempts,
                error=task.error or "",
            )
        )
        self.metrics.counter("dead_letter").add()
        self._t_dead_letter.add()

    def record_message_dead_letter(self, task: Task, error: BaseException) -> None:
        """Bus-level dead letter for a task-linked message: one shared sink.

        The message bus points its ``dead_letter_sink`` here so bus sheds
        and resilience-layer dead letters are counted once, through the
        same dedup (``_dead_lettered`` + the journal's terminal record).
        Only a terminally-failed task records anything: while the task is
        live, a lost message surfaces as :class:`MessageLost` through the
        reply and the retry machinery owns the outcome — if *it* gives up,
        the ordinary ``_record_dead_letter`` path fires with this dedup
        guaranteeing no double count.
        """
        if task is None or task.state is not TaskState.ERROR:
            return
        self._record_dead_letter(task, error)

    def _finalize(self, task: Task) -> typing.Generator:
        """Completion row + metrics + event post; never masks the outcome."""
        if task.finished_at is None:
            task.finished_at = self.sim.now
        # Journal the terminal state ahead of the completion row (it is the
        # write-ahead record the row makes durable). Idempotent: replay
        # paths may have journaled it already.
        self.journal.record_terminal(
            task, dead_letter=task.task_id in self._dead_lettered
        )
        # Completion row: state transition + result payload. A faulted
        # database must not turn a finished task's outcome into a new
        # exception — count and move on.
        try:
            yield from self.database.write(rows=1, span=task.span)
        except Exception:
            self.metrics.counter("completion_write_failures").add()
        self.metrics.counter(f"completed.{task.op_type}").add()
        self.metrics.latency(f"latency.{task.op_type}").record(task.latency)
        self.metrics.latency("latency.all").record(task.latency)
        outcome = self._t_success if task.state is TaskState.SUCCESS else self._t_error
        outcome.add()
        self._t_latency.observe(
            task.latency,
            trace_id=None if task.span.is_null else task.span.context.trace_id,
        )
        if self.event_log is not None:
            severity = "info" if task.state == TaskState.SUCCESS else "warning"
            self.event_log.post(
                f"task.{task.op_type}",
                f"task-{task.task_id}",
                severity=severity,
                message=task.error or "",
            )

    # -- reporting ----------------------------------------------------------

    def completed(self, op_type: str | None = None) -> list[Task]:
        done = [t for t in self.tasks if t.state in (TaskState.SUCCESS, TaskState.ERROR)]
        if op_type is None:
            return done
        return [t for t in done if t.op_type == op_type]

    def succeeded(self, op_type: str | None = None) -> list[Task]:
        return [t for t in self.completed(op_type) if t.state == TaskState.SUCCESS]

    def failed(self) -> list[Task]:
        return [t for t in self.tasks if t.state == TaskState.ERROR]

    def unaccounted(self) -> list[Task]:
        """Tasks neither finished nor dead-lettered (should be empty at
        quiescence — the R-X3 acceptance check)."""
        return [
            t
            for t in self.tasks
            if t.state not in (TaskState.SUCCESS, TaskState.ERROR)
        ]

    def assert_accounted(self) -> None:
        """Hard post-run invariant: every task reached a terminal state.

        Exhibits and the quiescence property call this after their run
        drains — a lost task fails loudly here instead of silently
        shrinking goodput.
        """
        stranded = self.unaccounted()
        if stranded:
            detail = ", ".join(
                f"task-{t.task_id}({t.op_type}:{t.state.value})"
                for t in stranded[:10]
            )
            more = "" if len(stranded) <= 10 else f" (+{len(stranded) - 10} more)"
            raise RuntimeError(
                f"{len(stranded)} unaccounted task(s) after run: {detail}{more}"
            )

    @property
    def queue_depth(self) -> float:
        return self._depth.value

    def max_queue_depth(self) -> float:
        return self._depth.maximum

    def queue_depth_series(self) -> list[tuple[float, float]]:
        return self._depth.series()
