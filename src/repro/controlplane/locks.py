"""Inventory locking: serializes mutations on managed entities.

Management servers serialize concurrent operations touching the same
entity, but distinguish *shared* access (a template being cloned by many
operations at once) from *exclusive* access (destroying that template).
Locks here are fair reader-writer locks; granularity is an ablation knob:
``fine`` locks per entity id, ``coarse`` is one global inventory lock —
the degenerate design whose cost R-T3 quantifies.
"""

from __future__ import annotations

import collections
import dataclasses
import typing

from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.sim.stats import MetricsRegistry

READ = "read"
WRITE = "write"


@dataclasses.dataclass
class RWGrant:
    """A held lock: pass back to :meth:`RWLock.release`."""

    lock: "RWLock"
    mode: str


class RWLock:
    """A fair (FIFO) reader-writer lock.

    Consecutive readers at the queue head are granted together; a writer
    waits for all current readers and blocks later readers (no writer
    starvation).
    """

    def __init__(self, sim: Simulator, name: str = "rwlock") -> None:
        self.sim = sim
        self.name = name
        self.readers = 0
        self.writer = False
        self._queue: collections.deque[tuple[str, Event]] = collections.deque()

    def acquire(self, mode: str) -> Event:
        if mode not in (READ, WRITE):
            raise ValueError(f"unknown lock mode {mode!r}")
        event = Event(self.sim, name=f"{mode}:{self.name}")
        self._queue.append((mode, event))
        self._dispatch()
        return event

    def release(self, grant: RWGrant) -> None:
        if grant.lock is not self:
            raise RuntimeError("grant belongs to a different lock")
        if grant.mode == WRITE:
            if not self.writer:
                raise RuntimeError(f"release of unheld write lock {self.name!r}")
            self.writer = False
        else:
            if self.readers <= 0:
                raise RuntimeError(f"release of unheld read lock {self.name!r}")
            self.readers -= 1
        self._dispatch()

    def withdraw(self, event: Event) -> None:
        """Remove a still-queued acquire; no-op if already granted."""
        for index, (_mode, queued) in enumerate(self._queue):
            if queued is event:
                del self._queue[index]
                event.cancel()
                self._dispatch()
                return

    def _dispatch(self) -> None:
        while self._queue:
            mode, event = self._queue[0]
            if mode == WRITE:
                if self.readers == 0 and not self.writer:
                    self._queue.popleft()
                    self.writer = True
                    event.succeed(value=RWGrant(self, WRITE))
                    continue
                break
            # Reader: admit unless a writer currently holds the lock.
            if self.writer:
                break
            self._queue.popleft()
            self.readers += 1
            event.succeed(value=RWGrant(self, READ))

    @property
    def idle(self) -> bool:
        return self.readers == 0 and not self.writer and not self._queue


class LockManager:
    """Per-entity (or global) RW locks with deadlock-free ordered acquisition."""

    GLOBAL_KEY = "__inventory__"

    def __init__(
        self,
        sim: Simulator,
        granularity: str = "fine",
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if granularity not in ("fine", "coarse"):
            raise ValueError(f"unknown granularity {granularity!r}")
        self.sim = sim
        self.granularity = granularity
        self.metrics = metrics or MetricsRegistry(sim, prefix="locks")
        self._locks: dict[str, RWLock] = {}

    def _lock(self, key: str) -> RWLock:
        if key not in self._locks:
            self._locks[key] = RWLock(self.sim, name=key)
        return self._locks[key]

    def _plan(
        self,
        write_ids: typing.Sequence[str],
        read_ids: typing.Sequence[str],
    ) -> list[tuple[str, str]]:
        """(key, mode) pairs in deadlock-free sorted order.

        Under coarse granularity everything degrades to one global
        exclusive lock. An id requested in both modes locks as write.
        """
        if self.granularity == "coarse":
            return [(self.GLOBAL_KEY, WRITE)]
        modes: dict[str, str] = {}
        for entity_id in read_ids:
            modes[entity_id] = READ
        for entity_id in write_ids:
            modes[entity_id] = WRITE
        return sorted(modes.items())

    def acquire(
        self,
        write_ids: typing.Sequence[str],
        read_ids: typing.Sequence[str] = (),
    ) -> typing.Generator[typing.Any, typing.Any, list[RWGrant]]:
        """Process-style: acquire all locks; returns grant handles.

        All-or-nothing: if the acquiring process dies mid-sequence
        (interrupt, injected fault), already-held grants are released and
        the in-flight queue entry withdrawn — partial grants never leak.
        """
        start = self.sim.now
        grants: list[RWGrant] = []
        for key, mode in self._plan(write_ids, read_ids):
            lock = self._lock(key)
            pending = lock.acquire(mode)
            try:
                grant = yield pending
            except BaseException:
                if pending.triggered:
                    lock.release(pending.value)
                else:
                    lock.withdraw(pending)
                for held in reversed(grants):
                    held.lock.release(held)
                raise
            grants.append(grant)
        self.metrics.latency("acquire_wait").record(self.sim.now - start)
        return grants

    def release(self, grants: list[RWGrant]) -> None:
        # Reverse order for symmetry; correctness doesn't depend on it.
        for grant in reversed(grants):
            grant.lock.release(grant)

    def holding(
        self,
        write_ids: typing.Sequence[str],
        read_ids: typing.Sequence[str] = (),
    ) -> "LockScope":
        """Scope helper pairing acquire/release over a fixed entity set.

        Usage::

            scope = locks.holding([vm.entity_id], read_ids=[src.entity_id])
            grants = yield from scope.acquire()
            try:
                ...
            finally:
                scope.release(grants)
        """
        return LockScope(self, write_ids, read_ids)

    def contention(self) -> float:
        """Mean lock-acquire wait across all acquisitions (seconds)."""
        return self.metrics.latency("acquire_wait").mean


class LockScope:
    """Pairs acquire/release over fixed write/read entity sets."""

    def __init__(
        self,
        manager: LockManager,
        write_ids: typing.Sequence[str],
        read_ids: typing.Sequence[str] = (),
    ) -> None:
        self.manager = manager
        self.write_ids = list(write_ids)
        self.read_ids = list(read_ids)

    def acquire(self) -> typing.Generator[typing.Any, typing.Any, list[RWGrant]]:
        return (yield from self.manager.acquire(self.write_ids, self.read_ids))

    def release(self, grants: list[RWGrant]) -> None:
        self.manager.release(grants)
