"""Periodic statistics collection: the control plane's always-on load.

The ISCA'10 companion study highlighted that even an *idle* virtualized
datacenter keeps its management server busy: every host is polled for
performance statistics on a fixed cadence and the samples are rolled into
the database. That baseline consumes exactly the resources provisioning
storms need — so a larger inventory leaves less control-plane headroom
for the cloud workload. The ``stats level`` knob (how many counters are
collected) was the era's standard mitigation.
"""

from __future__ import annotations

import typing

from repro.sim.stats import MetricsRegistry
from repro.controlplane.server import ManagementServer

# Rows written per host per collection cycle at each stats level
# (vCenter levels 1-4: each level roughly triples the counter set).
ROWS_PER_LEVEL = {1: 1, 2: 3, 3: 9, 4: 27}

# Host-agent stats pull service time (seconds, median).
PULL_MEDIAN_S = 0.25


class StatsCollector:
    """Polls every adopted host on a cadence and persists samples."""

    def __init__(
        self,
        server: ManagementServer,
        interval_s: float = 20.0,
        level: int = 1,
    ) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        if level not in ROWS_PER_LEVEL:
            raise ValueError(f"stats level must be one of {sorted(ROWS_PER_LEVEL)}")
        self.server = server
        self.interval_s = interval_s
        self.level = level
        self.metrics = MetricsRegistry(server.sim, prefix=f"{server.name}.stats")
        # The stats pipeline is itself a scrape target: its rows/cycles
        # counters become per-window rates in the telemetry roll-ups
        # (R-X2 reads the modeled stats load through this path).
        server.telemetry.watch_registry(self.metrics, component="statsd")
        self._until: float | None = None
        self._running = False

    @property
    def rows_per_cycle_per_host(self) -> int:
        return ROWS_PER_LEVEL[self.level]

    def start(self, until: float | None = None) -> None:
        """Begin collection; bounded by ``until`` if given."""
        if self._running:
            raise RuntimeError("stats collector already started")
        self._running = True
        self._until = until
        self.server.sim.spawn(self._loop(), name=f"{self.server.name}:stats")

    def stop(self) -> None:
        self._until = self.server.sim.now

    def _loop(self) -> typing.Generator:
        sim = self.server.sim
        while True:
            yield sim.timeout(self.interval_s)
            if self._until is not None and sim.now >= self._until:
                return
            for agent in self.server.agents:
                if not agent.host.is_usable:
                    continue
                sim.spawn(self._collect_one(agent), name="stats-pull")

    def _collect_one(self, agent) -> typing.Generator:
        try:
            yield from agent.call("stats_pull", PULL_MEDIAN_S)
        except Exception:
            self.metrics.counter("pull_errors").add()
            return
        yield from self.server.database.write(rows=self.rows_per_cycle_per_host)
        self.metrics.counter("cycles").add()
        self.metrics.counter("rows").add(self.rows_per_cycle_per_host)
