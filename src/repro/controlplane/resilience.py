"""Resilience primitives: retry policies, budgets, breakers, dead letters.

These are the control plane's answer to the faults in ``repro.faults``:

- :class:`RetryPolicy` — exponential backoff with jitter, an attempt cap,
  and a transient-only error filter; applied at the task lifecycle by
  :class:`~repro.controlplane.task_manager.TaskManager` and at per-VM
  deployment by :class:`~repro.cloud.director.CloudDirector`.
- :class:`RetryBudget` — a global token bucket that bounds retry
  *volume*: every first attempt deposits ``ratio`` tokens, every retry
  withdraws one. Under a widespread outage the budget runs dry and
  retries stop amplifying load (the retry-storm failure mode R-X3
  measures).
- :class:`CircuitBreaker` — per-host-agent; opens after N consecutive
  failures so callers fail fast instead of burning a 120 s timeout per
  attempt, then admits half-open probes after a cooldown.
- :class:`DeadLetter` — the terminal record for a task that exhausted
  its retries; nothing is silently dropped.

Everything here is simulation-layer pure: no imports from
``controlplane``/``cloud`` modules, so policies can live in
:class:`~repro.controlplane.costs.ControlPlaneConfig` without cycles.
"""

from __future__ import annotations

import dataclasses
import enum
import random
import typing

from repro.faults.errors import TransientError

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator
    from repro.sim.stats import MetricsRegistry


class TaskDeadlineExceeded(Exception):
    """A task ran past its deadline.

    Deliberately *not* a :class:`TransientError`: retrying a task that
    already blew its deadline only deepens the backlog.
    """


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter and a transient-only filter.

    ``max_attempts`` counts the first try: ``max_attempts=3`` means one
    try plus at most two retries. ``jitter`` is the randomized fraction
    of each backoff (0 = deterministic, 1 = full jitter).
    """

    max_attempts: int = 3
    base_backoff_s: float = 1.0
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 60.0
    jitter: float = 0.5
    retry_on: tuple[type[BaseException], ...] = (TransientError,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_backoff_s < 0:
            raise ValueError("base_backoff_s must be >= 0")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1.0")
        if self.max_backoff_s < self.base_backoff_s:
            raise ValueError("max_backoff_s must be >= base_backoff_s")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def retryable(self, error: BaseException) -> bool:
        return isinstance(error, self.retry_on)

    def backoff_s(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (1 = first retry)."""
        if attempt < 1:
            raise ValueError("attempt must be >= 1")
        raw = min(
            self.max_backoff_s,
            self.base_backoff_s * self.backoff_multiplier ** (attempt - 1),
        )
        return raw * (1.0 - self.jitter + self.jitter * rng.random())


#: One attempt, no retries — the pre-resilience behaviour.
NO_RETRY = RetryPolicy(max_attempts=1, base_backoff_s=0.0, max_backoff_s=0.0, jitter=0.0)

#: Reasonable default for control-plane tasks.
DEFAULT_RETRY = RetryPolicy()


class RetryBudget:
    """Global retry-volume limiter (token bucket, Finagle-style).

    Each first attempt deposits ``ratio`` tokens (capped); each retry
    withdraws one whole token. When the bucket is dry, retries are
    denied and the failure becomes terminal — bounding retry
    amplification to ``ratio`` of offered load in steady state.
    """

    def __init__(self, ratio: float = 0.2, initial: float = 10.0, cap: float = 100.0) -> None:
        if ratio < 0:
            raise ValueError("ratio must be >= 0")
        if cap < initial:
            raise ValueError("cap must be >= initial")
        self.ratio = ratio
        self.cap = cap
        self._tokens = float(initial)
        self.denied = 0

    @property
    def tokens(self) -> float:
        return self._tokens

    def deposit(self) -> None:
        """Credit the budget for one first attempt."""
        self._tokens = min(self.cap, self._tokens + self.ratio)

    def withdraw(self) -> bool:
        """Spend one token for a retry; False when the budget is dry."""
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        self.denied += 1
        return False


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


#: Numeric encoding for the ``breaker_state`` gauge.
BREAKER_STATE_VALUE = {
    BreakerState.CLOSED: 0.0,
    BreakerState.HALF_OPEN: 1.0,
    BreakerState.OPEN: 2.0,
}


@dataclasses.dataclass(frozen=True)
class BreakerPolicy:
    """Knobs for a :class:`CircuitBreaker`."""

    failure_threshold: int = 5
    cooldown_s: float = 30.0
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")


class CircuitBreaker:
    """Consecutive-failure breaker with half-open probing.

    CLOSED → (``failure_threshold`` consecutive failures) → OPEN →
    (``cooldown_s`` elapses) → HALF_OPEN, admitting up to
    ``half_open_probes`` calls → CLOSED on a success, back to OPEN on a
    failure. Callers ask :meth:`allow` before the call and report the
    outcome with :meth:`record_success` / :meth:`record_failure`.
    """

    def __init__(
        self,
        sim: "Simulator",
        policy: BreakerPolicy,
        name: str = "",
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.sim = sim
        self.policy = policy
        self.name = name
        self.metrics = metrics
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at: float | None = None
        self.opens = 0
        self.fast_fails = 0
        self._probes_inflight = 0

    def _set_state(self, state: BreakerState) -> None:
        self.state = state
        if self.metrics is not None:
            self.metrics.gauge("breaker_state").set(BREAKER_STATE_VALUE[state])

    @property
    def engaged(self) -> bool:
        """True while calls would fail fast: OPEN inside the cooldown, or
        HALF_OPEN with every probe slot taken.

        Read-only, unlike :meth:`allow`: placement layers can steer around
        a tripped host without consuming half-open probes or shifting
        breaker state. Counting exhausted half-open as engaged matters
        under load — once one caller holds the probe, routing anyone else
        at the host only manufactures fast-fails.
        """
        if self.state is BreakerState.HALF_OPEN:
            return self._probes_inflight >= self.policy.half_open_probes
        return (
            self.state is BreakerState.OPEN
            and self.opened_at is not None
            and self.sim.now - self.opened_at < self.policy.cooldown_s
        )

    def allow(self) -> bool:
        """May a call proceed right now? (Counts a probe in half-open.)"""
        if self.state is BreakerState.OPEN:
            assert self.opened_at is not None
            if self.sim.now - self.opened_at >= self.policy.cooldown_s:
                self._set_state(BreakerState.HALF_OPEN)
                self._probes_inflight = 0
            else:
                self.fast_fails += 1
                if self.metrics is not None:
                    self.metrics.counter("breaker_fast_fails").add()
                return False
        if self.state is BreakerState.HALF_OPEN:
            if self._probes_inflight >= self.policy.half_open_probes:
                self.fast_fails += 1
                if self.metrics is not None:
                    self.metrics.counter("breaker_fast_fails").add()
                return False
            self._probes_inflight += 1
        return True

    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self.state is not BreakerState.CLOSED:
            self._set_state(BreakerState.CLOSED)
        self._probes_inflight = 0

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            self._trip()
        elif (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.policy.failure_threshold
        ):
            self._trip()

    def _trip(self) -> None:
        self._set_state(BreakerState.OPEN)
        self.opened_at = self.sim.now
        self.opens += 1
        self._probes_inflight = 0
        if self.metrics is not None:
            self.metrics.counter("breaker_opens").add()


@dataclasses.dataclass(frozen=True)
class DeadLetter:
    """Terminal record of a task that exhausted its retries."""

    task_id: int
    op_type: str
    submitted_at: float
    failed_at: float
    attempts: int
    error: str
