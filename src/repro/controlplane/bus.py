"""The control-plane message bus: topics, backpressure, at-least-once.

The paper's control plane is a pipeline — gateway → director → task
manager → host agents — whose hops this repo originally modeled as direct
Python calls. That hides an entire failure domain: queueing between
tiers, message loss, duplication, reordering, and partitions. This module
makes inter-component delivery first-class:

- **Named topics** with one subscriber each (point-to-point queues, the
  shape every control-plane hop here has). Queues are bounded; the
  overflow policy is configurable per topic: ``block`` (publisher
  backpressure), ``shed_oldest`` (evict the head to dead letters), or
  ``dead_letter`` (reject the incoming message). A topic claimed with
  :meth:`MessageBus.subscribe_shared` instead admits *many* consumers —
  waiting getters are served FIFO, so a shared topic is a work-stealing
  pool (the shard-federation submission topic in
  :mod:`repro.cloud.federation`).
- **Forwarding.** :meth:`MessageBus.forward` re-routes a delivered
  message to another topic *without* consuming its idempotency key: the
  delivered copy is acknowledged (its redelivery timer stops) and a
  fresh copy with the same key, payload, and reply is published to the
  target topic. This is the shard-failover hop — a submission pending on
  a crashed shard's topic moves to the survivors' shared topic, and the
  key discipline still guarantees at-most-once execution.
- **At-least-once delivery.** Every message carries an idempotency key
  and arms a redelivery timer when offered; a copy lost in transit (a
  ``message_drop`` fault window) is re-sent when the timer fires, up to
  ``max_redeliveries`` times, after which the bus gives up: the message
  is dead-lettered and its reply fails with
  :class:`~repro.faults.errors.MessageLost` (a ``TransientError``, so the
  ordinary retry machinery owns the outcome).
- **Exactly-once effects on top.** The bus keeps per-key ``done`` / ``dead``
  sets; :meth:`MessageBus.accept` is the consumer-side gate that admits
  each key at most once and counts late copies as dedups. Task-derived
  keys reuse the journal's ``task-{id}:attempt-{n}`` identity, so a
  duplicated or redelivered message can never re-execute work an earlier
  copy performed.
- **Message-level chaos.** A :class:`BusFaultHook` (armed by the
  ``message_*`` / ``topic_partition`` specs in
  :mod:`repro.faults.schedule`) injects drop, duplicate, delay, reorder,
  and per-topic partition faults, each scopable to a topic subset.

Compatibility switch: a bus constructed with ``direct_calls=True`` (the
default) is *inert* — ``mediated`` is False, components keep calling each
other directly, no consumer processes spawn, and the simulated schedule
is byte-identical to a run with no bus at all (enforced by the
differential test ``tests/controlplane/test_bus_neutrality.py``, the same
discipline as ``fast_resume`` and ``NULL_JOURNAL``).

Instrumentation: publish / queue-wait / deliver spans ride the caller's
span tree (``PHASE_BUS`` / ``PHASE_QUEUE``), and telemetry exposes
per-topic queue-depth probes plus published / delivered / redelivered /
deduped / dropped / shed / dead-letter counters and a queue-wait
histogram. ``python -m repro bus`` demos all of it.
"""

from __future__ import annotations

import random
import typing
from collections import deque
from dataclasses import dataclass

from repro.faults.errors import MessageLost
from repro.sim.events import Event
from repro.telemetry import NULL_TELEMETRY
from repro.tracing import NULL_SPAN, PHASE_BUS, PHASE_QUEUE

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

# Overflow policies for bounded topic queues.
OVERFLOW_BLOCK = "block"            # publisher waits for space (backpressure)
OVERFLOW_SHED_OLDEST = "shed_oldest"  # evict the queue head to dead letters
OVERFLOW_DEAD_LETTER = "dead_letter"  # reject the incoming message

OVERFLOW_POLICIES = (OVERFLOW_BLOCK, OVERFLOW_SHED_OLDEST, OVERFLOW_DEAD_LETTER)


class Message:
    """One in-flight bus message.

    ``key`` is the idempotency identity: redelivered and duplicated copies
    share it, and the consumer-side :meth:`MessageBus.accept` gate admits
    each key at most once. ``reply`` (optional) is the event the consumer
    bridge settles with the handler's outcome; ``task`` (optional) links
    the message to the control-plane task it serves so a bus-level dead
    letter lands in the task manager's deduplicated sink.

    The envelope also carries the originating attempt's trace identity
    (``trace_id`` / ``origin_span_id``, captured from ``span`` at publish
    time): redelivered copies, fault-injected duplicates, and dead letters
    all attribute back to the root trace even after the live span object
    is finished or the copy outlives the attempt that published it.
    """

    __slots__ = (
        "key",
        "payload",
        "topic",
        "reply",
        "task",
        "span",
        "trace_id",
        "origin_span_id",
        "published_at",
        "enqueued_at",
        "redeliveries",
        "acked",
        "in_queue",
        "timer",
        "wait_span",
    )

    def __init__(
        self,
        key: str,
        payload: typing.Any,
        topic: str,
        published_at: float,
        reply: Event | None = None,
        task: typing.Any = None,
        span: typing.Any = NULL_SPAN,
        trace_id: int | None = None,
        origin_span_id: int | None = None,
    ) -> None:
        self.key = key
        self.payload = payload
        self.topic = topic
        self.reply = reply
        self.task = task
        self.span = span
        if trace_id is None and not span.is_null:
            trace_id = span.context.trace_id
            origin_span_id = span.context.span_id
        self.trace_id = trace_id
        self.origin_span_id = origin_span_id
        self.published_at = published_at
        self.enqueued_at = published_at
        self.redeliveries = 0
        self.acked = False
        self.in_queue = False
        self.timer: Event | None = None
        self.wait_span: typing.Any = None

    def clone(self, now: float) -> "Message":
        """A duplicate copy: same identity and reply, fresh delivery state."""
        return Message(
            key=self.key,
            payload=self.payload,
            topic=self.topic,
            published_at=now,
            reply=self.reply,
            task=self.task,
            span=self.span,
            trace_id=self.trace_id,
            origin_span_id=self.origin_span_id,
        )

    def __repr__(self) -> str:
        return f"<Message {self.topic}:{self.key} redeliveries={self.redeliveries}>"


@dataclass
class TopicStats:
    """Per-topic delivery accounting, surfaced by ``python -m repro bus``."""

    published: int = 0
    delivered: int = 0
    redelivered: int = 0
    duplicated: int = 0
    deduped: int = 0
    dropped: int = 0
    delayed: int = 0
    reordered: int = 0
    shed: int = 0
    dead_lettered: int = 0
    forwarded: int = 0
    max_depth: int = 0
    waits: int = 0
    total_wait_s: float = 0.0

    @property
    def mean_wait_s(self) -> float:
        return self.total_wait_s / self.waits if self.waits else 0.0


class _PutRequest(Event):
    """A blocked publisher's wait-for-space event.

    ``withdraw`` hooks the kernel's interrupt path: a publisher
    interrupted while waiting for queue space must not hold its place in
    line.
    """

    __slots__ = ("topic",)

    def __init__(self, sim: "Simulator", topic: "Topic") -> None:
        super().__init__(sim, name=f"bus-put:{topic.name}")
        self.topic = topic

    def withdraw(self) -> None:
        try:
            self.topic.putters.remove(self)
        except ValueError:
            pass


#: Ring size for per-topic dead-letter attribution records.
RECENT_DEAD_LIMIT = 32


class Topic:
    """One named bounded queue: single-subscriber unless marked ``shared``."""

    __slots__ = (
        "bus",
        "name",
        "capacity",
        "overflow",
        "queue",
        "getters",
        "putters",
        "stats",
        "subscribed",
        "shared",
        "recent_dead",
    )

    def __init__(self, bus: "MessageBus", name: str, capacity: int, overflow: str) -> None:
        if capacity < 1:
            raise ValueError(f"topic capacity must be >= 1, got {capacity}")
        if overflow not in OVERFLOW_POLICIES:
            raise ValueError(f"unknown overflow policy {overflow!r}; known: {OVERFLOW_POLICIES}")
        self.bus = bus
        self.name = name
        self.capacity = capacity
        self.overflow = overflow
        self.queue: deque[Message] = deque()
        self.getters: deque[Event] = deque()
        self.putters: deque[_PutRequest] = deque()
        self.stats = TopicStats()
        self.subscribed = False
        self.shared = False
        # (key, trace_id, time, reason) for the last few dead letters —
        # the incident recorder lifts these into bundles.
        self.recent_dead: deque[tuple[str, int | None, float, str]] = deque(
            maxlen=RECENT_DEAD_LIMIT
        )

    @property
    def full(self) -> bool:
        return len(self.queue) >= self.capacity

    @property
    def depth(self) -> int:
        return len(self.queue)

    def get(self) -> Event:
        """Consumer side: an event that fires with the next message."""
        event = self.bus.sim.event(name=f"bus-get:{self.name}")
        self.getters.append(event)
        self.bus._drain(self)
        return event


_MISSING = object()


class BusFaultHook:
    """Message-level fault state for one bus, armed per *source* token.

    The same composition idiom as :class:`~repro.faults.hooks.FaultHook`:
    each fault window registers under an opaque source token, overlapping
    windows compose (drop/duplicate/reorder rates combine as independent
    events, delays take the max), and disarming one window leaves the
    others armed. Every entry may be scoped to a topic subset; an empty
    scope means *all* topics. Healing the last partition on a topic drains
    any backlog it stalled.
    """

    def __init__(self, bus: "MessageBus") -> None:
        self._bus = bus
        self._drops: dict[object, tuple[frozenset[str] | None, float]] = {}
        self._duplicates: dict[object, tuple[frozenset[str] | None, float]] = {}
        self._delays: dict[object, tuple[frozenset[str] | None, float]] = {}
        self._reorders: dict[object, tuple[frozenset[str] | None, float]] = {}
        self._partitions: dict[object, frozenset[str] | None] = {}

    @staticmethod
    def _scope(topics: typing.Iterable[str] | None) -> frozenset[str] | None:
        if not topics:
            return None
        return frozenset(topics)

    # -- arming ------------------------------------------------------------

    def set_drop(self, source: object, rate: float, topics=None) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"drop rate must be in [0, 1], got {rate}")
        self._drops[source] = (self._scope(topics), rate)

    def set_duplicate(self, source: object, rate: float, topics=None) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"duplicate rate must be in [0, 1], got {rate}")
        self._duplicates[source] = (self._scope(topics), rate)

    def set_delay(self, source: object, delay_s: float, topics=None) -> None:
        if delay_s < 0.0:
            raise ValueError(f"delay must be >= 0, got {delay_s}")
        self._delays[source] = (self._scope(topics), delay_s)

    def set_reorder(self, source: object, rate: float, topics=None) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"reorder rate must be in [0, 1], got {rate}")
        self._reorders[source] = (self._scope(topics), rate)

    def set_partition(self, source: object, topics=None) -> None:
        self._partitions[source] = self._scope(topics)

    def disarm(self, source: object) -> None:
        """Remove every fault registered under ``source``."""
        self._drops.pop(source, None)
        self._duplicates.pop(source, None)
        self._delays.pop(source, None)
        self._reorders.pop(source, None)
        healed = self._partitions.pop(source, _MISSING) is not _MISSING
        if healed:
            self._bus._drain_all()

    # -- introspection -----------------------------------------------------

    @property
    def armed(self) -> bool:
        return bool(
            self._drops
            or self._duplicates
            or self._delays
            or self._reorders
            or self._partitions
        )

    @staticmethod
    def _matching(table, topic: str):
        for scope, value in table.values():
            if scope is None or topic in scope:
                yield value

    @staticmethod
    def _combined(rates: typing.Iterable[float]) -> float:
        survive = 1.0
        for rate in rates:
            survive *= 1.0 - rate
        return 1.0 - survive

    def drop_rate(self, topic: str) -> float:
        return self._combined(self._matching(self._drops, topic))

    def duplicate_rate(self, topic: str) -> float:
        return self._combined(self._matching(self._duplicates, topic))

    def reorder_rate(self, topic: str) -> float:
        return self._combined(self._matching(self._reorders, topic))

    def delay_s(self, topic: str) -> float:
        return max(self._matching(self._delays, topic), default=0.0)

    def partitioned(self, topic: str) -> bool:
        return any(scope is None or topic in scope for scope in self._partitions.values())


class MessageBus:
    """The in-sim broker; see the module docstring for semantics.

    Parameters
    ----------
    direct_calls:
        Compatibility switch. True (the default) leaves the bus inert:
        components call each other directly, no consumers spawn, and the
        schedule is byte-identical to a bus-free run. False routes the
        gateway→director, director→task-manager, and task-manager→host-agent
        hops through topics.
    default_capacity / default_overflow:
        Bound and overflow policy for topics not configured explicitly at
        ``subscribe`` time.
    redelivery_timeout_s / max_redeliveries:
        At-least-once knobs: how long an unacknowledged message waits
        before the bus re-sends it, and how many expiries it survives
        before being dead-lettered (``MessageLost``).
    """

    def __init__(
        self,
        sim: "Simulator",
        name: str = "bus",
        rng: random.Random | None = None,
        telemetry=None,
        direct_calls: bool = True,
        default_capacity: int = 64,
        default_overflow: str = OVERFLOW_BLOCK,
        redelivery_timeout_s: float = 30.0,
        max_redeliveries: int = 3,
    ) -> None:
        if default_overflow not in OVERFLOW_POLICIES:
            raise ValueError(
                f"unknown overflow policy {default_overflow!r}; known: {OVERFLOW_POLICIES}"
            )
        self.sim = sim
        self.name = name
        self.rng = rng or random.Random(0)
        self.direct_calls = direct_calls
        self.default_capacity = default_capacity
        self.default_overflow = default_overflow
        self.redelivery_timeout_s = redelivery_timeout_s
        self.max_redeliveries = max_redeliveries
        self.faults = BusFaultHook(self)
        # Where a bus-level dead letter for a task-linked message lands;
        # the management server points this at the task manager's
        # deduplicated sink so bus sheds and retry-layer dead letters are
        # counted once (see TaskManager.record_message_dead_letter).
        self.dead_letter_sink: typing.Callable[[typing.Any, BaseException], None] | None = None
        self._topics: dict[str, Topic] = {}
        # Consumer-side exactly-once state: keys accepted (work executed)
        # and keys given up on (dead-lettered). A key in either set is
        # never executed again.
        self._done_keys: set[str] = set()
        self._dead_keys: set[str] = set()
        self._telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        t = self._telemetry
        labels = {"bus": name}
        self._t_published = t.counter("bus_published_total", help="messages published", **labels)
        self._t_delivered = t.counter("bus_delivered_total", help="messages delivered", **labels)
        self._t_redelivered = t.counter(
            "bus_redelivered_total", help="redelivery timer re-sends", **labels
        )
        self._t_duplicated = t.counter(
            "bus_duplicated_total", help="fault-injected duplicate copies", **labels
        )
        self._t_deduped = t.counter(
            "bus_deduped_total", help="copies suppressed by idempotency keys", **labels
        )
        self._t_dropped = t.counter(
            "bus_dropped_total", help="copies lost in transit (drop faults)", **labels
        )
        self._t_shed = t.counter(
            "bus_shed_total", help="messages evicted by queue overflow", **labels
        )
        self._t_dead_letter = t.counter(
            "bus_dead_letter_total", help="messages the bus gave up on", **labels
        )
        self._t_forwarded = t.counter(
            "bus_forwarded_total", help="messages re-routed to another topic", **labels
        )
        self._t_dead_letter_deduped = t.counter(
            "bus_dead_letter_deduped_total",
            help="dead-letter attempts suppressed (key already done or dead)",
            **labels,
        )
        self._t_queue_wait = t.histogram(
            "bus_queue_wait_s", help="enqueue-to-delivery wait", **labels
        )

    @property
    def mediated(self) -> bool:
        """True when the bus actually carries the control-plane hops."""
        return not self.direct_calls

    # -- topics ------------------------------------------------------------

    def topic(self, name: str, capacity: int | None = None, overflow: str | None = None) -> Topic:
        """Get or create a topic; config applies only on first creation."""
        existing = self._topics.get(name)
        if existing is not None:
            return existing
        topic = Topic(
            self,
            name,
            capacity if capacity is not None else self.default_capacity,
            overflow if overflow is not None else self.default_overflow,
        )
        self._topics[name] = topic
        self._telemetry.probe(
            "bus_queue_depth",
            lambda t=topic: float(len(t.queue)),
            help="messages waiting in the topic queue",
            bus=self.name,
            topic=name,
        )
        # Per-topic TopicStats surfaced as cumulative probes so triage and
        # repro-top can localize bus trouble to a topic through the
        # scraper (probes scrape as levels; windowed increase = max - min).
        for field, help_text in (
            ("published", "messages published to this topic"),
            ("delivered", "messages delivered to the consumer"),
            ("redelivered", "redelivery timer re-sends"),
            ("duplicated", "fault-injected duplicate copies"),
            ("deduped", "copies suppressed by idempotency keys"),
            ("dropped", "copies lost in transit (drop faults)"),
            ("delayed", "publishes stalled by delay faults"),
            ("reordered", "messages that jumped the queue"),
            ("shed", "messages evicted by queue overflow"),
            ("dead_lettered", "messages this topic gave up on"),
            ("forwarded", "messages re-routed to another topic"),
        ):
            self._telemetry.probe(
                f"bus_topic_{field}",
                lambda t=topic, f=field: float(getattr(t.stats, f)),
                help=help_text,
                bus=self.name,
                topic=name,
            )
        return topic

    def subscribe(self, name: str, capacity: int | None = None, overflow: str | None = None) -> Topic:
        """Claim a topic's consumer side; topics are single-subscriber."""
        topic = self.topic(name, capacity=capacity, overflow=overflow)
        if topic.shared:
            raise RuntimeError(f"topic {name!r} is shared; use subscribe_shared")
        if topic.subscribed:
            raise RuntimeError(f"topic {name!r} already has a subscriber")
        topic.subscribed = True
        return topic

    def subscribe_shared(
        self, name: str, capacity: int | None = None, overflow: str | None = None
    ) -> Topic:
        """Join a shared topic as one of many consumers (work-stealing).

        Waiting getters are served FIFO, so whichever consumer has been
        idle longest takes the next message — a pull-based work pool.
        A topic already claimed exclusively cannot be joined, and vice
        versa: the two subscription modes are mutually exclusive per
        topic.
        """
        topic = self.topic(name, capacity=capacity, overflow=overflow)
        if topic.subscribed and not topic.shared:
            raise RuntimeError(f"topic {name!r} already has an exclusive subscriber")
        topic.subscribed = True
        topic.shared = True
        return topic

    def topic_stats(self) -> dict[str, TopicStats]:
        return {name: topic.stats for name, topic in sorted(self._topics.items())}

    def depths(self) -> dict[str, int]:
        return {name: topic.depth for name, topic in sorted(self._topics.items())}

    # -- publishing --------------------------------------------------------

    def publish(
        self,
        topic_name: str,
        payload: typing.Any,
        key: str,
        reply: Event | None = None,
        span=NULL_SPAN,
        task: typing.Any = None,
    ):
        """Publish one message (process-style generator; may block).

        Order of hazards models a real hop: delay faults hold the send,
        the overflow policy gates admission (``block`` backpressures the
        publisher here), and only then does the copy cross the "network",
        where a drop fault may lose it — the redelivery timer re-sends
        lost copies, so delivery is at-least-once.
        """
        topic = self.topic(topic_name)
        message = Message(
            key=key,
            payload=payload,
            topic=topic_name,
            published_at=self.sim.now,
            reply=reply,
            task=task,
            span=span,
        )
        topic.stats.published += 1
        self._t_published.add()
        pub_span = NULL_SPAN
        if not span.is_null:
            pub_span = span.child(
                f"bus.publish:{topic_name}", phase=PHASE_BUS, tags={"key": key}
            )
        try:
            delay = self.faults.delay_s(topic_name)
            if delay > 0.0:
                topic.stats.delayed += 1
                yield self.sim.timeout(delay)
            if topic.overflow == OVERFLOW_BLOCK:
                while topic.full:
                    request = _PutRequest(self.sim, topic)
                    topic.putters.append(request)
                    yield request
            elif topic.overflow == OVERFLOW_SHED_OLDEST:
                if topic.full and topic.queue:
                    victim = topic.queue.popleft()
                    victim.in_queue = False
                    topic.stats.shed += 1
                    self._t_shed.add()
                    self._kill(topic, victim, "shed by overflow")
            elif topic.full:  # OVERFLOW_DEAD_LETTER
                topic.stats.shed += 1
                self._t_shed.add()
                self._kill(topic, message, "rejected by full queue")
                return
            self._offer(topic, message)
        finally:
            pub_span.finish()

    # -- delivery internals ------------------------------------------------

    def _roll(self, rate: float) -> bool:
        return rate > 0.0 and self.rng.random() < rate

    def _offer(self, topic: Topic, message: Message) -> None:
        """Send one copy across the wire: it lands in the queue or is lost."""
        if self._roll(self.faults.drop_rate(topic.name)):
            message.in_queue = False
            topic.stats.dropped += 1
            self._t_dropped.add()
            self._arm_timer(topic, message)
            return
        self._insert(topic, message)
        self._drain(topic)

    def _insert(self, topic: Topic, message: Message) -> None:
        # Redeliveries and duplicate copies bypass the capacity bound: the
        # original was already admitted, so bounded-queue accounting
        # treats them as in-flight rather than new offered load.
        message.in_queue = True
        message.enqueued_at = self.sim.now
        if not message.span.is_null:
            message.wait_span = message.span.child(
                f"bus.queue_wait:{topic.name}", phase=PHASE_QUEUE, tags={"wait": True}
            )
        if topic.queue and self._roll(self.faults.reorder_rate(topic.name)):
            topic.stats.reordered += 1
            topic.queue.insert(self.rng.randrange(len(topic.queue) + 1), message)
        else:
            topic.queue.append(message)
        if len(topic.queue) > topic.stats.max_depth:
            topic.stats.max_depth = len(topic.queue)
        self._arm_timer(topic, message)

    def _arm_timer(self, topic: Topic, message: Message) -> None:
        if message.acked:
            return
        old = message.timer
        if old is not None and not old.processed:
            old.cancel()
        timer = self.sim.timeout(self.redelivery_timeout_s)
        timer.callbacks.append(lambda _event, t=topic, m=message: self._redeliver(t, m))
        message.timer = timer

    def _redeliver(self, topic: Topic, message: Message) -> None:
        """Redelivery timer expired: re-send a lost copy or give up."""
        if message.acked:
            return
        message.redeliveries += 1
        if message.redeliveries > self.max_redeliveries:
            self._kill(topic, message, "redelivery budget exhausted")
            return
        if message.in_queue:
            # Still queued (partition or backlog): the copy is not lost,
            # just waiting — keep the expiry counting toward the budget.
            self._arm_timer(topic, message)
            return
        topic.stats.redelivered += 1
        self._t_redelivered.add()
        if not message.span.is_null:
            message.span.annotate("bus.redeliveries", message.redeliveries)
        self._offer(topic, message)

    def _drain(self, topic: Topic) -> None:
        """Match queued messages to waiting getters (unless partitioned)."""
        if self.faults.partitioned(topic.name):
            return
        while topic.queue and topic.getters:
            message = topic.queue.popleft()
            getter = topic.getters.popleft()
            message.in_queue = False
            wait = self.sim.now - message.enqueued_at
            topic.stats.delivered += 1
            topic.stats.waits += 1
            topic.stats.total_wait_s += wait
            self._t_delivered.add()
            self._t_queue_wait.observe(wait, trace_id=message.trace_id)
            if message.wait_span is not None:
                message.wait_span.finish()
                message.wait_span = None
            if not message.span.is_null:
                message.span.child(
                    f"bus.deliver:{topic.name}",
                    phase=PHASE_BUS,
                    tags={"redeliveries": message.redeliveries},
                ).finish()
            getter.succeed(message)
            if self._roll(self.faults.duplicate_rate(topic.name)):
                clone = message.clone(self.sim.now)
                topic.stats.duplicated += 1
                self._t_duplicated.add()
                self._insert(topic, clone)
        self._release_putters(topic)

    def _release_putters(self, topic: Topic) -> None:
        """Wake blocked publishers, one per free queue slot.

        Over-waking is harmless (a woken publisher re-checks ``full`` and
        re-blocks), but releasing one per slot avoids thundering the whole
        line every delivery.
        """
        free = topic.capacity - topic.depth
        while free > 0 and topic.putters:
            waiter = topic.putters.popleft()
            if waiter.triggered or waiter.cancelled:
                continue
            waiter.succeed()
            free -= 1

    def _drain_all(self) -> None:
        for topic in self._topics.values():
            self._drain(topic)

    def _kill(self, topic: Topic, message: Message, reason: str) -> None:
        """Give up on a message: dead-letter it exactly once per key.

        A killed copy whose key already succeeded (or already
        dead-lettered) is counted as a dedup only — its reply is left
        alone, so a late duplicate can never fail work that another copy
        completed.
        """
        message.acked = True
        if message.timer is not None and not message.timer.processed:
            message.timer.cancel()
        if message.in_queue:
            try:
                topic.queue.remove(message)
            except ValueError:
                pass
            message.in_queue = False
            # Killing a queued message frees a slot; blocked publishers
            # must not stay parked on space that now exists.
            self._release_putters(topic)
        if message.wait_span is not None:
            message.wait_span.finish(error=reason)
            message.wait_span = None
        key = message.key
        if key in self._done_keys or key in self._dead_keys:
            topic.stats.deduped += 1
            self._t_dead_letter_deduped.add()
            return
        self._dead_keys.add(key)
        topic.stats.dead_lettered += 1
        self._t_dead_letter.add()
        topic.recent_dead.append((key, message.trace_id, self.sim.now, reason))
        if not message.span.is_null:
            message.span.annotate("bus.dead_letter", reason)
        error = MessageLost(f"{topic.name}:{key}: {reason}")
        if message.reply is not None and not message.reply.triggered:
            message.reply.fail(error)
        if self.dead_letter_sink is not None and message.task is not None:
            self.dead_letter_sink(message.task, error)

    def forward(self, message: Message, topic_name: str) -> Event:
        """Re-route a delivered message to another topic, keeping its key.

        The delivered copy is acknowledged — its redelivery timer stops —
        but the idempotency key is *not* consumed, so the forwarded copy
        is still executable exactly once wherever it lands. The fresh
        copy carries the same key, payload, reply, task link, and trace
        identity; publication goes through the normal hazard pipeline
        (delay faults, overflow policy, drop faults) as a spawned
        process, whose event is returned.

        This is the shard-failover primitive: a consumer that finds its
        shard inside a crash window forwards pending submissions to the
        survivors' shared topic instead of accepting them.
        """
        message.acked = True
        if message.timer is not None and not message.timer.processed:
            message.timer.cancel()
            message.timer = None
        source = self._topics[message.topic]
        source.stats.forwarded += 1
        self._t_forwarded.add()
        if not message.span.is_null:
            message.span.annotate("bus.forwarded_to", topic_name)
        return self.sim.spawn(
            self.publish(
                topic_name,
                message.payload,
                key=message.key,
                reply=message.reply,
                span=message.span,
                task=message.task,
            ),
            name=f"bus-forward:{message.key}",
        )

    # -- consumer side -----------------------------------------------------

    def accept(self, message: Message) -> bool:
        """Acknowledge a delivered message and gate execution on its key.

        Returns True exactly once per key; late copies (redeliveries the
        original beat to the consumer, fault-injected duplicates, copies
        of a dead key) acknowledge but return False and count as dedups.
        Consumers call this first and skip work when it returns False.
        """
        message.acked = True
        if message.timer is not None and not message.timer.processed:
            message.timer.cancel()
            message.timer = None
        topic = self._topics[message.topic]
        if message.key in self._done_keys or message.key in self._dead_keys:
            topic.stats.deduped += 1
            self._t_deduped.add()
            return False
        self._done_keys.add(message.key)
        return True

    def bridge(self, process: Event, message: Message) -> None:
        """Settle the message's reply with a handler process's outcome."""
        reply = message.reply
        if reply is None:
            return

        def settle(event: Event) -> None:
            if reply.triggered:
                return
            if event._exception is None:
                reply.succeed(event._value)
            else:
                reply.fail(event._exception)

        if process.processed:
            settle(process)
        else:
            process.callbacks.append(settle)


class AgentProxy:
    """Bus-mediated stand-in for a :class:`~repro.controlplane.host_agent.HostAgent`.

    ``call`` publishes to the host's ``agent.{host}`` topic with a
    task-derived idempotency key and waits on the reply; every other
    attribute (``faults``, ``breaker``, ``host``, ``utilization``, …)
    delegates to the real agent, so fault injection, breaker policy, and
    telemetry probes keep working unchanged in mediated mode.
    """

    def __init__(self, bus: MessageBus, agent, topic_name: str) -> None:
        self._bus = bus
        self._agent = agent
        self._topic_name = topic_name
        self._seq = 0

    def __getattr__(self, name: str):
        return getattr(self._agent, name)

    def call(self, kind: str, median_s: float, span=NULL_SPAN, task=None):
        self._seq += 1
        if task is not None:
            key = f"task-{task.task_id}:attempt-{task.attempts}:{kind}:{self._seq}"
        else:
            key = f"{self._agent.host.entity_id}:{kind}:{self._seq}"
        reply = self._bus.sim.event(name=f"bus-reply:{key}")
        yield from self._bus.publish(
            self._topic_name,
            (kind, median_s, span),
            key=key,
            reply=reply,
            span=span,
            task=task,
        )
        result = yield reply
        return result


class _NullBus:
    """The inert bus: ``mediated`` is False and nothing ever runs.

    A shared singleton (:data:`NULL_BUS`) stands in for "no bus
    configured", so the server and director need no None checks.
    """

    __slots__ = ()

    direct_calls = True
    mediated = False

    def topic_stats(self) -> dict[str, TopicStats]:
        return {}

    def depths(self) -> dict[str, int]:
        return {}

    def __repr__(self) -> str:
        return "<NullBus>"


NULL_BUS = _NullBus()

__all__ = [
    "AgentProxy",
    "BusFaultHook",
    "Message",
    "MessageBus",
    "NULL_BUS",
    "OVERFLOW_BLOCK",
    "OVERFLOW_DEAD_LETTER",
    "OVERFLOW_POLICIES",
    "OVERFLOW_SHED_OLDEST",
    "Topic",
    "TopicStats",
]
