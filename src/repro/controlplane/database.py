"""The management database: a connection pool with per-row write costs.

Every task transition and inventory mutation lands here. Under clone
storms this pool is one of the three contended control-plane resources
(with the CPU pool and host-agent slots); its utilization is a headline
series in R-F5.
"""

from __future__ import annotations

import random
import typing

from repro.faults.hooks import FaultHook
from repro.sim.kernel import Simulator
from repro.sim.random import bounded, lognormal_from_median
from repro.sim.resources import Resource
from repro.sim.stats import MetricsRegistry
from repro.tracing import NULL_SPAN, PHASE_DB, PHASE_QUEUE
from repro.controlplane.costs import ControlPlaneCosts


class DatabaseModel:
    """A fixed-size connection pool executing timed reads and writes."""

    def __init__(
        self,
        sim: Simulator,
        costs: ControlPlaneCosts,
        connections: int,
        rng: random.Random,
        batching: bool = False,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.sim = sim
        self.costs = costs
        self.batching = batching
        self.rng = rng
        self.metrics = metrics or MetricsRegistry(sim, prefix="db")
        self.pool = Resource(sim, capacity=connections, name="db-connections")
        self.faults = FaultHook(sim, name="db", rng=rng)
        self._busy_seconds = 0.0
        self._slowdown = 1.0

    def set_slowdown(self, factor: float) -> None:
        """Degrade the database (failure/overload injection). 1.0 = healthy."""
        if factor < 1.0:
            raise ValueError("slowdown factor must be >= 1.0")
        self._slowdown = factor

    def _service_time(self, median: float) -> float:
        draw = lognormal_from_median(self.rng, median, self.costs.sigma)
        return bounded(draw, median * 0.25, median * 10.0) * self._slowdown

    def write(
        self, rows: int = 1, span=NULL_SPAN
    ) -> typing.Generator[typing.Any, typing.Any, float]:
        """Process-style: write ``rows`` row-groups; returns elapsed seconds."""
        if rows < 1:
            raise ValueError("rows must be >= 1")
        per_row = self.costs.db_write_s
        if self.batching:
            per_row /= self.costs.db_batch_factor
        return (yield from self._execute(per_row * rows, "writes", rows, span))

    def read(
        self, rows: int = 1, span=NULL_SPAN
    ) -> typing.Generator[typing.Any, typing.Any, float]:
        """Process-style: read ``rows`` row-groups; returns elapsed seconds."""
        if rows < 1:
            raise ValueError("rows must be >= 1")
        return (yield from self._execute(self.costs.db_read_s * rows, "reads", rows, span))

    def _execute(
        self, median: float, kind: str, rows: int, span=NULL_SPAN
    ) -> typing.Generator[typing.Any, typing.Any, float]:
        start = self.sim.now
        op_span = span.child(f"db.{kind}", phase=PHASE_DB, tags={"rows": rows})
        try:
            # Injected DB faults surface before any connection is consumed:
            # one-shot errors fail the statement, latency windows stretch it.
            factor = self.faults.fire()
            request = self.pool.request()
            wait_span = op_span.child(
                "db.pool_wait", phase=PHASE_QUEUE, tags={"wait": True}
            )
            yield request
            wait_span.finish()
            service = self._service_time(median) * factor
            try:
                yield self.sim.timeout(service)
            finally:
                self.pool.release(request)
        except BaseException as exc:
            op_span.finish(error=type(exc).__name__)
            raise
        op_span.finish()
        self._busy_seconds += service
        self.metrics.counter(kind).add(rows)
        self.metrics.latency(f"{kind}_latency").record(self.sim.now - start)
        return self.sim.now - start

    def utilization(self, since: float = 0.0) -> float:
        """Mean fraction of the pool busy over [since, now]."""
        span = self.sim.now - since
        if span <= 0:
            return 0.0
        return min(1.0, self._busy_seconds / (span * self.pool.capacity))

    @property
    def queue_depth(self) -> int:
        return self.pool.queue_depth
