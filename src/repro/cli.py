"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``profile <name>`` — run the characterization harness over a cloud
  profile and print the report (optionally dump the trace).
- ``experiment <id>`` — run one registered exhibit (R-T1 … R-F10).
- ``storm`` — a one-off clone storm with explicit knobs.
- ``faults`` — a deploy storm under the standard fault schedule, with
  the fault timeline and resilience outcome printed.
- ``recover`` — a clone storm with a management-server crash at a chosen
  point: journal replay, reconciliation verdicts, MTTR, and the
  exactly-once invariant check printed.
- ``trace`` — a traced clone storm: per-phase attribution and the
  critical path printed, span tree exportable as Chrome trace JSON
  (load in ``chrome://tracing`` / Perfetto) or JSONL; ``--sample``
  runs the tracer through tail-based retention on a span budget.
- ``metrics`` — a telemetry-instrumented deploy storm: live-scraped
  roll-ups rendered as a ``top``-style dashboard (utilization, queue
  depths, breaker states, retry budget, burn-rate alerts), with
  Prometheus-text and JSONL exports.
- ``triage`` — a single-fault chaos run with the incident-triage engine
  attached: every SLO alert burst becomes a ranked root-cause verdict
  with its evidence chain, graded against the injected ground truth.
- ``incident`` — the same chaos run with the flight recorder on: every
  fired alert (and server crash) snapshots a self-contained incident
  bundle (windows, exemplars, retained traces, bus stats, verdict),
  rendered and optionally exported as JSON.
- ``federation`` — a skewed multi-tenant deploy storm over bus-federated
  shards: locality-aware routing, work-stealing, spillover, optional
  mid-run shard crash with failover, per-shard steal/spill/reroute
  counters, and the cross-shard exactly-once verdict printed.
- ``hyperscale`` — the R-F-hyperscale fleet cells (up to 1M VMs on raw
  kernel timers) with live events/s and peak-RSS columns.
- ``list`` — enumerate profiles and experiments.
"""

from __future__ import annotations

import argparse
import sys
import typing

from repro.core.experiments import EXPERIMENTS, StormRig, run_experiment
from repro.core.profiler import CloudManagementProfiler
from repro.traces.io import write_csv, write_jsonl
from repro.workloads.profiles import ALL_PROFILES

PROFILES = {profile.name: profile for profile in ALL_PROFILES}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Management-control-plane workload characterization "
        "(IISWC 2013 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    profile_cmd = sub.add_parser("profile", help="characterize one cloud profile")
    profile_cmd.add_argument("name", choices=sorted(PROFILES))
    profile_cmd.add_argument("--hours", type=float, default=4.0)
    profile_cmd.add_argument("--seed", type=int, default=0)
    profile_cmd.add_argument(
        "--trace-out", help="write the operation trace (.csv or .jsonl)"
    )

    experiment_cmd = sub.add_parser("experiment", help="run one exhibit")
    experiment_cmd.add_argument("exp_id", choices=sorted(EXPERIMENTS))
    experiment_cmd.add_argument("--seed", type=int, default=0)
    experiment_cmd.add_argument("--quick", action="store_true")
    experiment_cmd.add_argument(
        "--parallel",
        type=int,
        default=None,
        metavar="N",
        help="fan independent sweep cells across N worker processes "
        "(0 = one per CPU; default: REPRO_BENCH_PARALLEL or serial)",
    )

    storm_cmd = sub.add_parser("storm", help="one clone storm")
    storm_cmd.add_argument("--clones", type=int, default=64)
    storm_cmd.add_argument("--concurrency", type=int, default=16)
    storm_cmd.add_argument("--full", action="store_true", help="full clones (default linked)")
    storm_cmd.add_argument("--hosts", type=int, default=16)
    storm_cmd.add_argument("--seed", type=int, default=0)

    sweep_cmd = sub.add_parser("sweep", help="sensitivity sweep of one constant")
    sweep_cmd.add_argument(
        "parameter", help="costs.<field> or config.<field>, e.g. config.cpu_workers"
    )
    sweep_cmd.add_argument(
        "values", help="comma-separated values, e.g. 2,4,8,16"
    )
    sweep_cmd.add_argument("--seed", type=int, default=0)
    sweep_cmd.add_argument("--clones", type=int, default=64)
    sweep_cmd.add_argument("--full", action="store_true")

    faults_cmd = sub.add_parser(
        "faults", help="deploy storm under the standard fault schedule"
    )
    faults_cmd.add_argument("--duration", type=float, default=600.0,
                            help="arrival window in sim seconds")
    faults_cmd.add_argument("--rate", type=float, default=1.0,
                            help="deploy arrivals per second")
    faults_cmd.add_argument("--scale", type=float, default=1.0,
                            help="fault blast-radius multiplier")
    faults_cmd.add_argument("--seed", type=int, default=0)
    faults_cmd.add_argument("--no-resilience", action="store_true",
                            help="disable retries/breakers/deadlines")

    recover_cmd = sub.add_parser(
        "recover", help="clone storm with a server crash: journal replay demo"
    )
    recover_cmd.add_argument("--clones", type=int, default=12)
    recover_cmd.add_argument("--concurrency", type=int, default=4)
    recover_cmd.add_argument("--full", action="store_true",
                             help="full clones (default linked)")
    recover_cmd.add_argument("--crash-at", type=float, default=10.0,
                             help="crash time in sim seconds")
    recover_cmd.add_argument("--downtime", type=float, default=30.0,
                             help="server downtime in sim seconds")
    recover_cmd.add_argument("--seed", type=int, default=0)

    trace_cmd = sub.add_parser(
        "trace", help="traced clone storm: phase attribution + critical path"
    )
    trace_cmd.add_argument("--clones", type=int, default=16)
    trace_cmd.add_argument("--concurrency", type=int, default=8)
    trace_cmd.add_argument("--full", action="store_true", help="full clones (default linked)")
    trace_cmd.add_argument("--seed", type=int, default=0)
    trace_cmd.add_argument(
        "--chrome-out", help="write spans as Chrome trace-event JSON"
    )
    trace_cmd.add_argument("--jsonl-out", help="write spans as JSONL")
    trace_cmd.add_argument(
        "--sample", type=int, default=None, metavar="BUDGET",
        help="tail-sample traces under a retained-span budget "
        "(default: retain everything)",
    )

    metrics_cmd = sub.add_parser(
        "metrics",
        help="telemetry-instrumented fault storm: top-style dashboard + exports",
    )
    metrics_cmd.add_argument("--duration", type=float, default=600.0,
                             help="arrival window in sim seconds")
    metrics_cmd.add_argument("--rate", type=float, default=1.6,
                             help="deploy arrivals per second")
    metrics_cmd.add_argument("--scale", type=float, default=1.5,
                             help="fault blast-radius multiplier")
    metrics_cmd.add_argument("--seed", type=int, default=0)
    metrics_cmd.add_argument("--interval", type=float, default=5.0,
                             help="scrape cadence in sim seconds")
    metrics_cmd.add_argument("--no-faults", action="store_true",
                             help="run the storm without the fault schedule")
    metrics_cmd.add_argument("--triage", action="store_true",
                             help="attach the incident-triage engine and append "
                             "its verdict drill-down to the dashboard")
    metrics_cmd.add_argument(
        "--prom-out", help="write Prometheus text exposition of the final state"
    )
    metrics_cmd.add_argument("--rollups-out", help="write roll-up windows as JSONL")
    metrics_cmd.add_argument("--alerts-out", help="write the alert timeline as JSONL")

    bus_cmd = sub.add_parser(
        "bus",
        help="bus-mediated deploy storm: topic stats, queue depths, redeliveries",
    )
    bus_cmd.add_argument("--deploys", type=int, default=16,
                         help="catalog deploys to push through the bus")
    bus_cmd.add_argument("--concurrency", type=int, default=4)
    bus_cmd.add_argument("--seed", type=int, default=0)
    bus_cmd.add_argument(
        "--fault",
        choices=("none", "drop", "duplicate", "delay", "reorder", "partition"),
        default="none",
        help="message fault to arm mid-storm (default none)",
    )
    bus_cmd.add_argument("--rate", type=float, default=0.3,
                         help="fault rate (drop/duplicate/reorder) or delay seconds")
    bus_cmd.add_argument("--fault-at", type=float, default=5.0,
                         help="fault window start in sim seconds")
    bus_cmd.add_argument("--fault-duration", type=float, default=60.0,
                         help="fault window length in sim seconds")

    federation_cmd = sub.add_parser(
        "federation",
        help="skewed tenant storm over bus-federated shards: stealing, "
        "spillover, shard-crash failover",
    )
    federation_cmd.add_argument("--shards", type=int, default=3)
    federation_cmd.add_argument("--deploys", type=int, default=48,
                                help="tenant deploys to drive through the federation")
    federation_cmd.add_argument("--concurrency", type=int, default=10)
    federation_cmd.add_argument("--orgs", type=int, default=9)
    federation_cmd.add_argument("--skew", type=float, default=0.8,
                                help="fraction of deploys aimed at shard 0's orgs")
    federation_cmd.add_argument("--seed", type=int, default=0)
    federation_cmd.add_argument("--affinity-only", action="store_true",
                                help="classic org-pinned routing (no bus federation)")
    federation_cmd.add_argument("--crash-at", type=float, default=None,
                                help="crash the hot shard at this sim second")
    federation_cmd.add_argument("--downtime", type=float, default=40.0,
                                help="crash window length in sim seconds")
    federation_cmd.add_argument(
        "--crash-kind", choices=("shard_crash", "server_crash"),
        default="shard_crash",
        help="shard_crash rejects submissions; server_crash kills and replays",
    )
    federation_cmd.add_argument(
        "--fault",
        choices=("none", "drop", "duplicate", "delay", "reorder", "partition"),
        default="none",
        help="message fault to arm on the federation topics (default none)",
    )
    federation_cmd.add_argument("--rate", type=float, default=0.3,
                                help="fault rate (drop/duplicate/reorder) or delay seconds")

    triage_cmd = sub.add_parser(
        "triage",
        help="single-fault chaos run: SLO alerts -> ranked root-cause verdicts",
    )
    triage_cmd.add_argument(
        "--kind",
        default="host_flap",
        help="fault kind to inject (see repro.triage.harness.SWEEP_KINDS), "
        "or 'none' for a fault-free run",
    )
    triage_cmd.add_argument("--seed", type=int, default=0)
    triage_cmd.add_argument("--duration", type=float, default=600.0,
                            help="arrival window in sim seconds")
    triage_cmd.add_argument("--no-evidence", action="store_true",
                            help="omit per-hypothesis evidence chains")

    incident_cmd = sub.add_parser(
        "incident",
        help="chaos run with the flight recorder: alert-triggered bundles",
    )
    incident_cmd.add_argument(
        "--kind",
        default="host_flap",
        help="fault kind to inject (see repro.triage.harness.SWEEP_KINDS), "
        "or 'none' for a fault-free run",
    )
    incident_cmd.add_argument("--seed", type=int, default=0)
    incident_cmd.add_argument("--duration", type=float, default=600.0,
                              help="arrival window in sim seconds")
    incident_cmd.add_argument(
        "--sample", type=int, default=2048, metavar="BUDGET",
        help="tail-sampling span budget for the retained traces",
    )
    incident_cmd.add_argument(
        "--bundle-out",
        help="write the bundles as JSON (one file, or JSONL with .jsonl)",
    )

    hyperscale_cmd = sub.add_parser(
        "hyperscale",
        help="fleet cells to 1M VMs on the hyperscale kernel, with live "
        "throughput and RSS columns",
    )
    hyperscale_cmd.add_argument("--seed", type=int, default=0)
    hyperscale_cmd.add_argument(
        "--quick", action="store_true", help="small fleets (CI smoke sizes)"
    )
    hyperscale_cmd.add_argument(
        "--parallel", type=int, default=None, metavar="N",
        help="fan shard cells across N worker processes (0 = one per CPU)",
    )
    hyperscale_cmd.add_argument(
        "--queue", choices=("calendar", "heap"), default="calendar",
        help="kernel queue backend for the cells (default calendar)",
    )
    hyperscale_cmd.add_argument(
        "--fleet", type=int, action="append", metavar="VMS",
        help="fleet size; repeatable (default: 100k and 1M, or 2k/10k with --quick)",
    )
    hyperscale_cmd.add_argument(
        "--shards", type=int, action="append", metavar="N",
        help="shard count; repeatable (default: 1,4,8 or 1,2 with --quick)",
    )

    sub.add_parser("list", help="list profiles and experiments")
    return parser


def cmd_profile(args: argparse.Namespace) -> int:
    profiler = CloudManagementProfiler(PROFILES[args.name], seed=args.seed)
    result = profiler.run(duration=args.hours * 3600.0)
    print(result.report())
    if args.trace_out:
        if args.trace_out.endswith(".jsonl"):
            count = write_jsonl(result.trace, args.trace_out)
        elif args.trace_out.endswith(".csv"):
            count = write_csv(result.trace, args.trace_out)
        else:
            print("error: --trace-out must end in .csv or .jsonl", file=sys.stderr)
            return 2
        print(f"\nwrote {count} trace records to {args.trace_out}")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    try:
        result = run_experiment(
            args.exp_id, seed=args.seed, quick=args.quick, parallel=args.parallel
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(result.render())
    return 0


def cmd_storm(args: argparse.Namespace) -> int:
    rig = StormRig(seed=args.seed, hosts=args.hosts, datastores=4)
    outcome = rig.closed_loop_storm(
        args.clones, args.concurrency, linked=not args.full
    )
    mode = "full" if args.full else "linked"
    print(f"{mode} storm: {outcome['completed']} clones in {outcome['makespan_s']:.0f}s")
    print(f"  throughput: {outcome['throughput_per_hour']:.0f} clones/hour")
    print(f"  p50 latency: {outcome['latency_p50']:.1f}s")
    print(f"  data written: {outcome['bytes_written_gb']:.0f} GB")
    print(f"  bottleneck: {rig.server.bottleneck()}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.core.sensitivity import sweep

    def parse(token: str):
        token = token.strip()
        for caster in (int, float):
            try:
                return caster(token)
            except ValueError:
                continue
        if token in ("true", "True"):
            return True
        if token in ("false", "False"):
            return False
        return token

    values = [parse(token) for token in args.values.split(",") if token.strip()]
    try:
        result = sweep(
            args.parameter,
            values,
            seed=args.seed,
            total=args.clones,
            linked=not args.full,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(result.render())
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    import dataclasses as _dc
    import random as _random

    from repro.cloud.catalog import Catalog, CatalogItem
    from repro.cloud.director import CloudDirector, DeployRequest
    from repro.cloud.tenancy import Organization
    from repro.controlplane.costs import ControlPlaneConfig, DEFAULT_COSTS
    from repro.controlplane.resilience import BreakerPolicy, NO_RETRY, RetryPolicy
    from repro.datacenter.templates import MEDIUM_LINUX
    from repro.faults import (
        FaultInjector,
        FaultTargets,
        SPEC_KINDS,
        standard_fault_schedule,
    )
    from repro.sim.events import AllOf

    costs = _dc.replace(DEFAULT_COSTS, host_call_timeout_s=20.0)
    if args.no_resilience:
        config = ControlPlaneConfig()
        director_policy = NO_RETRY
    else:
        config = ControlPlaneConfig(
            task_deadline_s=240.0,
            breaker=BreakerPolicy(failure_threshold=3, cooldown_s=45.0),
        )
        director_policy = RetryPolicy(max_attempts=6, base_backoff_s=2.0)
    rig = StormRig(
        seed=args.seed, hosts=16, datastores=4, host_memory_gb=512.0,
        costs=costs, config=config,
    )
    catalog = Catalog("demo")
    item = catalog.add(CatalogItem(name="web", template_name=MEDIUM_LINUX.name))
    org = Organization("demo-org", quota_vms=1_000_000, quota_storage_gb=1e9)
    director = CloudDirector(
        rig.server, rig.cluster, rig.library, catalog,
        retry_policy=director_policy,
    )
    try:
        schedule = standard_fault_schedule(args.duration, scale=args.scale)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    injector = FaultInjector(
        rig.sim,
        FaultTargets.for_server(rig.server),
        schedule,
        rng=rig.streams.stream("fault-injector"),
    ).start()

    requests: list = []

    def one(index: int) -> typing.Generator:
        yield from director.deploy(
            DeployRequest(org=org, item=item, vm_count=1, vapp_name=f"req{index}")
        )

    def arrivals() -> typing.Generator:
        rng = _random.Random(args.seed)
        index = 0
        while rig.sim.now < args.duration:
            yield rig.sim.timeout(rng.expovariate(args.rate))
            if rig.sim.now >= args.duration:
                break
            requests.append(rig.sim.spawn(one(index), name=f"req-{index}"))
            index += 1

    source = rig.sim.spawn(arrivals(), name="arrivals")
    rig.sim.run(until=source)
    if requests:
        rig.sim.run(until=AllOf(rig.sim, requests))
    rig.sim.run(until=rig.sim.spawn(injector.drain(), name="fault-drain"))

    print(f"fault kinds: {', '.join(sorted(SPEC_KINDS))}")
    print("\nfault timeline:")
    for line in injector.timeline():
        print(f"  {line}")
    tasks = rig.server.tasks
    succeeded = sum(len(vapp.vms) for vapp in director.vapps)
    timely = sum(
        len(vapp.vms)
        for vapp in director.vapps
        if vapp.deployed_at is not None and vapp.deployed_at <= args.duration
    )
    print(f"\noffered:       {len(requests)} deploys over {args.duration:.0f}s")
    print(f"succeeded:     {succeeded} ({timely} inside the window)")
    print(f"p99 latency:   {director.deploy_latency_p(0.99):.1f}s")
    print(f"re-places:     {int(director.metrics.counter('vm_retries').value)}")
    print(f"task retries:  {int(tasks.metrics.counter('retries').value)}")
    print(f"dead letters:  {len(tasks.dead_letters)}")
    print(f"unaccounted:   {len(tasks.unaccounted())}")
    return 0


def cmd_recover(args: argparse.Namespace) -> int:
    from repro.controlplane.costs import ControlPlaneConfig
    from repro.controlplane.resilience import RetryPolicy
    from repro.faults import FaultInjector, FaultSchedule, FaultTargets, ServerCrash
    from repro.faults.chaos import check_exactly_once

    if args.crash_at <= 0 or args.downtime <= 0:
        print("error: --crash-at and --downtime must be positive", file=sys.stderr)
        return 2
    config = ControlPlaneConfig(
        max_inflight_tasks=max(1, args.concurrency - 1),
        retry_policy=RetryPolicy(
            max_attempts=4, base_backoff_s=1.0, max_backoff_s=10.0, jitter=0.5
        ),
    )
    rig = StormRig(
        seed=args.seed, hosts=8, datastores=2, config=config, journal=True
    )
    injector = FaultInjector(
        rig.sim,
        FaultTargets.for_server(rig.server),
        FaultSchedule(
            [ServerCrash(start_s=args.crash_at, duration_s=args.downtime, count=1)]
        ),
        rng=rig.streams.stream("recover-injector"),
    ).start()
    outcome = rig.closed_loop_storm(
        args.clones, args.concurrency, linked=not args.full
    )
    rig.sim.run(until=rig.sim.spawn(injector.drain(), name="recover-drain"))
    rig.sim.run()

    mode = "full" if args.full else "linked"
    tasks = rig.server.tasks
    journal = rig.server.journal
    print(
        f"{mode} storm: {outcome['completed']} clones in "
        f"{outcome['makespan_s']:.0f}s with a crash at {args.crash_at:.0f}s "
        f"({args.downtime:.0f}s down)"
    )
    print(
        f"journal: {len(journal)} records "
        f"({len(journal.terminal_counts())} terminal, "
        f"{len(journal.open_task_ids())} open)"
    )
    for index, epoch in enumerate(rig.server.recovery.crashes):
        print(
            f"crash #{index + 1} at {epoch.crashed_at:.1f}s: "
            f"{epoch.interrupted} in-flight interrupted, {epoch.parked} parked; "
            f"restart at {epoch.restarted_at:.1f}s replayed "
            f"{epoch.replayed_records} records in {epoch.replay_s:.2f}s — "
            f"adopted {epoch.adopted}, rolled back {epoch.rolled_back}, "
            f"reissued {epoch.reissued}, requeued {epoch.requeued}"
        )
    print(f"dead letters:  {len(tasks.dead_letters)}")
    print(f"unaccounted:   {len(tasks.unaccounted())}")
    violations = check_exactly_once(rig.server)
    if violations:
        print("exactly-once VIOLATED:")
        for violation in violations:
            print(f"  - {violation}")
        return 1
    print("exactly-once invariant: held")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.analysis.spans import (
        critical_path,
        critical_path_phases,
        phase_attribution,
        queueing_service_split,
    )
    from repro.tracing import write_chrome_trace, write_spans_jsonl

    if args.sample is not None and args.sample < 1:
        print("error: --sample must be >= 1", file=sys.stderr)
        return 2
    rig = StormRig(seed=args.seed, traced=True, sample_budget=args.sample)
    outcome = rig.closed_loop_storm(
        args.clones, args.concurrency, linked=not args.full
    )
    mode = "full" if args.full else "linked"
    tasks = rig.server.tasks.succeeded()
    roots = [task.span for task in tasks]
    print(
        f"{mode} storm: {outcome['completed']} clones traced, "
        f"{len(rig.tracer.spans)} spans, "
        f"{len(rig.tracer.open_spans())} left open"
    )
    if args.sample is not None:
        summary = rig.tracer.retention_summary()
        kept = ", ".join(
            f"{summary[f'kept_{cls}']} {cls}"
            for cls in ("error", "retry", "slow", "normal")
        )
        print(
            f"tail sampling: {summary['retained_spans']} of "
            f"{summary['offered_spans']} spans retained "
            f"(budget {summary['span_budget']}), "
            f"{summary['retained_trees']} trees kept ({kept}), "
            f"{summary['dropped']} dropped, {summary['evicted']} evicted"
        )
        # Dropped trees lost their child index — only retained trees can
        # be attributed or walked for a critical path below.
        retained = {tree.trace_id for tree in rig.tracer.retained_trees()}
        tasks = [
            task for task in tasks if task.span.context.trace_id in retained
        ]
        roots = [task.span for task in tasks]
        if not roots:
            print("(no retained traces to attribute)")
            return 0
        print(f"(attribution below covers the {len(roots)} retained traces)")

    totals: dict[str, float] = {}
    for root in roots:
        for phase, seconds in phase_attribution(root).items():
            totals[phase] = totals.get(phase, 0.0) + seconds
    attributed = sum(totals.values())
    print("\nper-phase attribution (mean s/clone):")
    for phase, seconds in sorted(totals.items(), key=lambda kv: -kv[1]):
        share = seconds / attributed * 100.0 if attributed else 0.0
        print(f"  {phase:<10} {seconds / len(roots):8.2f}  ({share:.0f}%)")

    waits = {"queueing": 0.0, "service": 0.0}
    for root in roots:
        for bucket, seconds in queueing_service_split(root).items():
            waits[bucket] += seconds
    print(
        f"\nqueueing vs service: {waits['queueing'] / len(roots):.2f}s waiting, "
        f"{waits['service'] / len(roots):.2f}s served (per clone)"
    )

    slowest = max(tasks, key=lambda task: task.span.duration)
    segments = critical_path(slowest.span)
    print(f"\ncritical path of the slowest clone ({slowest.span.duration:.2f}s):")
    for phase, seconds in sorted(critical_path_phases(segments).items(), key=lambda kv: -kv[1]):
        print(f"  {phase:<10} {seconds:8.2f}s")

    spans = rig.tracer.spans
    if args.chrome_out:
        count = write_chrome_trace(spans, args.chrome_out)
        print(f"\nwrote {count} trace events to {args.chrome_out} (chrome://tracing)")
    if args.jsonl_out:
        count = write_spans_jsonl(spans, args.jsonl_out)
        print(f"wrote {count} spans to {args.jsonl_out}")
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    import dataclasses as _dc

    from repro.cloud.api import AdmissionShed, ApiGateway
    from repro.cloud.catalog import Catalog, CatalogItem
    from repro.cloud.director import CloudDirector, DeployRequest
    from repro.cloud.tenancy import Organization, User
    from repro.controlplane.costs import ControlPlaneConfig, DEFAULT_COSTS
    from repro.controlplane.resilience import BreakerPolicy, RetryPolicy
    from repro.datacenter.templates import MEDIUM_LINUX
    from repro.faults import FaultInjector, FaultTargets, standard_fault_schedule
    from repro.sim.events import AllOf
    from repro.telemetry import (
        BurnWindow,
        LatencyRule,
        RatioRule,
        render_dashboard,
        write_alerts,
        write_prometheus,
        write_rollups,
    )

    try:
        if args.duration <= 0:
            raise ValueError("duration must be positive")
        if args.rate <= 0:
            raise ValueError("rate must be positive")
        if args.interval <= 0:
            raise ValueError("interval must be positive")
    except ValueError as error_:
        print(f"error: {error_}", file=sys.stderr)
        return 2

    config = ControlPlaneConfig(
        retry_budget_ratio=0.2,
        task_deadline_s=240.0,
        breaker=BreakerPolicy(failure_threshold=3, cooldown_s=45.0),
    )
    rig = StormRig(
        seed=args.seed, hosts=16, datastores=4, host_memory_gb=512.0,
        costs=_dc.replace(DEFAULT_COSTS, host_call_timeout_s=20.0),
        config=config, telemetry=True, scrape_interval_s=args.interval,
        triage=args.triage,
    )
    telemetry = rig.telemetry
    catalog = Catalog("demo")
    item = catalog.add(CatalogItem(name="web", template_name=MEDIUM_LINUX.name))
    org = Organization("demo-org", quota_vms=1_000_000, quota_storage_gb=1e9)
    director = CloudDirector(
        rig.server, rig.cluster, rig.library, catalog,
        retry_policy=RetryPolicy(max_attempts=6, base_backoff_s=2.0),
    )
    gateway = ApiGateway(
        rig.sim, requests_per_minute=600.0, burst=50.0, telemetry=telemetry
    )
    gateway.enable_shedding(lambda: rig.server.tasks.queue_depth, 128.0)
    session = gateway.login(User("tenant", org))

    windows = (
        BurnWindow(short_s=60.0, long_s=180.0, threshold=2.0),
        BurnWindow(short_s=180.0, long_s=600.0, threshold=1.0),
    )
    success = 'tasks_completed_total{outcome="success"}'
    error = 'tasks_completed_total{outcome="error"}'
    telemetry.add_rule(LatencyRule(
        name="deploy-latency-p99", objective=0.95,
        metric="director_deploy_latency_s", threshold_s=60.0, windows=windows,
    ))
    telemetry.add_rule(RatioRule(
        name="task-goodput", objective=0.98,
        bad_metric=error, total_metrics=(success, error), windows=windows,
    ))
    telemetry.add_rule(RatioRule(
        name="dead-letter-rate", objective=0.995,
        bad_metric="tasks_dead_letter_total",
        total_metrics=(success, error), windows=windows,
    ))
    telemetry.start()

    injector = None
    if not args.no_faults:
        try:
            schedule = standard_fault_schedule(args.duration, scale=args.scale)
        except ValueError as error_:
            print(f"error: {error_}", file=sys.stderr)
            return 2
        injector = FaultInjector(
            rig.sim,
            FaultTargets.for_server(rig.server),
            schedule,
            rng=rig.streams.stream("fault-injector"),
        ).start()

    requests: list = []

    def one(index: int) -> typing.Generator:
        try:
            yield from gateway.admit(session)
        except AdmissionShed:
            return
        yield from director.deploy(
            DeployRequest(org=org, item=item, vm_count=1, vapp_name=f"req{index}")
        )

    def arrivals() -> typing.Generator:
        rng = rig.streams.stream("arrivals")
        index = 0
        while rig.sim.now < args.duration:
            yield rig.sim.timeout(rng.expovariate(args.rate))
            if rig.sim.now >= args.duration:
                break
            requests.append(rig.sim.spawn(one(index), name=f"req-{index}"))
            index += 1

    source = rig.sim.spawn(arrivals(), name="arrivals")
    rig.sim.run(until=source)
    if requests:
        rig.sim.run(until=AllOf(rig.sim, requests))
    if injector is not None:
        rig.sim.run(until=rig.sim.spawn(injector.drain(), name="fault-drain"))
    telemetry.stop()

    print(render_dashboard(telemetry, triage=rig.triage))
    if args.prom_out:
        path = write_prometheus(telemetry, args.prom_out)
        print(f"wrote Prometheus exposition to {path}")
    if args.rollups_out:
        path = write_rollups(telemetry, args.rollups_out)
        print(f"wrote roll-up windows to {path}")
    if args.alerts_out:
        path = write_alerts(telemetry, args.alerts_out)
        print(f"wrote alert timeline to {path}")
    return 0


def cmd_bus(args: argparse.Namespace) -> int:
    from repro.cloud.api import ApiGateway
    from repro.cloud.catalog import Catalog, CatalogItem
    from repro.cloud.director import CloudDirector, DeployRequest
    from repro.cloud.tenancy import Organization, User
    from repro.controlplane.costs import ControlPlaneConfig
    from repro.controlplane.resilience import RetryPolicy
    from repro.datacenter.templates import MEDIUM_LINUX
    from repro.faults import FaultInjector, FaultSchedule, FaultTargets
    from repro.faults.chaos import _message_spec, check_exactly_once
    from repro.sim.events import AllOf

    if args.deploys < 1 or args.concurrency < 1:
        print("error: --deploys and --concurrency must be >= 1", file=sys.stderr)
        return 2
    config = ControlPlaneConfig(
        retry_policy=RetryPolicy(
            max_attempts=4, base_backoff_s=1.0, max_backoff_s=10.0, jitter=0.5
        ),
    )
    rig = StormRig(
        seed=args.seed, hosts=8, datastores=2, config=config,
        journal=True, bus=True, direct_calls=False,
    )
    catalog = Catalog("demo")
    item = catalog.add(CatalogItem(name="web", template_name=MEDIUM_LINUX.name))
    org = Organization("demo-org", quota_vms=1_000_000, quota_storage_gb=1e9)
    # The director sees the mediated bus on the server and subscribes its
    # deploy topic; the gateway publishes to it through submit_deploy.
    director = CloudDirector(rig.server, rig.cluster, rig.library, catalog)
    gateway = ApiGateway(rig.sim, requests_per_minute=6000.0, burst=100.0)
    session = gateway.login(User("tenant", org))

    injector = None
    if args.fault != "none":
        spec = _message_spec(
            args.fault, args.rate, args.fault_at, args.fault_duration
        )
        injector = FaultInjector(
            rig.sim,
            FaultTargets.for_server(rig.server),
            FaultSchedule([spec]),
            rng=rig.streams.stream("bus-injector"),
        ).start()

    queue = list(range(args.deploys))

    def worker() -> typing.Generator:
        while queue:
            index = queue.pop(0)
            try:
                yield from gateway.submit_deploy(
                    session,
                    director,
                    DeployRequest(
                        org=org, item=item, vm_count=1, vapp_name=f"req{index}"
                    ),
                )
            except Exception:
                pass

    workers = [
        rig.sim.spawn(worker(), name=f"bus-worker-{w}")
        for w in range(min(args.concurrency, args.deploys))
    ]
    start = rig.sim.now
    rig.sim.run(until=AllOf(rig.sim, workers))
    if injector is not None:
        rig.sim.run(until=rig.sim.spawn(injector.drain(), name="bus-drain"))
    rig.sim.run()
    makespan = rig.sim.now - start

    bus = rig.bus
    print(
        f"bus {bus.name!r}: {args.deploys} deploys through "
        f"{len(bus.topic_stats())} topics in {makespan:.1f}s"
        + (f" (fault: {args.fault})" if args.fault != "none" else "")
    )
    print(
        f"\n{'topic':<28} {'pub':>5} {'dlvr':>5} {'redlv':>5} {'dedup':>5} "
        f"{'drop':>5} {'shed':>5} {'dead':>5} {'depth':>5} {'wait(ms)':>9}"
    )
    totals = {"published": 0, "delivered": 0, "redelivered": 0, "deduped": 0,
              "dropped": 0, "shed": 0, "dead_lettered": 0}
    depths = bus.depths()
    for name, stats in bus.topic_stats().items():
        wait_ms = stats.mean_wait_s * 1000.0
        print(
            f"{name:<28} {stats.published:>5} {stats.delivered:>5} "
            f"{stats.redelivered:>5} {stats.deduped:>5} {stats.dropped:>5} "
            f"{stats.shed:>5} {stats.dead_lettered:>5} {depths[name]:>5} "
            f"{wait_ms:>9.1f}"
        )
        totals["published"] += stats.published
        totals["delivered"] += stats.delivered
        totals["redelivered"] += stats.redelivered
        totals["deduped"] += stats.deduped
        totals["dropped"] += stats.dropped
        totals["shed"] += stats.shed
        totals["dead_lettered"] += stats.dead_lettered
    print(
        f"\ntotals: {totals['published']} published, "
        f"{totals['delivered']} delivered, {totals['redelivered']} redelivered, "
        f"{totals['deduped']} deduped, {totals['dropped']} dropped in transit, "
        f"{totals['shed']} shed, {totals['dead_lettered']} dead-lettered"
    )
    deployed = sum(len(vapp.vms) for vapp in director.vapps)
    tasks = rig.server.tasks
    print(f"deployed VMs:  {deployed}")
    print(f"dead letters:  {len(tasks.dead_letters)}")
    violations = check_exactly_once(rig.server)
    if violations:
        print("exactly-once VIOLATED:")
        for violation in violations:
            print(f"  - {violation}")
        return 1
    print("exactly-once invariant: held")
    return 0


def cmd_triage(args: argparse.Namespace) -> int:
    from repro.triage.harness import SWEEP_KINDS, run_triage_point

    kind = None if args.kind == "none" else args.kind
    if kind is not None and kind not in SWEEP_KINDS:
        print(
            f"error: unknown fault kind {args.kind!r} "
            f"(choose from: none, {', '.join(SWEEP_KINDS)})",
            file=sys.stderr,
        )
        return 2
    if args.duration <= 0:
        print("error: duration must be positive", file=sys.stderr)
        return 2

    point = run_triage_point(
        args.seed, kind, duration_s=args.duration
    )
    print(
        f"chaos run: seed {point.seed}, injected "
        f"{point.kind or 'nothing'}, {point.completed} tasks completed, "
        f"{point.scrapes} scrapes, {point.alerts} alert firings"
    )
    print("\nground truth:")
    for line in point.manifest.describe() or ["  (no faults injected)"]:
        print(f"  {line}")
    print("\nverdicts:")
    if not point.verdicts:
        print("  (no alerts fired, no verdicts)")
    for verdict in point.verdicts:
        for line in verdict.render(evidence=not args.no_evidence):
            print(f"  {line}")
    print()
    for line in point.report.render():
        print(line)
    return 0


def cmd_incident(args: argparse.Namespace) -> int:
    from repro.telemetry import write_incident_bundle, write_incident_bundles
    from repro.triage.harness import SWEEP_KINDS, run_triage_point

    kind = None if args.kind == "none" else args.kind
    if kind is not None and kind not in SWEEP_KINDS:
        print(
            f"error: unknown fault kind {args.kind!r} "
            f"(choose from: none, {', '.join(SWEEP_KINDS)})",
            file=sys.stderr,
        )
        return 2
    if args.duration <= 0:
        print("error: duration must be positive", file=sys.stderr)
        return 2
    if args.sample < 1:
        print("error: --sample must be >= 1", file=sys.stderr)
        return 2

    point = run_triage_point(
        args.seed,
        kind,
        duration_s=args.duration,
        traced=True,
        sample_budget=args.sample,
        recorder=True,
    )
    print(
        f"chaos run: seed {point.seed}, injected "
        f"{point.kind or 'nothing'}, {point.completed} tasks completed, "
        f"{point.alerts} alert firings, {len(point.bundles)} incident "
        f"bundles"
    )
    print("\nground truth:")
    for line in point.manifest.describe() or ["  (no faults injected)"]:
        print(f"  {line}")
    retention = point.retention or {}
    if retention:
        print(
            f"\ntail sampling: {retention['retained_spans']} of "
            f"{retention['offered_spans']} spans retained "
            f"(budget {retention['span_budget']}, "
            f"{retention['retained_trees']} trees)"
        )
    print("\nincident bundles:")
    if not point.bundles:
        print("  (no alerts fired, nothing recorded)")
    for bundle in point.bundles:
        for line in bundle.render():
            print(f"  {line}")
        print()
    if args.bundle_out:
        if args.bundle_out.endswith(".jsonl"):
            path = write_incident_bundles(point.bundles, args.bundle_out)
        elif len(point.bundles) == 1:
            path = write_incident_bundle(point.bundles[0], args.bundle_out)
        else:
            path = write_incident_bundles(point.bundles, args.bundle_out)
        print(f"wrote {len(point.bundles)} bundles to {path}")
    return 0


def cmd_hyperscale(args: argparse.Namespace) -> int:
    from repro.core.experiments import hyperscale_sweep

    points = hyperscale_sweep(
        seed=args.seed,
        quick=args.quick,
        parallel=args.parallel,
        queue=args.queue,
        fleets=args.fleet,
        shard_counts=args.shards,
    )
    print(f"hyperscale fleet cells ({args.queue} queue backend):")
    print(
        f"{'VMs':>9} {'shards':>6} {'deploys':>9} {'expiries':>9} "
        f"{'peak pending':>12} {'drain days':>10} {'events/s':>10} "
        f"{'wall s':>7} {'RSS MB':>7}"
    )
    for point in points:
        print(
            f"{point['vms']:>9,} {point['shards']:>6} {point['deploys']:>9,} "
            f"{point['expiries']:>9,} {point['peak_pending']:>12,} "
            f"{point['makespan_s'] / 86_400.0:>10.1f} "
            f"{point['events_per_s']:>10,.0f} {point['wall_s']:>7.1f} "
            f"{point['rss_mb']:>7,.0f}"
        )
    biggest = max(points, key=lambda point: point["vms"])
    print(
        f"\nlargest cell: {biggest['vms']:,} VMs held "
        f"{biggest['peak_pending']:,} pending timers at peak "
        f"({biggest['events_per_s']:,.0f} events/s, "
        f"{biggest['rss_mb']:,.0f} MB peak RSS)"
    )
    return 0


def cmd_list(_args: argparse.Namespace) -> int:
    print("profiles:")
    for profile in ALL_PROFILES:
        print(f"  {profile.name:<12} {profile.description}")
    print("\nexperiments:")
    for exp_id in sorted(EXPERIMENTS):
        doc = (EXPERIMENTS[exp_id].__doc__ or "").strip().splitlines()[0]
        print(f"  {exp_id:<7} {doc}")
    return 0


def cmd_federation(args: argparse.Namespace) -> int:
    from repro.faults.chaos import run_federation_fault_point

    if args.deploys < 1 or args.concurrency < 1 or args.shards < 1 or args.orgs < 1:
        print("error: counts must be >= 1", file=sys.stderr)
        return 2
    if not 0.0 <= args.skew <= 1.0:
        print("error: --skew must be in [0, 1]", file=sys.stderr)
        return 2
    result = run_federation_fault_point(
        args.seed,
        kind=None if args.fault == "none" else args.fault,
        intensity=args.rate,
        total=args.deploys,
        concurrency=args.concurrency,
        shards=args.shards,
        orgs=args.orgs,
        skew=args.skew,
        crash_at_s=args.crash_at,
        downtime_s=args.downtime,
        crash_kind=args.crash_kind,
        affinity_only=args.affinity_only,
    )
    mode = "affinity-only" if args.affinity_only else "bus-routed"
    print(
        f"federation storm ({mode}): {args.deploys} deploys, "
        f"{args.shards} shards, skew={args.skew:.0%}, seed={args.seed}"
    )
    if args.crash_at is not None:
        print(
            f"  fault: {result.crash_kind} on the hot shard at "
            f"{args.crash_at:.1f}s for {args.downtime:.0f}s"
        )
    if args.fault != "none":
        print(f"  message fault: {args.fault} (intensity {args.rate:g})")
    print()
    header = (
        f"  {'shard':<8} {'tasks_ok':>8} {'steals':>7} {'spills':>7} "
        f"{'reroutes':>8} {'remote':>7}"
    )
    print(header)
    print("  " + "-" * (len(header) - 2))
    for row in result.per_shard:
        print(
            f"  {row['shard']:<8} {row['tasks_completed']:>8} {row['steals']:>7} "
            f"{row['spills']:>7} {row['reroutes']:>8} {row['remote_completions']:>7}"
        )
    print()
    print(
        f"  deploys: {result.completed}/{args.deploys} completed "
        f"({result.failed} failed, {result.dead_letters} dead-lettered)"
    )
    print(
        f"  goodput: {result.goodput_per_hour:.0f}/h  "
        f"p95 deploy latency: {result.p95_latency_s:.1f}s  "
        f"makespan: {result.makespan_s:.1f}s"
    )
    if result.violations:
        print("\ncross-shard exactly-once VIOLATED:")
        for violation in result.violations:
            print(f"  - {violation}")
        return 1
    print("  cross-shard exactly-once: held")
    return 0


_HANDLERS: dict[str, typing.Callable[[argparse.Namespace], int]] = {
    "profile": cmd_profile,
    "experiment": cmd_experiment,
    "storm": cmd_storm,
    "sweep": cmd_sweep,
    "faults": cmd_faults,
    "recover": cmd_recover,
    "trace": cmd_trace,
    "metrics": cmd_metrics,
    "bus": cmd_bus,
    "federation": cmd_federation,
    "triage": cmd_triage,
    "incident": cmd_incident,
    "hyperscale": cmd_hyperscale,
    "list": cmd_list,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
