"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``profile <name>`` — run the characterization harness over a cloud
  profile and print the report (optionally dump the trace).
- ``experiment <id>`` — run one registered exhibit (R-T1 … R-F10).
- ``storm`` — a one-off clone storm with explicit knobs.
- ``list`` — enumerate profiles and experiments.
"""

from __future__ import annotations

import argparse
import sys
import typing

from repro.core.experiments import EXPERIMENTS, StormRig, run_experiment
from repro.core.profiler import CloudManagementProfiler
from repro.traces.io import write_csv, write_jsonl
from repro.workloads.profiles import ALL_PROFILES

PROFILES = {profile.name: profile for profile in ALL_PROFILES}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Management-control-plane workload characterization "
        "(IISWC 2013 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    profile_cmd = sub.add_parser("profile", help="characterize one cloud profile")
    profile_cmd.add_argument("name", choices=sorted(PROFILES))
    profile_cmd.add_argument("--hours", type=float, default=4.0)
    profile_cmd.add_argument("--seed", type=int, default=0)
    profile_cmd.add_argument(
        "--trace-out", help="write the operation trace (.csv or .jsonl)"
    )

    experiment_cmd = sub.add_parser("experiment", help="run one exhibit")
    experiment_cmd.add_argument("exp_id", choices=sorted(EXPERIMENTS))
    experiment_cmd.add_argument("--seed", type=int, default=0)
    experiment_cmd.add_argument("--quick", action="store_true")

    storm_cmd = sub.add_parser("storm", help="one clone storm")
    storm_cmd.add_argument("--clones", type=int, default=64)
    storm_cmd.add_argument("--concurrency", type=int, default=16)
    storm_cmd.add_argument("--full", action="store_true", help="full clones (default linked)")
    storm_cmd.add_argument("--hosts", type=int, default=16)
    storm_cmd.add_argument("--seed", type=int, default=0)

    sweep_cmd = sub.add_parser("sweep", help="sensitivity sweep of one constant")
    sweep_cmd.add_argument(
        "parameter", help="costs.<field> or config.<field>, e.g. config.cpu_workers"
    )
    sweep_cmd.add_argument(
        "values", help="comma-separated values, e.g. 2,4,8,16"
    )
    sweep_cmd.add_argument("--seed", type=int, default=0)
    sweep_cmd.add_argument("--clones", type=int, default=64)
    sweep_cmd.add_argument("--full", action="store_true")

    sub.add_parser("list", help="list profiles and experiments")
    return parser


def cmd_profile(args: argparse.Namespace) -> int:
    profiler = CloudManagementProfiler(PROFILES[args.name], seed=args.seed)
    result = profiler.run(duration=args.hours * 3600.0)
    print(result.report())
    if args.trace_out:
        if args.trace_out.endswith(".jsonl"):
            count = write_jsonl(result.trace, args.trace_out)
        elif args.trace_out.endswith(".csv"):
            count = write_csv(result.trace, args.trace_out)
        else:
            print("error: --trace-out must end in .csv or .jsonl", file=sys.stderr)
            return 2
        print(f"\nwrote {count} trace records to {args.trace_out}")
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    result = run_experiment(args.exp_id, seed=args.seed, quick=args.quick)
    print(result.render())
    return 0


def cmd_storm(args: argparse.Namespace) -> int:
    rig = StormRig(seed=args.seed, hosts=args.hosts, datastores=4)
    outcome = rig.closed_loop_storm(
        args.clones, args.concurrency, linked=not args.full
    )
    mode = "full" if args.full else "linked"
    print(f"{mode} storm: {outcome['completed']} clones in {outcome['makespan_s']:.0f}s")
    print(f"  throughput: {outcome['throughput_per_hour']:.0f} clones/hour")
    print(f"  p50 latency: {outcome['latency_p50']:.1f}s")
    print(f"  data written: {outcome['bytes_written_gb']:.0f} GB")
    print(f"  bottleneck: {rig.server.bottleneck()}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.core.sensitivity import sweep

    def parse(token: str):
        token = token.strip()
        for caster in (int, float):
            try:
                return caster(token)
            except ValueError:
                continue
        if token in ("true", "True"):
            return True
        if token in ("false", "False"):
            return False
        return token

    values = [parse(token) for token in args.values.split(",") if token.strip()]
    try:
        result = sweep(
            args.parameter,
            values,
            seed=args.seed,
            total=args.clones,
            linked=not args.full,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(result.render())
    return 0


def cmd_list(_args: argparse.Namespace) -> int:
    print("profiles:")
    for profile in ALL_PROFILES:
        print(f"  {profile.name:<12} {profile.description}")
    print("\nexperiments:")
    for exp_id in sorted(EXPERIMENTS):
        doc = (EXPERIMENTS[exp_id].__doc__ or "").strip().splitlines()[0]
        print(f"  {exp_id:<7} {doc}")
    return 0


_HANDLERS: dict[str, typing.Callable[[argparse.Namespace], int]] = {
    "profile": cmd_profile,
    "experiment": cmd_experiment,
    "storm": cmd_storm,
    "sweep": cmd_sweep,
    "list": cmd_list,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _HANDLERS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
