"""Result archiving: persist experiment outputs with their provenance.

Reproductions decay when results can't be tied to the code and seeds that
made them. An :class:`ResultArchive` stores each
:class:`~repro.core.experiments.ExperimentResult` as JSON with metadata
(seed, quick flag, package version, free-form tags) and can diff two
stored runs of the same exhibit.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import typing

from repro.core.experiments import ExperimentResult


@dataclasses.dataclass(frozen=True)
class StoredResult:
    """One archived experiment run."""

    exp_id: str
    seed: int
    quick: bool
    version: str
    tags: dict[str, str]
    result: ExperimentResult

    def key(self) -> str:
        mode = "quick" if self.quick else "full"
        return f"{self.exp_id}-seed{self.seed}-{mode}"


class ResultArchive:
    """A directory of JSON experiment results."""

    def __init__(self, directory: str | pathlib.Path) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> pathlib.Path:
        return self.directory / f"{key}.json"

    def store(
        self,
        result: ExperimentResult,
        seed: int,
        quick: bool,
        tags: dict[str, str] | None = None,
    ) -> StoredResult:
        from repro import __version__

        stored = StoredResult(
            exp_id=result.exp_id,
            seed=seed,
            quick=quick,
            version=__version__,
            tags=dict(tags or {}),
            result=result,
        )
        payload = {
            "exp_id": stored.exp_id,
            "seed": stored.seed,
            "quick": stored.quick,
            "version": stored.version,
            "tags": stored.tags,
            "title": result.title,
            "headers": result.headers,
            "rows": [[str(cell) for cell in row] for row in result.rows],
            "series": {
                label: [[x, y] for x, y in pairs]
                for label, pairs in result.series.items()
            },
            "notes": result.notes,
        }
        self._path(stored.key()).write_text(json.dumps(payload, indent=2))
        return stored

    def load(self, key: str) -> StoredResult:
        path = self._path(key)
        if not path.exists():
            raise KeyError(f"no stored result {key!r} in {self.directory}")
        payload = json.loads(path.read_text())
        result = ExperimentResult(
            exp_id=payload["exp_id"],
            title=payload["title"],
            headers=list(payload["headers"]),
            rows=[list(row) for row in payload["rows"]],
            series={
                label: [(x, y) for x, y in pairs]
                for label, pairs in payload["series"].items()
            },
            notes=payload["notes"],
        )
        return StoredResult(
            exp_id=payload["exp_id"],
            seed=payload["seed"],
            quick=payload["quick"],
            version=payload["version"],
            tags=dict(payload["tags"]),
            result=result,
        )

    def keys(self) -> list[str]:
        return sorted(path.stem for path in self.directory.glob("*.json"))

    def diff(self, key_a: str, key_b: str) -> list[str]:
        """Human-readable cell-level differences between two stored runs."""
        a = self.load(key_a)
        b = self.load(key_b)
        if a.exp_id != b.exp_id:
            raise ValueError(f"cannot diff {a.exp_id} against {b.exp_id}")
        differences: list[str] = []
        if a.result.headers != b.result.headers:
            differences.append(
                f"headers: {a.result.headers} != {b.result.headers}"
            )
            return differences
        rows_a = {tuple(row[:1]): row for row in a.result.rows}
        rows_b = {tuple(row[:1]): row for row in b.result.rows}
        for row_key in sorted(set(rows_a) | set(rows_b), key=str):
            row_a = rows_a.get(row_key)
            row_b = rows_b.get(row_key)
            if row_a is None or row_b is None:
                differences.append(f"row {row_key[0]!r}: only in one run")
                continue
            for header, cell_a, cell_b in zip(a.result.headers, row_a, row_b):
                if str(cell_a) != str(cell_b):
                    differences.append(
                        f"row {row_key[0]!r} / {header}: {cell_a} -> {cell_b}"
                    )
        return differences
