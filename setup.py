"""Setup shim for environments without the `wheel` package.

The offline environment here ships setuptools 65.5 without `wheel`, so
PEP 660 editable installs fail; `pip install -e . --no-build-isolation
--no-use-pep517` falls back to `setup.py develop` via this shim. All real
metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
