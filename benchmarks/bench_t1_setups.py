"""R-T1: setup characteristics of the two clouds and the baseline."""


def test_bench_t1_setups(exhibit):
    result = exhibit("R-T1")
    setups = [row[0] for row in result.rows]
    assert setups == ["cloud_a", "cloud_b", "classic_dc"]
    # Clouds are linked-clone shops; the classic DC is not.
    linked = {row[0]: float(row[6].rstrip("%")) for row in result.rows}
    assert linked["cloud_a"] > 90
    assert linked["classic_dc"] < 10
