"""R-F-alerts: burn-rate alert timeline under the standard fault schedule.

Expected shape: the telemetry pipeline's multi-window burn-rate rules
surface every injected fault window *before* that fault's goodput trough
(the worst 60 s success-rate window it causes) — detection leads damage.
The alert timeline and per-window roll-ups land in the exhibit notes.
"""


def test_bench_alerts_timeline(exhibit):
    result = exhibit("R-F-alerts")
    assert result.rows, "no fault windows analyzed"
    for row in result.rows:
        kind, _window, _trough, _goodput, first_alert, _fired, lead = row
        assert first_alert != "(none)", f"fault {kind} never surfaced by an alert"
        assert float(lead) >= 0.0, f"fault {kind} alerted after its trough"
    # The timeline itself made it into the exhibit.
    assert "alert timeline:" in result.notes
    assert "FIRE" in result.notes
