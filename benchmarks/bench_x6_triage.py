"""R-X6 (extension): automated incident triage vs injected ground truth.

Twenty randomized single-fault chaos runs (two per sweep kind) on the
bus-mediated resilient deploy storm; the triage engine turns SLO alert
bursts into ranked root-cause verdicts and the scorer grades them against
the injector's resolved manifest. Expected shape: every sweep kind is
injected and scored, the pooled top-1 fault-kind accuracy clears 0.8 and
window recall clears 0.7 (the ISSUE gates), named-kind precision stays
high (the no-culprit path absorbs unexplained alerts instead of
mis-naming), and the notes carry the pooled confusion matrix.
"""


def test_bench_x6_triage(exhibit):
    result = exhibit("R-X6")

    rows = {row[0]: row for row in result.rows}
    assert "overall" in rows

    # Every sweep kind was injected at least once and landed a row.
    from repro.triage.harness import QUICK_KINDS, SWEEP_KINDS

    expected = set(QUICK_KINDS) if len(result.rows) <= len(QUICK_KINDS) + 2 \
        else set(SWEEP_KINDS)
    assert expected <= {label for label in rows if label != "overall"}
    for kind in expected:
        assert int(rows[kind][1]) >= 1  # injected

    # The ISSUE gates, recomputed from the overall row.
    overall = rows["overall"]
    injected, recalled = int(overall[1]), int(overall[2])
    assert recalled / injected >= 0.7  # window recall
    assert float(overall[4]) >= 0.8  # pooled precision
    assert "PASS" in result.notes
    assert "confusion matrix" in result.notes
