"""R-F6: reconfiguration cost vs inventory scale.

Paper claim 4. Expected shape: datastore-rescan latency grows with the
number of mounting hosts, and add-host latency is dominated by per-
datastore rescans — both get *more* expensive exactly as clouds grow,
while cloud provisioning demands they run *more often*.
"""


def test_bench_f6_reconfig_scale(exhibit):
    result = exhibit("R-F6")
    rescans = [(int(row[0]), float(row[2])) for row in result.rows]
    addhosts = [(int(row[0]), float(row[3])) for row in result.rows]
    # Rescan cost grows with host count.
    assert rescans[-1][1] > rescans[0][1]
    # Add-host cost stays roughly flat in host count (it scales with the
    # datastore count, fixed here) but is always substantial.
    assert all(latency > 10.0 for _, latency in addhosts)
