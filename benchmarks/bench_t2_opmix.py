"""R-T2: management operation mix — clouds vs classic datacenter.

Paper claim 2: cloud workflows differ from typical datacenter workflows.
Expected shape: cloud traces are provisioning-dominated (deploy/destroy at
the top); the classic trace is power/maintenance-dominated with
provisioning in the noise.
"""


def test_bench_t2_opmix(exhibit):
    result = exhibit("R-T2")
    fractions = {
        row[0]: {"cloud_a": float(row[1]), "cloud_b": float(row[2]), "classic_dc": float(row[3])}
        for row in result.rows
    }
    provisioning = {"deploy", "destroy"}
    for label in ("cloud_a", "cloud_b"):
        share = sum(fractions[op][label] for op in provisioning if op in fractions)
        assert share > 30.0, f"{label} provisioning share {share}"
    classic_share = sum(
        fractions[op]["classic_dc"] for op in provisioning if op in fractions
    )
    cloud_share = sum(fractions[op]["cloud_a"] for op in provisioning if op in fractions)
    assert cloud_share > 2 * classic_share
    # Top cloud_a operation is a provisioning verb.
    assert result.rows[0][0] in provisioning
