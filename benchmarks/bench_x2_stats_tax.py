"""R-X2 (extension): the statistics-collection tax on provisioning.

Expected shape: higher stats levels (more rows per host per cycle) eat
database headroom and reduce linked-clone storm throughput.
"""


def test_bench_x2_stats_tax(exhibit):
    result = exhibit("R-X2")
    throughput = {int(row[0]): float(row[1]) for row in result.rows}
    levels = sorted(throughput)
    # Level 4 measurably slower than no collection.
    assert throughput[levels[-1]] < 0.95 * throughput[0]
