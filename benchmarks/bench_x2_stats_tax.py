"""R-X2 (extension): the statistics-collection tax on provisioning.

Expected shape: higher stats levels (more rows per host per cycle) eat
database headroom and reduce linked-clone storm throughput. The modeled
stats load is read back through the telemetry scraper's roll-ups, so the
scraped rows/s must track the level's row multiplier.
"""


def test_bench_x2_stats_tax(exhibit):
    result = exhibit("R-X2")
    throughput = {int(row[0]): float(row[1]) for row in result.rows}
    levels = sorted(throughput)
    # Level 4 measurably slower than no collection.
    assert throughput[levels[-1]] < 0.95 * throughput[0]
    # The scraper sees the stats load grow strictly with the level.
    scraped = [float(row[4]) for row in result.rows]
    assert scraped == sorted(scraped)
    assert scraped[0] == 0.0 and scraped[-1] > 0.0
