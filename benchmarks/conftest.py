"""Benchmark harness shared bits.

Each ``bench_*`` module regenerates one reconstructed exhibit (table or
figure) via the experiment registry, prints it, persists it under
``benchmarks/results/``, and asserts the shape the paper reports.

Set ``REPRO_BENCH_QUICK=1`` to run shrunken sizes (CI smoke).
"""

import os
import pathlib

import pytest

QUICK = os.environ.get("REPRO_BENCH_QUICK", "0") == "1"
SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def record(result) -> None:
    """Print the exhibit; persist text and (if any) series CSV."""
    from repro.analysis.report import export_series_csv

    RESULTS_DIR.mkdir(exist_ok=True)
    text = result.render() + "\n"
    (RESULTS_DIR / f"{result.exp_id}.txt").write_text(text)
    if result.series:
        export_series_csv(result.series, RESULTS_DIR / f"{result.exp_id}.csv")
    print("\n" + text)


@pytest.fixture
def exhibit(benchmark):
    """Run one experiment exactly once under pytest-benchmark timing."""

    def run(exp_id: str):
        from repro.core.experiments import run_experiment

        result = benchmark.pedantic(
            run_experiment,
            args=(exp_id,),
            kwargs={"seed": SEED, "quick": QUICK},
            rounds=1,
            iterations=1,
        )
        record(result)
        return result

    return run
