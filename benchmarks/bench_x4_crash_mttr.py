"""R-X4 (extension): crash recovery — MTTR and goodput vs server downtime.

A clone storm with the task journal on is crashed at several points and
downtime levels, then measured against the identical no-crash baseline.
Expected shape: every admitted clone still lands in exactly one terminal
state (nothing lost, nothing duplicated), MTTR grows with downtime, and
goodput degrades from the baseline as downtime stretches.
"""


def test_bench_x4_crash_mttr(exhibit):
    result = exhibit("R-X4")

    baseline = result.rows[0]
    assert baseline[0] == "none"
    crash_rows = result.rows[1:]
    assert crash_rows
    total = int(baseline[2])
    for row in crash_rows:
        completed, dead = int(row[2]), int(row[3])
        # Exactly-once: every clone completes despite the crash, none die.
        assert completed == total
        assert dead == 0
        assert int(row[4]) > 0  # the crash actually parked in-flight work
        assert float(row[-1]) > 0.0  # and MTTR was measurable

    mttr = dict(result.series["MTTR (s) vs downtime (s)"])
    goodput = dict(result.series["goodput (clones/h) vs downtime (s)"])
    downtimes = sorted(mttr)
    assert len(downtimes) >= 2
    # More downtime -> longer recovery, less goodput.
    assert mttr[downtimes[0]] < mttr[downtimes[-1]]
    assert goodput[downtimes[0]] > goodput[downtimes[-1]]
    assert all(value < float(baseline[8]) for value in goodput.values())
