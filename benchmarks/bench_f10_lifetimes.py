"""R-F10: VM lifetime distributions, cloud vs classic datacenter.

Expected shape: cloud median lifetimes in hours; classic in months —
the churn that multiplies cloud provisioning rates (claim 2).
"""


def test_bench_f10_lifetimes(exhibit):
    result = exhibit("R-F10")
    p50 = {row[0]: float(row[1]) for row in result.rows}
    assert p50["cloud_a"] < 24.0          # hours
    assert p50["classic_dc"] > 24.0 * 20  # > 20 days, in hours
    for label, cdf in result.series.items():
        values = [value for value, _ in cdf]
        assert values == sorted(values), label
