"""R-X7 (extension): incident flight recorder on a span budget.

The R-X6 chaos sweep re-run with the tail sampler and the flight
recorder on: every run traces under a fixed span budget, every fired
alert (or server crash) snapshots a self-contained incident bundle.
Expected shape: every alerting run produces at least one bundle whose
retained spans overlap the injected fault window (coverage 100%), and
pooled retained spans stay under a quarter of what unbounded tracing
would have kept — the exhibit's evidence that post-hoc incident
debugging survives a fixed trace-memory budget.
"""


def test_bench_x7_flight_recorder(exhibit):
    result = exhibit("R-X7")

    rows = {row[0]: row for row in result.rows}
    assert "overall" in rows

    # Every swept kind landed a row and was injected at least once.
    from repro.triage.harness import QUICK_KINDS, SWEEP_KINDS

    expected = set(QUICK_KINDS) if len(result.rows) <= len(QUICK_KINDS) + 2 \
        else set(SWEEP_KINDS)
    assert expected <= {label for label in rows if label != "overall"}
    for kind in expected:
        assert int(rows[kind][1]) >= 1  # runs

    # The ISSUE gates: every alerting run covered, retention bounded.
    overall = rows["overall"]
    alerting, covered = int(overall[2]), int(overall[4])
    assert alerting > 0
    assert covered == alerting
    assert overall[5] == "PASS"
    assert "retention:" in result.notes
    assert "FAIL" not in result.notes
