"""R-X1 (extension): HA restart-storm recovery time vs VM density.

Expected shape: recovery time grows with the number of VMs on the failed
host — availability recovery is control-plane work, so cloud-scale VM
densities stretch it.
"""


def test_bench_x1_restart_storm(exhibit):
    result = exhibit("R-X1")
    recovery = [(int(row[0]), float(row[2])) for row in result.rows]
    # All VMs restarted at every density.
    assert all(int(row[1]) == int(row[0]) for row in result.rows)
    # Recovery time grows with density.
    assert recovery[-1][1] > recovery[0][1]
