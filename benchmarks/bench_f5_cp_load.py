"""R-F5: control-plane utilization vs linked-clone provisioning rate.

Expected shape: with zero data-plane bytes, a *control-plane* resource
(management-server CPU here) climbs toward 1.0 as the offered rate rises,
and operation latency blows up past the knee — the management control
plane is the limiting factor in deploying cloud resources.
"""


def test_bench_f5_cp_load(exhibit):
    result = exhibit("R-F5")
    rows = [
        {
            "rate": float(row[0]),
            "cpu": float(row[2]),
            "db": float(row[3]),
            "hostd": float(row[4]),
            "p50": float(row[5]),
            "bottleneck": row[6],
        }
        for row in result.rows
    ]
    # CPU utilization is monotone in offered rate and saturates.
    cpus = [row["cpu"] for row in rows]
    assert cpus == sorted(cpus)
    assert cpus[-1] > 0.9
    # The bottleneck is a control-plane resource, and it isn't the storage
    # plane: hostd/db stay far below the saturated resource.
    assert rows[-1]["bottleneck"] == "cpu"
    assert rows[-1]["db"] < 0.5
    assert rows[-1]["hostd"] < 0.5
    # Latency collapse past the knee.
    assert rows[-1]["p50"] > 5 * rows[0]["p50"]
