"""R-F7: task-queue depth during an MMPP provisioning burst.

Expected shape: queue depth spikes during bursts (well above the
time-mean) and drains between them; everything still completes.
"""


def test_bench_f7_queue_depth(exhibit):
    result = exhibit("R-F7")
    metrics = {row[0]: float(row[1]) for row in result.rows}
    assert metrics["clones completed"] > 0
    assert metrics["max queue depth"] >= 3 * max(0.1, metrics["time-mean queue depth"])
    depth_series = next(iter(result.series.values()))
    assert depth_series[-1][1] == 0  # fully drained
