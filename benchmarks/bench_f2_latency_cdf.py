"""R-F2: per-operation latency distributions under cloud load.

Expected shape: heavy-tailed bodies (p99 >> p50); deploys slower than
power operations; CDFs monotone.
"""


def test_bench_f2_latency_cdf(exhibit):
    result = exhibit("R-F2")
    stats = {row[0]: {"p50": float(row[2]), "p99": float(row[4])} for row in result.rows}
    if "deploy" in stats and "power_on" in stats:
        assert stats["deploy"]["p50"] > stats["power_on"]["p50"]
    for op, s in stats.items():
        assert s["p99"] >= s["p50"], op
    for label, cdf in result.series.items():
        fractions = [fraction for _, fraction in cdf]
        assert fractions == sorted(fractions), label
