"""Microbenchmarks of the simulation substrate itself.

Unlike the exhibit benches (single-shot experiment regeneration), these
use pytest-benchmark's repeated rounds to measure the DES kernel's raw
speed — the quantity that bounds how large a datacenter we can simulate.
"""

import random

from repro.sim import AllOf, Event, Resource, Simulator
from repro.storage import FairShareLink


def run_timeout_chain(events):
    sim = Simulator()

    def proc():
        for _ in range(events):
            yield sim.timeout(1.0)

    sim.spawn(proc())
    sim.run()
    return sim.now


def test_kernel_event_throughput(benchmark):
    """Dispatch 20k sequential timeout events."""
    result = benchmark(run_timeout_chain, 20_000)
    assert result == 20_000.0


def run_resource_contention(processes, cycles):
    sim = Simulator()
    resource = Resource(sim, capacity=4)
    done = []

    def proc():
        for _ in range(cycles):
            request = resource.request()
            yield request
            yield sim.timeout(1.0)
            resource.release(request)
        done.append(True)

    for _ in range(processes):
        sim.spawn(proc())
    sim.run()
    return len(done)


def test_resource_handoff_throughput(benchmark):
    """100 processes x 50 acquire/hold/release cycles on one pool."""
    result = benchmark(run_resource_contention, 100, 50)
    assert result == 100


def run_fair_share_churn(transfers):
    sim = Simulator()
    link = FairShareLink(sim, capacity_bps=1e6)
    finished = []

    def submit(index):
        yield sim.timeout(index * 0.1)
        transfer = yield link.transfer(1e4 + index)
        finished.append(transfer)

    for index in range(transfers):
        sim.spawn(submit(index))
    sim.run()
    return len(finished)


def test_fair_share_reschedule_cost(benchmark):
    """500 overlapping transfers forcing continual rate recomputation."""
    result = benchmark(run_fair_share_churn, 500)
    assert result == 500


def run_spawn_churn(waves, width):
    """Process churn: waves of short-lived children joined by a driver.

    Exercises the spawn bootstrap, process-end events, and the
    yield-of-a-finished-process (same-tick resume) path.
    """
    sim = Simulator()
    completed = []

    def child(index):
        yield sim.timeout(1.0 + (index % 3))
        return index

    def driver():
        for wave in range(waves):
            children = [sim.spawn(child(i)) for i in range(width)]
            yield AllOf(sim, children)
            # Joining a finished process hits the same-tick resume queue.
            completed.append((yield children[-1]))

    sim.spawn(driver())
    sim.run()
    return len(completed)


def test_spawn_churn_throughput(benchmark):
    """400 waves x 12 short-lived processes: spawn/finish/join churn."""
    result = benchmark(run_spawn_churn, 400, 12)
    assert result == 400


def run_cancel_storm(cycles):
    """FairShareLink-style cancel/reschedule storm on the raw kernel.

    Each cycle cancels the armed completion timer and arms a fresh one —
    exactly what a fair-share link does on every membership change. Returns
    the peak heap size, which heap hygiene must keep bounded.
    """
    sim = Simulator()
    peak = 0

    def driver():
        nonlocal peak
        timer = None
        for _ in range(cycles):
            if timer is not None:
                timer.cancel()
            timer = Event(sim, name="completion")
            timer.succeed(delay=1000.0)
            if sim.queue_depth > peak:
                peak = sim.queue_depth
            yield sim.timeout(0.01)

    sim.spawn(driver())
    sim.run()
    return peak


def test_cancel_storm_heap_bounded(benchmark):
    """20k cancel/rearm cycles; the heap must stay compact throughout."""
    peak = benchmark(run_cancel_storm, 20_000)
    # Without hygiene the heap grows to ~cycles entries; with it, the dead
    # never outnumber the live by more than the compaction threshold.
    assert peak < 200


def run_calendar_churn(standing, cycles, queue):
    """Hyperscale head churn: a near-term storm over a deep standing set.

    The fleet shape from the paper: ``standing`` long-lived lifetime timers
    spread over a day (armed once, still pending when the bench ends) while
    a storm of short control-plane service timers fires and re-arms at the
    head of the schedule, ``cycles`` times in total. Every storm dispatch
    makes the heap sift the full O(log n) height of the standing set; the
    calendar queue serves and refills its head buckets for amortized O(1),
    which is the gap this bench exists to record.

    The collector is paused for the duration: the standing timers are
    long-lived by construction, and generational rescans of a deliberately
    huge live set would otherwise drown the queue cost being measured.
    Storm timers are ``sim.timeout()`` objects held by nobody, so the
    re-arm path also exercises the kernel's timeout pool.
    """
    import gc

    sim = Simulator(queue=queue)
    rng = random.Random(0)
    draw = rng.random
    timeout = sim.timeout
    fired = 0
    stop = Event(sim, name="stop")

    def rearm(event):
        nonlocal fired
        fired += 1
        if fired >= cycles:
            if fired == cycles:
                stop.succeed()
            return
        timeout(draw()).callbacks.append(rearm)

    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(standing):
            timeout(1.0 + draw() * 86_400.0)
        for _ in range(64):  # storm timers in flight
            timeout(draw()).callbacks.append(rearm)
        sim.run(until=stop)
    finally:
        if gc_was_enabled:
            gc.enable()
    return fired


def test_calendar_churn_throughput(benchmark):
    """300k standing timers, 1.2M fire/re-arm cycles on the calendar backend.

    The shape matters: the standing set must be deep (below ~100k timers
    the C-accelerated heap's sift is still cheap enough to tie) and the
    storm must dominate the runtime (the one-time arming phase costs the
    same on both backends and only dilutes the measured gap).
    """
    fired = benchmark(run_calendar_churn, 300_000, 1_200_000, "calendar")
    assert fired == 1_200_000


def run_batch_sampling(draws, batched):
    """Workload variate generation: arrival gap + lifetime per deploy.

    ``batched=False`` is the per-event path the driver used before batching
    (``rng.expovariate`` + ``LifetimeModel.sample``); ``batched=True`` is
    the prefetched path it uses now. Both consume the streams identically,
    so the checksum doubles as a value-identity spot check.
    """
    from repro.workloads import BatchedExponentials, BatchedLifetimes
    from repro.workloads.lifetimes import CLOUD_A_LIFETIME

    arrivals = random.Random(0)
    lifetimes = random.Random(1)
    rate = 1.0 / 300.0
    total = 0.0
    if batched:
        gaps = BatchedExponentials(arrivals, rate)
        draws_iter = BatchedLifetimes(CLOUD_A_LIFETIME, lifetimes)
        for _ in range(draws):
            total += gaps.next() + draws_iter.next()
    else:
        expovariate = arrivals.expovariate
        sample = CLOUD_A_LIFETIME.sample
        for _ in range(draws):
            total += expovariate(rate) + sample(lifetimes)
    return total


def test_batch_sampling_throughput(benchmark):
    """200k arrival-gap + lifetime draws through the batched samplers."""
    total = benchmark(run_batch_sampling, 200_000, True)
    assert total == run_batch_sampling(200_000, False)  # value identity


def run_storm_telemetry_off(total, concurrency):
    """A full control-plane clone storm with telemetry disabled.

    Guards the null-telemetry hot path: every instrumentation point added
    for the live pipeline costs one no-op bound-method call here, so this
    end-to-end rate catches any creep in the disabled-path overhead.
    """
    from repro.core.experiments import StormRig

    rig = StormRig(seed=0, hosts=8, datastores=2, telemetry=False)
    summary = rig.closed_loop_storm(total=total, concurrency=concurrency, linked=True)
    return int(summary["completed"])


def test_storm_telemetry_off_throughput(benchmark):
    """48 linked clones, concurrency 12, NULL_TELEMETRY instrumentation."""
    completed = benchmark(run_storm_telemetry_off, 48, 12)
    assert completed == 48


def run_storm_journal_on(total, concurrency):
    """The same clone storm with the write-ahead task journal enabled.

    The journal appends three records per task synchronously (no sim
    events), so its cost is pure Python overhead on the task lifecycle
    hot path. This rate bounds what durability costs a crash-free run.
    """
    from repro.core.experiments import StormRig

    rig = StormRig(seed=0, hosts=8, datastores=2, journal=True)
    summary = rig.closed_loop_storm(total=total, concurrency=concurrency, linked=True)
    assert len(rig.server.journal) >= 3 * total
    return int(summary["completed"])


def test_storm_journal_on_throughput(benchmark):
    """48 linked clones, concurrency 12, task journal recording."""
    completed = benchmark(run_storm_journal_on, 48, 12)
    assert completed == 48


def run_storm_bus_on(total, concurrency):
    """The same clone storm with every control-plane hop bus-mediated.

    Each submit and host-agent call becomes a publish + queued delivery +
    reply with a redelivery timer armed and cancelled, so this rate
    bounds what at-least-once transport costs a fault-free run — the
    bus-mediated analogue of the journal and telemetry storm benches.
    """
    from repro.core.experiments import StormRig

    rig = StormRig(seed=0, hosts=8, datastores=2, bus=True, direct_calls=False)
    summary = rig.closed_loop_storm(total=total, concurrency=concurrency, linked=True)
    delivered = sum(stats.delivered for stats in rig.bus.topic_stats().values())
    assert delivered > 0
    return int(summary["completed"])


def test_storm_bus_on_throughput(benchmark):
    """48 linked clones, concurrency 12, all hops through the message bus."""
    completed = benchmark(run_storm_bus_on, 48, 12)
    assert completed == 48


def run_storm_triage_on(total, concurrency):
    """The telemetry storm with the incident triage engine attached.

    Triage subscribes to the SLO monitor's fire hook and only does work
    when an alert fires, so a healthy storm's cost is the scrape + rule
    evaluation cadence plus the armed listener — this rate guards the
    "triage attached, nothing burning" overhead against the telemetry-on
    baseline.
    """
    from repro.core.experiments import StormRig
    from repro.telemetry.slo import AvailabilityRule, BurnWindow, RatioRule

    rig = StormRig(
        seed=0, hosts=8, datastores=2, telemetry=True,
        scrape_interval_s=5.0, triage=True,
    )
    windows = (BurnWindow(short_s=60.0, long_s=180.0, threshold=2.0),)
    rig.telemetry.add_rule(
        AvailabilityRule(
            name="host-availability", objective=0.99,
            metric_prefix="host_up", windows=windows,
        )
    )
    rig.telemetry.add_rule(
        RatioRule(
            name="task-goodput",
            objective=0.98,
            bad_metric='tasks_completed_total{outcome="error"}',
            total_metrics=(
                'tasks_completed_total{outcome="success"}',
                'tasks_completed_total{outcome="error"}',
            ),
            windows=windows,
        )
    )
    rig.telemetry.start()
    summary = rig.closed_loop_storm(total=total, concurrency=concurrency, linked=True)
    assert not rig.triage.is_null
    assert rig.telemetry.scraper.scrapes > 0
    return int(summary["completed"])


def test_storm_triage_on_throughput(benchmark):
    """48 linked clones, concurrency 12, telemetry + triage listener armed."""
    completed = benchmark(run_storm_triage_on, 48, 12)
    assert completed == 48


def run_storm_recorder_on(total, concurrency):
    """The triage storm with tail sampling and the flight recorder armed.

    The full observability stack: telemetry + triage + a SampledTracer on
    a span budget + the flight recorder listening for alerts and crashes.
    A healthy storm fires nothing, so this rate guards the steady-state
    cost of the armed recorder plus per-trace tail-sampling admission
    against the triage-on baseline.
    """
    from repro.core.experiments import StormRig
    from repro.telemetry.slo import AvailabilityRule, BurnWindow, RatioRule

    rig = StormRig(
        seed=0, hosts=8, datastores=2, telemetry=True,
        scrape_interval_s=5.0, triage=True,
        traced=True, sample_budget=1024, recorder=True,
    )
    windows = (BurnWindow(short_s=60.0, long_s=180.0, threshold=2.0),)
    rig.telemetry.add_rule(
        AvailabilityRule(
            name="host-availability", objective=0.99,
            metric_prefix="host_up", windows=windows,
        )
    )
    rig.telemetry.add_rule(
        RatioRule(
            name="task-goodput",
            objective=0.98,
            bad_metric='tasks_completed_total{outcome="error"}',
            total_metrics=(
                'tasks_completed_total{outcome="success"}',
                'tasks_completed_total{outcome="error"}',
            ),
            windows=windows,
        )
    )
    rig.telemetry.start()
    summary = rig.closed_loop_storm(total=total, concurrency=concurrency, linked=True)
    assert not rig.recorder.is_null
    assert rig.tracer.sampler.offered > 0
    return int(summary["completed"])


def test_storm_recorder_on_throughput(benchmark):
    """48 linked clones, concurrency 12, sampling + recorder armed."""
    completed = benchmark(run_storm_recorder_on, 48, 12)
    assert completed == 48
