"""Microbenchmarks of the simulation substrate itself.

Unlike the exhibit benches (single-shot experiment regeneration), these
use pytest-benchmark's repeated rounds to measure the DES kernel's raw
speed — the quantity that bounds how large a datacenter we can simulate.
"""

from repro.sim import Resource, Simulator
from repro.storage import FairShareLink


def run_timeout_chain(events):
    sim = Simulator()

    def proc():
        for _ in range(events):
            yield sim.timeout(1.0)

    sim.spawn(proc())
    sim.run()
    return sim.now


def test_kernel_event_throughput(benchmark):
    """Dispatch 20k sequential timeout events."""
    result = benchmark(run_timeout_chain, 20_000)
    assert result == 20_000.0


def run_resource_contention(processes, cycles):
    sim = Simulator()
    resource = Resource(sim, capacity=4)
    done = []

    def proc():
        for _ in range(cycles):
            request = resource.request()
            yield request
            yield sim.timeout(1.0)
            resource.release(request)
        done.append(True)

    for _ in range(processes):
        sim.spawn(proc())
    sim.run()
    return len(done)


def test_resource_handoff_throughput(benchmark):
    """100 processes x 50 acquire/hold/release cycles on one pool."""
    result = benchmark(run_resource_contention, 100, 50)
    assert result == 100


def run_fair_share_churn(transfers):
    sim = Simulator()
    link = FairShareLink(sim, capacity_bps=1e6)
    finished = []

    def submit(index):
        yield sim.timeout(index * 0.1)
        transfer = yield link.transfer(1e4 + index)
        finished.append(transfer)

    for index in range(transfers):
        sim.spawn(submit(index))
    sim.run()
    return len(finished)


def test_fair_share_reschedule_cost(benchmark):
    """500 overlapping transfers forcing continual rate recomputation."""
    result = benchmark(run_fair_share_churn, 500)
    assert result == 500
