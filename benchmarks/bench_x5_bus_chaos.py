"""R-X5 (extension): direct calls vs a bus-mediated control plane under chaos.

The restart storm (crash + journal replay) runs direct, bus-mediated,
and bus-mediated under each message-fault kind. Expected shape: the
exactly-once invariant holds in every cell (the experiment raises
otherwise), the fault-free bus tracks the direct crash cell's goodput
closely, faults show up in the redelivery/dedup/drop columns, and the
partition cell is the one that buys measurable queueing latency.
"""


def test_bench_x5_bus_chaos(exhibit):
    result = exhibit("R-X5")

    labels = [row[0] for row in result.rows]
    assert labels[:2] == ["direct", "direct+crash"]
    assert "bus" in labels and "bus+drop" in labels and "bus+partition" in labels

    rows = {row[0]: row for row in result.rows}
    total = int(rows["direct"][1])

    # The crash costs goodput in every design; the fault-free bus stays
    # within a small factor of the direct crash cell (transport is cheap
    # next to copy work).
    direct_crash_goodput = float(rows["direct+crash"][7])
    bus_goodput = float(rows["bus"][7])
    assert bus_goodput > 0.55 * direct_crash_goodput

    # The bus cells actually rode the bus, and chaos actually happened:
    # drops triggered redeliveries, duplicates were deduped, and despite
    # all of it nothing was lost in the no-fault and drop/duplicate cells.
    assert int(rows["bus"][3]) > 0  # published
    assert int(rows["bus+drop"][6]) > 0  # dropped in transit
    assert int(rows["bus+drop"][4]) > 0  # redelivered
    assert int(rows["bus+duplicate"][5]) > 0  # deduped
    assert int(rows["bus"][1]) == total
    assert int(rows["bus+drop"][1]) == total
    assert int(rows["bus+duplicate"][1]) == total

    # The partition parks messages: its mean queue wait dominates all
    # other cells' (direct cells report "-": no queueing at all).
    partition_wait = float(rows["bus+partition"][8])
    bus_wait = float(rows["bus"][8])
    assert partition_wait > bus_wait
    assert partition_wait > 100.0  # ms — a real stall, not jitter
