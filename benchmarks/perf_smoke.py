#!/usr/bin/env python
"""Kernel perf smoke: microbench dispatch rates vs the committed baseline.

Runs the kernel microbench workloads (no pytest-benchmark needed), derives
a work-units-per-second rate for each, and compares against the ``after``
rates recorded in ``benchmarks/results/BENCH_kernel.json``. Exits non-zero
if any bench regresses by more than the tolerance (default 30%, override
with ``REPRO_PERF_TOLERANCE`` or ``--tolerance``) — the CI tripwire that
keeps kernel hot-path regressions from landing silently.

Each bench also records its peak traced allocation (``tracemalloc``, in a
separate pass so the tracer's ~2x slowdown never touches the timings) and
the same tolerance gates memory: a bench whose peak heap grows >30% over
the committed baseline fails the run. That is the memory budget the
hyperscale exhibit depends on — a million pending timers only fit because
nothing on the hot path quietly started allocating per event.

Usage::

    PYTHONPATH=src python benchmarks/perf_smoke.py             # check
    PYTHONPATH=src python benchmarks/perf_smoke.py --update    # re-baseline
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys
import time
import tracemalloc

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from bench_kernel_micro import (  # noqa: E402
    run_batch_sampling,
    run_calendar_churn,
    run_cancel_storm,
    run_fair_share_churn,
    run_resource_contention,
    run_spawn_churn,
    run_storm_bus_on,
    run_storm_journal_on,
    run_storm_recorder_on,
    run_storm_telemetry_off,
    run_storm_triage_on,
    run_timeout_chain,
)

BASELINE_PATH = pathlib.Path(__file__).parent / "results" / "BENCH_kernel.json"

#: name -> (callable, args, work units dispatched, unit label)
BENCHES = {
    "timeout_chain": (run_timeout_chain, (20_000,), 20_000, "events"),
    "resource_handoff": (run_resource_contention, (100, 50), 15_000, "acquire+hold+release events"),
    "fair_share_churn": (run_fair_share_churn, (500,), 500, "transfers"),
    "spawn_churn": (run_spawn_churn, (400, 12), 4_800, "processes"),
    "cancel_storm": (run_cancel_storm, (20_000,), 20_000, "cancel/rearm cycles"),
    "calendar_churn": (
        run_calendar_churn,
        (300_000, 1_200_000, "calendar"),
        1_200_000,
        "fire/re-arm cycles over 300k standing timers",
    ),
    "batch_sampling": (
        run_batch_sampling,
        (200_000, True),
        200_000,
        "arrival-gap + lifetime draw pairs",
    ),
    "storm_telemetry_off": (run_storm_telemetry_off, (48, 12), 48, "linked clones"),
    "storm_journal_on": (run_storm_journal_on, (48, 12), 48, "linked clones"),
    "storm_bus_on": (run_storm_bus_on, (48, 12), 48, "linked clones"),
    "storm_triage_on": (run_storm_triage_on, (48, 12), 48, "linked clones"),
    "storm_recorder_on": (run_storm_recorder_on, (48, 12), 48, "linked clones"),
}


def measure(rounds: int = 5) -> dict[str, dict[str, float]]:
    """Best-of-N wall time, derived rate, and peak heap for every microbench."""
    results = {}
    for name, (fn, args, units, _unit) in BENCHES.items():
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            fn(*args)
            elapsed = time.perf_counter() - start
            if elapsed < best:
                best = elapsed
        results[name] = {"seconds": round(best, 6), "rate": round(units / best, 1)}
    # Memory pass, after all timings: tracemalloc roughly halves throughput,
    # so the tracer must never be live while the clock is running.
    for name, (fn, args, _units, _unit) in BENCHES.items():
        tracemalloc.start()
        try:
            fn(*args)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        results[name]["peak_mb"] = round(peak / 2**20, 2)
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=5)
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("REPRO_PERF_TOLERANCE", "0.30")),
        help="allowed fractional regression vs baseline (default 0.30)",
    )
    parser.add_argument(
        "--update", action="store_true", help="rewrite the baseline's after rates"
    )
    args = parser.parse_args(argv)

    measured = measure(rounds=args.rounds)
    baseline = json.loads(BASELINE_PATH.read_text())

    if args.update:
        for name, sample in measured.items():
            entry = baseline["benches"].setdefault(name, {})
            entry["after"] = sample
            before = entry.get("before")
            if before and before.get("rate"):
                entry["speedup"] = round(sample["rate"] / before["rate"], 2)
        BASELINE_PATH.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"updated {BASELINE_PATH}")
        return 0

    failures = []
    print(
        f"{'bench':<20} {'baseline/s':>14} {'measured/s':>14} {'delta':>8} "
        f"{'base MB':>9} {'meas MB':>9} {'delta':>8}"
    )
    for name, sample in measured.items():
        entry = baseline["benches"].get(name)
        if entry is None or "after" not in entry:
            print(f"{name:<20} {'(no baseline)':>14} {sample['rate']:>14,.0f}")
            continue
        reference = entry["after"]["rate"]
        delta = sample["rate"] / reference - 1.0
        flag = ""
        if delta < -args.tolerance:
            failures.append(name)
            flag = "  REGRESSION"
        line = f"{name:<20} {reference:>14,.0f} {sample['rate']:>14,.0f} {delta:>7.0%}"
        reference_mb = entry["after"].get("peak_mb")
        if reference_mb:
            memory_delta = sample["peak_mb"] / reference_mb - 1.0
            if memory_delta > args.tolerance:
                failures.append(name)
                flag = "  MEMORY REGRESSION"
            line += f" {reference_mb:>9,.2f} {sample['peak_mb']:>9,.2f} {memory_delta:>7.0%}"
        print(line + flag)
    if failures:
        print(
            f"\nFAIL: {len(failures)} bench(es) regressed more than "
            f"{args.tolerance:.0%} vs {BASELINE_PATH.name}",
            file=sys.stderr,
        )
        return 1
    print(f"\nok: all benches within {args.tolerance:.0%} of baseline (rate and peak memory)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
