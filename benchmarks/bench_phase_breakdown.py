"""R-F-phase: stacked per-phase provisioning latency vs concurrency.

Expected shape: full clones are copy-dominated at every concurrency;
linked clones strip away the data plane, and as concurrency rises the
control-plane trio (queue + placement + db) grows from a minority share
to the majority of each clone's wall time.
"""


def _parse(result):
    headers = result.headers
    trio_col = headers.index("ctl trio %")
    copy_col = headers.index("copy")
    wall_col = headers.index("wall s")
    cells = {}
    for row in result.rows:
        cells[(row[0], int(row[1]))] = {
            "trio_pct": float(row[trio_col]),
            "copy_s": float(row[copy_col]),
            "wall_s": float(row[wall_col]),
        }
    return cells


def test_bench_phase_breakdown(exhibit):
    result = exhibit("R-F-phase")
    cells = _parse(result)
    concurrencies = sorted(conc for kind, conc in cells if kind == "linked")
    low, high = concurrencies[0], concurrencies[-1]

    # Full clones: the copy dwarfs everything else at every concurrency.
    for conc in concurrencies:
        full = cells[("full", conc)]
        assert full["copy_s"] > 0.5 * full["wall_s"]

    # Linked clones: no data plane at all, and the control-plane trio's
    # share grows with concurrency until it dominates.
    for conc in concurrencies:
        assert cells[("linked", conc)]["copy_s"] == 0.0
    assert cells[("linked", high)]["trio_pct"] > cells[("linked", low)]["trio_pct"]
    # The headline claim needs the full-size sweep (concurrency 64); the
    # quick sweep tops out at 16, where the trio is rising but not yet
    # a majority.
    if high >= 64:
        assert cells[("linked", high)]["trio_pct"] > 50.0
