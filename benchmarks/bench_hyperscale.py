"""R-F-hyperscale: fleet cells up to 1M VMs on the hyperscale kernel.

Expected shape: every cell deploys and drains its whole fleet (deploys ==
expiries == VMs), single-shard cells hold nearly the entire fleet in the
pending queue at peak (the million-timer standing set the calendar-queue
backend exists for), and sharding divides the peak per cell. The memory
test is the committed budget the hyperscale story depends on: a 100k-VM
cell (10k in quick mode) must finish inside ``HYPERSCALE_RSS_BUDGET_MB``
of process peak RSS — the tripwire that catches any per-timer allocation
creeping into the kernel hot path.
"""

import os

#: Peak process RSS (ru_maxrss, MB) allowed for the budget cell. The full
#: exhibit's 1M-VM cell measures ~490 MB standalone; the budget holds ~2x
#: headroom so interpreter noise never trips it while a per-entry memory
#: regression of that order still does.
HYPERSCALE_RSS_BUDGET_MB = 1024.0

QUICK = os.environ.get("REPRO_BENCH_QUICK", "0") == "1"
SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))


def test_bench_hyperscale(exhibit):
    result = exhibit("R-F-hyperscale")
    assert result.rows
    for vms, shards, deploys, expiries, peak_pending, _days in result.rows:
        # The whole fleet deploys and fully drains, whatever the sharding.
        assert deploys == vms
        assert expiries == vms
        assert 0 < peak_pending <= vms
    singles = [row for row in result.rows if row[1] == 1]
    # One-hour arrivals vs six-hour median lifetimes: an unsharded cell
    # holds nearly its whole fleet as standing timers at peak.
    assert singles
    for vms, _shards, _deploys, _expiries, peak_pending, _days in singles:
        assert peak_pending > 0.9 * vms


def test_hyperscale_cell_memory_budget(benchmark):
    """A >=100k-VM cell (10k quick) on the calendar backend, inside budget."""
    from repro.core.experiments import hyperscale_sweep

    vms = 10_000 if QUICK else 100_000
    points = benchmark.pedantic(
        hyperscale_sweep,
        kwargs={
            "seed": SEED,
            "queue": "calendar",
            "fleets": (vms,),
            "shard_counts": (1,),
        },
        rounds=1,
        iterations=1,
    )
    (point,) = points
    assert point["deploys"] == vms
    assert point["expiries"] == vms
    assert point["rss_mb"] < HYPERSCALE_RSS_BUDGET_MB
