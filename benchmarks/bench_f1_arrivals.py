"""R-F1: operation arrival rate over the day (Cloud A).

Expected shape: a pronounced diurnal envelope — peak-hour rate several
times the overnight trough.
"""

from benchmarks.conftest import QUICK


def test_bench_f1_arrivals(exhibit):
    result = exhibit("R-F1")
    metrics = {row[0]: row[1] for row in result.rows}
    ratio = float(metrics["peak/trough rate ratio"])
    series = next(iter(result.series.values()))
    assert len(series) >= 8
    if not QUICK:
        # A full day shows the diurnal swing; a quick 6h window may not.
        assert ratio > 2.0
