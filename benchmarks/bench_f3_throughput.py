"""R-F3 (headline): provisioning throughput vs concurrency, full vs linked.

Paper claim 3. Expected shape: linked clones beat full clones by >10x at
every concurrency; full clones flatline early at the storage ceiling;
linked clones keep scaling until the control plane caps them (their curve
flattens while p50 latency climbs).
"""


def test_bench_f3_throughput(exhibit):
    result = exhibit("R-F3")
    linked = [row for row in result.rows if row[0] == "linked"]
    full = [row for row in result.rows if row[0] == "full"]

    # Linked wins at matched concurrency, massively.
    for linked_row, full_row in zip(linked, full):
        assert float(linked_row[2]) > 10 * float(full_row[2])

    # Full clones are storage-bound: the last two concurrency points give
    # the same throughput.
    assert abs(float(full[-1][2]) - float(full[-2][2])) <= 0.25 * float(full[-2][2])

    # Linked clones saturate too (control plane): the curve's growth slows —
    # the last doubling of concurrency buys < 1.6x.
    gain = float(linked[-1][2]) / max(1.0, float(linked[-2][2]))
    assert gain < 1.6

    # Linked moved (essentially) no data; full moved disk-sized bytes.
    assert all(float(row[4]) == 0 for row in linked)
    assert all(float(row[4]) > 100 for row in full)
