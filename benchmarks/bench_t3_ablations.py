"""R-T3: control-plane design ablations under a linked-clone storm.

The "may influence virtualized datacenter design" claim, quantified.
Expected shape: knobs on the saturated resource (CPU workers) help;
data-plane knobs (copy slots) do nothing for linked clones; coarse
inventory locking collapses throughput.
"""


def test_bench_t3_ablations(exhibit):
    result = exhibit("R-T3")
    speedups = {row[0]: float(row[2].rstrip("x")) for row in result.rows}
    assert speedups["baseline"] == 1.0
    # More CPU workers relieve the saturated resource.
    assert speedups["2x cpu workers"] > 1.2
    # Copy slots are a data-plane knob: irrelevant to linked clones.
    assert 0.8 < speedups["2x copy slots"] < 1.2
    # A single global inventory lock destroys concurrency.
    assert speedups["coarse locks"] < 0.5
