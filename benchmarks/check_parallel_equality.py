#!/usr/bin/env python
"""Prove parallel sweeps change nothing: serial vs parallel exhibit diff.

Runs every sweep-shaped experiment (``PARALLEL_EXPERIMENTS``) twice at the
same seed — once serial, once across worker processes — and fails if any
rendered exhibit differs by a single byte. This is the CI leg backing the
determinism contract in docs/performance.md: one cell = one simulator =
one seed, so process pooling must be unobservable in the results.

Usage::

    PYTHONPATH=src python benchmarks/check_parallel_equality.py
    PYTHONPATH=src python benchmarks/check_parallel_equality.py --parallel 4 --full
"""

from __future__ import annotations

import argparse
import difflib
import sys

from repro.core.experiments import PARALLEL_EXPERIMENTS, run_experiment


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--parallel", type=int, default=2, metavar="N")
    parser.add_argument(
        "--full", action="store_true", help="full exhibit sizes (default: quick)"
    )
    args = parser.parse_args(argv)

    failures = []
    for exp_id in sorted(PARALLEL_EXPERIMENTS):
        serial = run_experiment(exp_id, seed=args.seed, quick=not args.full).render()
        parallel = run_experiment(
            exp_id, seed=args.seed, quick=not args.full, parallel=args.parallel
        ).render()
        if serial == parallel:
            print(f"{exp_id:<10} OK   serial == parallel({args.parallel})")
        else:
            failures.append(exp_id)
            print(f"{exp_id:<10} FAIL exhibits differ:")
            diff = difflib.unified_diff(
                serial.splitlines(), parallel.splitlines(),
                fromfile=f"{exp_id} serial", tofile=f"{exp_id} parallel",
                lineterm="",
            )
            for line in diff:
                print(f"    {line}")

    if failures:
        print(
            f"\nFAIL: {len(failures)} experiment(s) not parallel-deterministic: "
            f"{', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    print(f"\nok: {len(PARALLEL_EXPERIMENTS)} experiments identical at parallel={args.parallel}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
