"""R-X8 (extension): affinity-only vs bus-routed federation under skew.

A skewed multi-tenant deploy storm (80% of deploys through orgs homed
on shard 0) runs through the affinity router and the bus-routed
federation, each with a mid-run crash of the hot shard, plus the R-X5
message-fault kinds overlaid on the federation topics. Expected shape:
the cross-shard exactly-once invariant holds in every cell (the
experiment raises otherwise), the affinity router strands the crashed
shard's tenants while the bus-routed design re-routes their work to
survivors — more completed deploys, higher goodput, no worse p95.
"""


def test_bench_x8_federation(exhibit):
    result = exhibit("R-X8")

    labels = [row[0] for row in result.rows]
    assert labels[:4] == ["affinity", "affinity+crash", "bus", "bus+crash"]

    rows = {row[0]: row for row in result.rows}
    total = int(rows["affinity"][1])
    assert total > 0 and int(rows["affinity"][2]) == 0

    # The crash strands the affinity router's hot tenants: real failed
    # deploys. The bus-routed federation loses none of them.
    assert int(rows["affinity+crash"][2]) > 0
    assert int(rows["bus+crash"][1]) == total
    assert int(rows["bus+crash"][2]) == 0

    # Failover actually rode the bus: pending submissions were forwarded
    # off the crashed shard and executed remotely.
    assert int(rows["bus+crash"][3]) > 0  # steals
    assert int(rows["bus+crash"][5]) > 0  # reroutes
    assert int(rows["bus+crash"][6]) > 0  # remote completions

    # Headline: under the hot-shard crash, bus-routed federation beats
    # affinity-only on goodput and holds (full sizes: beats) p95.
    assert float(rows["bus+crash"][7]) > float(rows["affinity+crash"][7])
    assert float(rows["bus+crash"][8]) <= float(rows["affinity+crash"][8])

    # Neutral fault-free comparison: routing over the bus does not cost
    # completed deploys.
    assert int(rows["bus"][1]) == total
