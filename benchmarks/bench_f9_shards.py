"""R-F9: provisioning throughput vs management-plane shard count.

Expected shape: throughput grows with shards (each shard multiplies every
control-plane resource) with reasonable efficiency at small counts.
"""


def test_bench_f9_shards(exhibit):
    result = exhibit("R-F9")
    series = next(iter(result.series.values()))
    throughputs = [throughput for _, throughput in series]
    assert throughputs == sorted(throughputs)
    # Going 1 -> max shards buys at least 1.5x.
    assert throughputs[-1] > 1.5 * throughputs[0]
