"""R-X3 (extension): deploy goodput under the standard fault schedule.

Ablation across resilience configurations under identical arrivals and
fault windows. Expected shape: no resilience loses most faulted deploys
outright; blind re-placement recovers them but bleeds the window on call
timeouts; re-placement + breakers + shedding + deadlines restores
goodput. Nothing may be lost silently: zero dead letters, zero
unaccounted tasks at quiescence.
"""


def test_bench_x3_fault_goodput(exhibit):
    result = exhibit("R-X3")
    goodput = {row[0]: float(row[3]) for row in result.rows}
    assert goodput["none"] < goodput["retries"] < goodput["full"]
    for row in result.rows:
        dead_letters, unaccounted = int(row[-2]), int(row[-1])
        assert dead_letters == 0
        assert unaccounted == 0
