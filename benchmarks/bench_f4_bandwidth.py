"""R-F4: data-plane bytes per provisioned VM, full vs linked.

Expected shape: full clones move ~the template's disk size per VM; linked
clones move orders of magnitude less (metadata only).
"""


def test_bench_f4_bandwidth(exhibit):
    result = exhibit("R-F4")
    per_vm = {row[0]: float(row[3]) for row in result.rows}
    assert per_vm["full"] > 30.0          # ~40 GB template
    assert per_vm["linked"] < per_vm["full"] / 10
