#!/usr/bin/env python
"""Prove the queue backend changes nothing: heap vs calendar exhibit diff.

Runs a queue-sensitive slice of the exhibit registry twice at the same
seed — once with ``REPRO_SIM_QUEUE=heap``, once with ``calendar`` — and
fails if any rendered exhibit differs by a single byte. This is the CI leg
backing the determinism contract in docs/performance.md: pop order
implements the exact ``(time, priority, sequence)`` total order on both
backends, so the calendar queue must be unobservable in every result no
matter how its buckets resize.

The slice covers the queue's hard cases: closed-loop storms (R-T2),
open-loop arrivals (R-F1), queue-depth tracking under cancel churn (R-F7),
sharded sweeps (R-F9), fault schedules full of timeouts and cancels
(R-X3), and the million-timer standing set (R-F-hyperscale).

Usage::

    PYTHONPATH=src python benchmarks/check_queue_equality.py
    PYTHONPATH=src python benchmarks/check_queue_equality.py --full
"""

from __future__ import annotations

import argparse
import difflib
import os
import sys

EXPERIMENT_IDS = ("R-T2", "R-F1", "R-F7", "R-F9", "R-X3", "R-F-hyperscale")


def _render(exp_id: str, seed: int, quick: bool, backend: str) -> str:
    from repro.core.experiments import run_experiment

    os.environ["REPRO_SIM_QUEUE"] = backend
    try:
        return run_experiment(exp_id, seed=seed, quick=quick).render()
    finally:
        os.environ.pop("REPRO_SIM_QUEUE", None)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--full", action="store_true", help="full exhibit sizes (default: quick)"
    )
    args = parser.parse_args(argv)

    failures = []
    for exp_id in EXPERIMENT_IDS:
        heap = _render(exp_id, args.seed, not args.full, "heap")
        calendar = _render(exp_id, args.seed, not args.full, "calendar")
        if heap == calendar:
            print(f"{exp_id:<16} OK   heap == calendar")
        else:
            failures.append(exp_id)
            print(f"{exp_id:<16} FAIL exhibits differ:")
            diff = difflib.unified_diff(
                heap.splitlines(), calendar.splitlines(),
                fromfile=f"{exp_id} heap", tofile=f"{exp_id} calendar",
                lineterm="",
            )
            for line in diff:
                print(f"    {line}")

    if failures:
        print(
            f"\nFAIL: {len(failures)} experiment(s) differ between queue "
            f"backends: {', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    print(f"\nok: {len(EXPERIMENT_IDS)} experiments byte-identical on both backends")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
