"""R-F8: end-to-end deploy latency breakdown by plane.

Expected shape: full deploys spend most wall time on the data plane
(the disk copy); linked deploys spend none there — their entire latency
is control-plane work.
"""


def test_bench_f8_breakdown(exhibit):
    result = exhibit("R-F8")
    rows = {row[0]: {"control": float(row[1]), "data": float(row[2])} for row in result.rows}
    assert rows["full"]["data"] > 50.0
    assert rows["linked"]["data"] == 0.0
    assert rows["linked"]["control"] > 60.0
